"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` lets each bench print the table/figure rows it regenerates
(the same rows the paper reports) alongside pytest-benchmark's timing
output.
"""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
