"""Bench + regeneration of the detection-latency experiment."""

from repro.experiments import format_latency, latency_sweep


def test_latency_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: latency_sweep(d=2, heights=(3, 4, 5), p=10, seed=29),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_latency(points))
    # Latency grows with pipeline depth for both algorithms.
    assert points[0].hier_mean < points[-1].hier_mean
    assert points[0].cent_mean < points[-1].cent_mean
