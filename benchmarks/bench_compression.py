"""Ablation bench: timestamp compression on real report streams.

Quantifies the O(n)-per-message wire cost (Section IV) under an
adaptive raw/sparse/differential encoder, on both workload regimes."""

from repro.analysis import render_table
from repro.experiments import compression_ablation


def test_compression_ablation(benchmark):
    def run():
        return [
            ("epoch sync=1.0", compression_ablation(d=2, h=4, p=12, sync_prob=1.0, seed=19)),
            ("epoch sync=0.6", compression_ablation(d=2, h=4, p=12, sync_prob=0.6, seed=19)),
            ("local n=15", compression_ablation(d=2, h=4, p=12, seed=19, workload="local")),
            ("local n=40", compression_ablation(d=3, h=4, p=12, seed=19, workload="local")),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["workload", "n", "reports", "raw entries", "adaptive entries", "savings"],
            [
                [name, r.n, r.reports, r.raw_entries, r.adaptive_entries,
                 f"{r.savings:.1%}"]
                for name, r in rows
            ],
        )
    )
    by_name = dict(rows)
    assert by_name["local n=15"].savings > by_name["epoch sync=1.0"].savings
    assert by_name["local n=40"].savings > by_name["local n=15"].savings
