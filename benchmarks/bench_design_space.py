"""Bench + regeneration of the algorithm design-space comparison
(the measured version of the paper's Section I positioning)."""

from repro.experiments import design_space_comparison, format_design_space


def test_design_space(benchmark):
    profiles = benchmark.pedantic(
        lambda: design_space_comparison(d=2, h=4, p=10, seed=17),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_design_space(profiles))
    by_name = {p.name: p for p in profiles}
    hier = by_name["hierarchical (this paper)"]
    cent = by_name["centralized repeated [12]"]
    assert hier.detections == cent.detections
    assert hier.control_messages < cent.control_messages
    assert hier.cmp_max_node < cent.cmp_max_node
