"""Bench + regeneration of the availability-under-crashes experiment
(the quantified version of Section III-F's fault-tolerance claim)."""

from repro.experiments import availability_sweep, format_availability


def test_availability_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: availability_sweep(
            d=2, h=4, epochs=16, failure_counts=(0, 1, 2, 3), seed=21
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_availability(points))
    baseline = points[0]
    for pt in points[1:]:
        assert pt.post_failure_detections > 0
        assert pt.detections >= baseline.detections - 3 * pt.failures
