"""Workload helpers shared by the benches (kept local to benchmarks/
so the bench suite runs standalone, without importing the test tree)."""

from __future__ import annotations

import numpy as np

from repro.workload.scenarios import ScriptedExecution


def random_execution(
    n: int, steps: int, rng: np.random.Generator, *, toggle_weight: int = 1
) -> ScriptedExecution:
    """A random causally valid execution (see tests/conftest.py)."""
    ex = ScriptedExecution(n)
    in_flight: list[str] = []
    tag = 0
    for _ in range(steps):
        op = int(rng.integers(0, 3 + toggle_weight))
        p = int(rng.integers(0, n))
        if op == 0:
            ex.internal(p)
        elif op == 1:
            t = f"t{tag}"
            tag += 1
            ex.send(p, t)
            in_flight.append(t)
        elif op == 2 and in_flight:
            ex.recv(p, in_flight.pop(int(rng.integers(0, len(in_flight)))))
        else:
            ex.set_pred(p, not ex.predicate[p])
    for p in range(n):
        if ex.predicate[p]:
            ex.set_pred(p, False)
    return ex
