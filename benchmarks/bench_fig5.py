"""Benchmark + regeneration of Figure 5 (message complexity, d = 4).

Same as Figure 4 with degree 4 (heights 2…6 analytically, 2…4
empirically — a (4,4) tree is already 85 nodes)."""

from repro.analysis import centralized_messages, hierarchical_messages
from repro.experiments import (
    empirical_message_sweep,
    format_figure,
    message_complexity_figure,
)


def test_fig5_analytic_series(benchmark):
    fig = benchmark(message_complexity_figure, 4, p=20)
    print()
    print(format_figure(fig))
    for alpha_key in ("hierarchical a=0.1", "hierarchical a=0.45"):
        series = fig.series[alpha_key]
        cent = fig.series["centralized [12] (corrected Eq.14)"]
        for x, c, h in zip(series, cent, fig.heights):
            if h >= 3:
                assert x < c
    # Smaller alpha means fewer messages at every height.
    low, high = fig.series["hierarchical a=0.1"], fig.series["hierarchical a=0.45"]
    assert all(a <= b for a, b in zip(low, high))


def test_fig5_empirical_sweep(benchmark):
    fig = benchmark.pedantic(
        lambda: empirical_message_sweep(4, heights=(2, 3, 4), p=20, seed=11),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(fig))
    for i, h in enumerate(fig.heights):
        assert fig.series["centralized (measured)"][i] == centralized_messages(20, 4, h)
        if h > 2:
            assert (
                fig.series["hierarchical (measured)"][i]
                < fig.series["centralized (measured)"][i]
            )
