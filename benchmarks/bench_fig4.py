"""Benchmark + regeneration of Figure 4 (message complexity, d = 2).

Prints the analytic curves with the paper's exact parameters
(``d=2, p=20``, α ∈ {0.1, 0.45}, heights 2…10) and a measured sweep
from full simulations at the smaller heights, annotated with the
realized α.  Shape assertions encode the paper's conclusions.
"""

from repro.analysis import centralized_messages, hierarchical_messages
from repro.experiments import (
    empirical_message_sweep,
    format_figure,
    message_complexity_figure,
)


def test_fig4_analytic_series(benchmark):
    fig = benchmark(message_complexity_figure, 2, p=20)
    print()
    print(format_figure(fig))
    hier = fig.series["hierarchical a=0.45"]
    cent = fig.series["centralized [12] (corrected Eq.14)"]
    # The paper's conclusion: hierarchical wins, increasingly with h.
    gaps = [c / max(x, 1e-9) for x, c in zip(hier, cent)]
    assert all(g2 >= g1 for g1, g2 in zip(gaps[1:], gaps[2:]))


def test_fig4_empirical_sweep(benchmark):
    fig = benchmark.pedantic(
        lambda: empirical_message_sweep(2, heights=(2, 3, 4, 5), p=20, seed=11),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(fig))
    hier = fig.series["hierarchical (measured)"]
    cent = fig.series["centralized (measured)"]
    for i, h in enumerate(fig.heights):
        # Centralized measurements land exactly on Eq. (12).
        assert cent[i] == centralized_messages(20, 2, h)
        # Hierarchical stays at or below the alpha=1 analytic ceiling.
        assert hier[i] <= hierarchical_messages(20, 2, h, 1.0)
        if h > 2:
            assert hier[i] < cent[i]
