#!/usr/bin/env python
"""Perf-baseline runner: emits ``BENCH_core_ops.json`` and
``BENCH_hierarchy.json`` at the repo root.

Two benchmarks, both timed for the scalar reference engine and the
vectorized ``HeadMatrix`` engine (see ``docs/performance.md``):

* **core_ops** — offer throughput of one ``RepeatedDetectionCore``
  (k queues, n vector components) on a bursty synthetic stream: most
  queues fill several intervals deep, then the last queue's arrivals
  unblock a cascade of solutions — the regime a hierarchical node sees
  when children report asynchronously.  Also runs the determinism
  check: for every seed the two engines must produce identical solution
  sequences, identical prune-event streams and identical logical
  comparison counts.
* **hierarchy** — wall-clock of a full ``run_hierarchical`` simulation
  (tree, network, workload included), flipped between engines via
  ``set_default_engine``.

Timings are best-of-``--repeats`` after a warmup run, so one-off
scheduler noise doesn't pollute the baseline.  ``--quick`` shrinks the
workloads for CI smoke (the JSON schema is identical).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

SCHEMA = "repro-bench/1"


# ----------------------------------------------------------------------
# core-ops workload
# ----------------------------------------------------------------------
def burst_stream(seed, *, k, n, offers, depth=6, skew_prob=0.08):
    """The core-ops stream: per epoch, queues ``0 .. k-2`` each receive
    ``depth`` intervals whose bounds advance in lock-step windows
    (guaranteed overlap within a window, guaranteed incompatibility
    across windows); queue ``k-1``'s batch arrives last and unblocks a
    burst of ``depth`` solutions.  ``skew_prob`` replaces an interval
    with a jittered one to keep incompatibility pruning exercised.
    """
    from repro.intervals import Interval

    rng = np.random.default_rng(seed)
    seqs = [0] * k
    out = []
    base = np.zeros(n, dtype=np.int64)
    while len(out) < offers:
        windows = [base + 10 * d for d in range(depth)]
        for q in list(range(k - 1)) + [k - 1]:
            for d in range(depth):
                w = windows[d]
                if rng.random() < skew_prob:
                    lo = w + rng.integers(0, 8, n)
                    hi = lo + rng.integers(0, 8, n)
                else:
                    lo = w + rng.integers(0, 3, n)
                    hi = w + 5 + rng.integers(0, 3, n)
                out.append((q, Interval(owner=q, seq=seqs[q], lo=lo, hi=hi)))
                seqs[q] += 1
        base = base + 10 * depth
    return out[:offers]


def _drive(stream, engine, k, record_events=False):
    from repro.detect import RepeatedDetectionCore

    events = []
    observer = (
        (lambda ev, key, iv: events.append((ev, key, iv.key())))
        if record_events
        else None
    )
    core = RepeatedDetectionCore(range(k), engine=engine, observer=observer)
    solutions = []
    t0 = time.perf_counter()
    for key, interval in stream:
        solutions.extend(core.offer(key, interval))
    elapsed = time.perf_counter() - t0
    return core, elapsed, solutions, events


def _solution_signature(solutions):
    return [
        (s.index, sorted((k, iv.key()) for k, iv in s.heads.items()))
        for s in solutions
    ]


def bench_core_ops(args) -> dict:
    k, n = args.k, args.n
    offers = 2000 if args.quick else args.offers
    repeats = 3 if args.quick else args.repeats
    stream = burst_stream(args.timing_seed, k=k, n=n, offers=offers)

    timings = {}
    stats = {}
    for engine in ("scalar", "matrix"):
        _drive(stream, engine, k)  # warmup
        runs = [_drive(stream, engine, k)[1] for _ in range(repeats)]
        core, _, solutions, _ = _drive(stream, engine, k)
        timings[engine] = {
            "best_s": min(runs),
            "runs_s": runs,
            "offers_per_s": offers / min(runs),
        }
        stats[engine] = {
            "detections": core.stats.detections,
            "comparisons": core.stats.comparisons,
            "pruned_incompatible": core.stats.pruned_incompatible,
            "pruned_after_solution": core.stats.pruned_after_solution,
        }

    determinism = {"seeds": list(args.det_seeds), "checks": []}
    for seed in args.det_seeds:
        det_stream = burst_stream(seed, k=k, n=n, offers=offers)
        cs, _, ss, es = _drive(det_stream, "scalar", k, record_events=True)
        cm, _, sm, em = _drive(det_stream, "matrix", k, record_events=True)
        determinism["checks"].append(
            {
                "seed": seed,
                "solutions": len(ss),
                "identical_solutions": _solution_signature(ss)
                == _solution_signature(sm),
                "identical_prune_events": es == em,
                "identical_comparisons": cs.stats.comparisons
                == cm.stats.comparisons,
            }
        )
    determinism["all_identical"] = all(
        c["identical_solutions"]
        and c["identical_prune_events"]
        and c["identical_comparisons"]
        for c in determinism["checks"]
    )

    return {
        "schema": SCHEMA,
        "benchmark": "core_ops",
        "quick": args.quick,
        "params": {
            "k": k,
            "n": n,
            "offers": offers,
            "depth": 6,
            "skew_prob": 0.08,
            "repeats": repeats,
            "timing_seed": args.timing_seed,
        },
        "engines": timings,
        "engine_stats": stats,
        "speedup": timings["scalar"]["best_s"] / timings["matrix"]["best_s"],
        "determinism": determinism,
    }


# ----------------------------------------------------------------------
# hierarchy end-to-end
# ----------------------------------------------------------------------
def bench_hierarchy(args) -> dict:
    from repro.detect.core import get_default_engine, set_default_engine
    from repro.experiments.harness import run_hierarchical
    from repro.topology import SpanningTree
    from repro.workload.generator import EpochConfig

    # Full mode uses the paper's wide-fanout WSN regime: interior nodes
    # then run k = degree + 1 = 8 queues, matching the core-ops k.
    degree, height = (2, 2) if args.quick else (7, 2)
    epochs = 3 if args.quick else 25
    repeats = 2 if args.quick else args.repeats
    config = EpochConfig(epochs=epochs)

    def one_run():
        tree = SpanningTree.regular(degree, height)
        t0 = time.perf_counter()
        result = run_hierarchical(tree, seed=args.timing_seed, config=config)
        return result, time.perf_counter() - t0

    timings = {}
    outcomes = {}
    saved = get_default_engine()
    try:
        for engine in ("scalar", "matrix"):
            set_default_engine(engine)
            one_run()  # warmup
            runs = []
            result = None
            for _ in range(repeats):
                result, elapsed = one_run()
                runs.append(elapsed)
            timings[engine] = {"best_s": min(runs), "runs_s": runs}
            outcomes[engine] = {
                "detections": len(result.detections),
                "detection_times": [round(d.time, 9) for d in result.detections],
                "control_messages": result.metrics.control_messages,
                "comparisons": sum(
                    node.comparisons for node in result.metrics.per_node
                ),
            }
    finally:
        set_default_engine(saved)

    return {
        "schema": SCHEMA,
        "benchmark": "hierarchy",
        "quick": args.quick,
        "params": {
            "tree_degree": degree,
            "tree_height": height,
            "nodes": SpanningTree.regular(degree, height).n,
            "epochs": epochs,
            "repeats": repeats,
            "seed": args.timing_seed,
        },
        "engines": timings,
        "engine_outcomes": outcomes,
        "speedup": timings["scalar"]["best_s"] / timings["matrix"]["best_s"],
        "identical_outcomes": outcomes["scalar"] == outcomes["matrix"],
    }


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workloads")
    parser.add_argument("--out-dir", type=Path, default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--k", type=int, default=8, help="queues (core_ops)")
    parser.add_argument("--n", type=int, default=64, help="vector components")
    parser.add_argument("--offers", type=int, default=10000)
    parser.add_argument("--repeats", type=int, default=5, help="timing runs (best-of)")
    parser.add_argument("--timing-seed", type=int, default=1)
    parser.add_argument(
        "--det-seeds",
        type=int,
        nargs="+",
        default=[1, 2, 3],
        help="seeds for the scalar-vs-matrix determinism check",
    )
    args = parser.parse_args(argv)

    results = {
        "BENCH_core_ops.json": bench_core_ops(args),
        "BENCH_hierarchy.json": bench_hierarchy(args),
    }
    args.out_dir.mkdir(parents=True, exist_ok=True)
    failed = False
    for name, payload in results.items():
        path = args.out_dir / name
        path.write_text(json.dumps(payload, indent=2) + "\n")
        speed = payload["speedup"]
        ok = (
            payload.get("determinism", {}).get("all_identical")
            if "determinism" in payload
            else payload.get("identical_outcomes")
        )
        print(f"{name}: speedup={speed:.2f}x identical={ok} -> {path}")
        if not ok:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
