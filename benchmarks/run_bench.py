#!/usr/bin/env python
"""Perf-baseline runner: emits ``BENCH_core_ops.json``,
``BENCH_hierarchy.json`` and ``BENCH_parallel.json`` at the repo root.

The first two benchmarks are timed for the scalar reference engine and
the vectorized ``HeadMatrix`` engine (see ``docs/performance.md``):

* **core_ops** — offer throughput of one ``RepeatedDetectionCore``
  (k queues, n vector components) on a bursty synthetic stream: most
  queues fill several intervals deep, then the last queue's arrivals
  unblock a cascade of solutions — the regime a hierarchical node sees
  when children report asynchronously.  Also runs the determinism
  check: for every seed the two engines must produce identical solution
  sequences, identical prune-event streams and identical logical
  comparison counts.
* **hierarchy** — wall-clock of a full ``run_hierarchical`` simulation
  (tree, network, workload included), flipped between engines via
  ``set_default_engine``.
* **parallel** — the sharded experiment engine
  (``repro.experiments.parallel``) running the Table-I sweep at 1, 2,
  4 and 8 workers (determinism surface must be byte-identical across
  worker counts; wall-clock speedup scales with the machine's cores —
  ``cpu_count`` is recorded so single-core CI numbers read honestly),
  plus batched vs scalar offer ingestion (``offer_batch`` must be
  byte-identical to an ``offer`` loop on both engines).

``--net`` / ``--only net`` adds the socket-runtime loopback baseline
(``BENCH_net.json``) and ``--only obs`` the observability baseline
(``BENCH_obs.json``): telemetry on/off overhead on the core-ops
stream plus admin-endpoint scrape + aggregator fold timings against a
loopback cluster.

Timings are best-of-``--repeats`` after a warmup run, so one-off
scheduler noise doesn't pollute the baseline.  ``--quick`` shrinks the
workloads for CI smoke (the JSON schema is identical).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

SCHEMA = "repro-bench/1"
#: The obs benchmark grew sampling/profiling fields (sampled fraction,
#: spans recorded vs materialized, profiler-on overhead) — a schema bump
#: so consumers can't silently read the old shape.
SCHEMA_OBS = "repro-bench/2"
#: The net benchmark split into codec microbench + unpaced wire
#: throughput + paced cluster replay when the binary wire landed, and
#: now records the codec, ack-coalescing and flush-batch parameters —
#: a schema bump for the same reason.
SCHEMA_NET = "repro-bench/2"

#: The load benchmark (``BENCH_load.json``) starts life on the current
#: schema generation: an offered-load sweep with latency percentiles per
#: point, an identified saturation knee, and determinism + reference
#: gates.
SCHEMA_LOAD = "repro-bench/2"

#: The last ``repro-bench/1`` net baseline (paced JSON loopback replay)
#: — the denominator of the binary wire's gated speedup.
JSON_BASELINE_FRAMES_PER_S = 904.0094831288743


# ----------------------------------------------------------------------
# core-ops workload
# ----------------------------------------------------------------------
def burst_stream(seed, *, k, n, offers, depth=6, skew_prob=0.08):
    """The core-ops stream: per epoch, queues ``0 .. k-2`` each receive
    ``depth`` intervals whose bounds advance in lock-step windows
    (guaranteed overlap within a window, guaranteed incompatibility
    across windows); queue ``k-1``'s batch arrives last and unblocks a
    burst of ``depth`` solutions.  ``skew_prob`` replaces an interval
    with a jittered one to keep incompatibility pruning exercised.
    """
    from repro.intervals import Interval

    rng = np.random.default_rng(seed)
    seqs = [0] * k
    out = []
    base = np.zeros(n, dtype=np.int64)
    while len(out) < offers:
        windows = [base + 10 * d for d in range(depth)]
        for q in list(range(k - 1)) + [k - 1]:
            for d in range(depth):
                w = windows[d]
                if rng.random() < skew_prob:
                    lo = w + rng.integers(0, 8, n)
                    hi = lo + rng.integers(0, 8, n)
                else:
                    lo = w + rng.integers(0, 3, n)
                    hi = w + 5 + rng.integers(0, 3, n)
                out.append((q, Interval(owner=q, seq=seqs[q], lo=lo, hi=hi)))
                seqs[q] += 1
        base = base + 10 * depth
    return out[:offers]


def _drive(stream, engine, k, record_events=False):
    from repro.detect import RepeatedDetectionCore

    events = []
    observer = (
        (lambda ev, key, iv: events.append((ev, key, iv.key())))
        if record_events
        else None
    )
    core = RepeatedDetectionCore(range(k), engine=engine, observer=observer)
    solutions = []
    t0 = time.perf_counter()
    for key, interval in stream:
        solutions.extend(core.offer(key, interval))
    elapsed = time.perf_counter() - t0
    return core, elapsed, solutions, events


def _solution_signature(solutions):
    return [
        (s.index, sorted((k, iv.key()) for k, iv in s.heads.items()))
        for s in solutions
    ]


def bench_core_ops(args) -> dict:
    k, n = args.k, args.n
    offers = 2000 if args.quick else args.offers
    repeats = 3 if args.quick else args.repeats
    stream = burst_stream(args.timing_seed, k=k, n=n, offers=offers)

    timings = {}
    stats = {}
    for engine in ("scalar", "matrix"):
        _drive(stream, engine, k)  # warmup
        runs = [_drive(stream, engine, k)[1] for _ in range(repeats)]
        core, _, solutions, _ = _drive(stream, engine, k)
        timings[engine] = {
            "best_s": min(runs),
            "runs_s": runs,
            "offers_per_s": offers / min(runs),
        }
        stats[engine] = {
            "detections": core.stats.detections,
            "comparisons": core.stats.comparisons,
            "pruned_incompatible": core.stats.pruned_incompatible,
            "pruned_after_solution": core.stats.pruned_after_solution,
        }

    determinism = {"seeds": list(args.det_seeds), "checks": []}
    for seed in args.det_seeds:
        det_stream = burst_stream(seed, k=k, n=n, offers=offers)
        cs, _, ss, es = _drive(det_stream, "scalar", k, record_events=True)
        cm, _, sm, em = _drive(det_stream, "matrix", k, record_events=True)
        determinism["checks"].append(
            {
                "seed": seed,
                "solutions": len(ss),
                "identical_solutions": _solution_signature(ss)
                == _solution_signature(sm),
                "identical_prune_events": es == em,
                "identical_comparisons": cs.stats.comparisons
                == cm.stats.comparisons,
            }
        )
    determinism["all_identical"] = all(
        c["identical_solutions"]
        and c["identical_prune_events"]
        and c["identical_comparisons"]
        for c in determinism["checks"]
    )

    return {
        "schema": SCHEMA,
        "benchmark": "core_ops",
        "quick": args.quick,
        "params": {
            "k": k,
            "n": n,
            "offers": offers,
            "depth": 6,
            "skew_prob": 0.08,
            "repeats": repeats,
            "timing_seed": args.timing_seed,
        },
        "engines": timings,
        "engine_stats": stats,
        "speedup": timings["scalar"]["best_s"] / timings["matrix"]["best_s"],
        "determinism": determinism,
    }


# ----------------------------------------------------------------------
# hierarchy end-to-end
# ----------------------------------------------------------------------
def bench_hierarchy(args) -> dict:
    from repro.detect.core import get_default_engine, set_default_engine
    from repro.experiments.harness import run_hierarchical
    from repro.topology import SpanningTree
    from repro.workload.generator import EpochConfig

    # Full mode uses the paper's wide-fanout WSN regime: interior nodes
    # then run k = degree + 1 = 8 queues, matching the core-ops k.
    degree, height = (2, 2) if args.quick else (7, 2)
    epochs = 3 if args.quick else 25
    repeats = 2 if args.quick else args.repeats
    config = EpochConfig(epochs=epochs)

    def one_run():
        tree = SpanningTree.regular(degree, height)
        t0 = time.perf_counter()
        result = run_hierarchical(tree, seed=args.timing_seed, config=config)
        return result, time.perf_counter() - t0

    timings = {}
    outcomes = {}
    saved = get_default_engine()
    try:
        for engine in ("scalar", "matrix"):
            set_default_engine(engine)
            one_run()  # warmup
            runs = []
            result = None
            for _ in range(repeats):
                result, elapsed = one_run()
                runs.append(elapsed)
            timings[engine] = {"best_s": min(runs), "runs_s": runs}
            outcomes[engine] = {
                "detections": len(result.detections),
                "detection_times": [round(d.time, 9) for d in result.detections],
                "control_messages": result.metrics.control_messages,
                "comparisons": sum(
                    node.comparisons for node in result.metrics.per_node
                ),
            }
    finally:
        set_default_engine(saved)

    return {
        "schema": SCHEMA,
        "benchmark": "hierarchy",
        "quick": args.quick,
        "params": {
            "tree_degree": degree,
            "tree_height": height,
            "nodes": SpanningTree.regular(degree, height).n,
            "epochs": epochs,
            "repeats": repeats,
            "seed": args.timing_seed,
        },
        "engines": timings,
        "engine_outcomes": outcomes,
        "speedup": timings["scalar"]["best_s"] / timings["matrix"]["best_s"],
        "identical_outcomes": outcomes["scalar"] == outcomes["matrix"],
    }


# ----------------------------------------------------------------------
# sharded experiment engine + batched ingestion
# ----------------------------------------------------------------------
def _drive_batch(stream, engine, k, batch, record_events=False):
    """Like :func:`_drive` but through ``offer_batch`` — the whole
    stream at once when ``batch <= 0``, else in chunks of ``batch``."""
    from repro.detect import RepeatedDetectionCore

    events = []
    observer = (
        (lambda ev, key, iv: events.append((ev, key, iv.key())))
        if record_events
        else None
    )
    core = RepeatedDetectionCore(range(k), engine=engine, observer=observer)
    chunk = len(stream) if batch <= 0 else batch
    solutions = []
    t0 = time.perf_counter()
    for start in range(0, len(stream), chunk):
        solutions.extend(core.offer_batch(stream[start : start + chunk]))
    elapsed = time.perf_counter() - t0
    return core, elapsed, solutions, events


def _sweep_surface(report):
    """The determinism surface of one sharded sweep — everything that
    must be identical for any worker count."""
    import hashlib

    return {
        "exposition_sha256": hashlib.sha256(
            report.deterministic_exposition().encode()
        ).hexdigest(),
        "control_messages": report.metrics.control_messages,
        "root_detections": report.metrics.root_detections,
        "total_comparisons": report.metrics.total_comparisons,
        "solution_counts": [s.solution_count for s in report.shards],
        "detection_times": [round(d.time, 9) for d in report.detections],
    }


def bench_parallel(args) -> dict:
    import os

    from repro.experiments.parallel import ShardedRunner
    from repro.experiments.table1 import table1_specs

    p = 4 if args.quick else 10
    repeats = 2 if args.quick else args.repeats
    configs = ((2, 3), (2, 4)) if args.quick else ((2, 3), (2, 4), (3, 3), (4, 3))
    worker_counts = [w for w in (1, 2, 4, 8) if w <= max(args.workers, 1)]
    specs = table1_specs(configs, p=p, seed=args.timing_seed)

    # Interleave the timed runs round-robin across worker counts (and,
    # below, across scalar/batch): on a busy machine wall-clock drifts
    # over the benchmark's lifetime, and block-ordered timing would
    # systematically bias against whichever variant runs last.
    timings = {str(w): {"runs_s": []} for w in worker_counts}
    surfaces = {}
    runners = {w: ShardedRunner(workers=w) for w in worker_counts}
    for runner in runners.values():
        runner.run(specs)  # warmup (pool fork, imports)
    for _ in range(repeats):
        for workers, runner in runners.items():
            t0 = time.perf_counter()
            report = runner.run(specs)
            timings[str(workers)]["runs_s"].append(time.perf_counter() - t0)
            surfaces[str(workers)] = _sweep_surface(report)
    for entry in timings.values():
        entry["best_s"] = min(entry["runs_s"])
    reference = surfaces[str(worker_counts[0])]
    identical_across_workers = all(
        surfaces[str(w)] == reference for w in worker_counts
    )
    best_parallel = min(
        timings[str(w)]["best_s"] for w in worker_counts if w > 1
    ) if len(worker_counts) > 1 else timings[str(worker_counts[0])]["best_s"]
    shard_speedup = timings[str(worker_counts[0])]["best_s"] / best_parallel

    # batched vs scalar ingestion on the core-ops stream, both engines
    k, n = args.k, args.n
    offers = 2000 if args.quick else args.offers
    stream = burst_stream(args.timing_seed, k=k, n=n, offers=offers)
    batch_timings = {}
    batch_checks = []
    for engine in ("scalar", "matrix"):
        _drive(stream, engine, k)  # warmup
        _drive_batch(stream, engine, k, args.batch)
        scalar_runs, batch_runs = [], []
        for _ in range(repeats):  # interleaved, see above
            scalar_runs.append(_drive(stream, engine, k)[1])
            batch_runs.append(_drive_batch(stream, engine, k, args.batch)[1])
        cs, _, ss, es = _drive(stream, engine, k, record_events=True)
        cb, _, sb, eb = _drive_batch(
            stream, engine, k, args.batch, record_events=True
        )
        batch_timings[engine] = {
            "scalar_best_s": min(scalar_runs),
            "batch_best_s": min(batch_runs),
            "scalar_offers_per_s": offers / min(scalar_runs),
            "batch_offers_per_s": offers / min(batch_runs),
            "speedup": min(scalar_runs) / min(batch_runs),
        }
        batch_checks.append(
            {
                "engine": engine,
                "solutions": len(ss),
                "identical_solutions": _solution_signature(ss)
                == _solution_signature(sb),
                "identical_events": es == eb,
                "identical_comparisons": cs.stats.comparisons
                == cb.stats.comparisons,
                "identical_offers": cs.stats.offers == cb.stats.offers,
            }
        )
    batch_identical = all(
        c["identical_solutions"]
        and c["identical_events"]
        and c["identical_comparisons"]
        and c["identical_offers"]
        for c in batch_checks
    )

    return {
        "schema": SCHEMA,
        "benchmark": "parallel",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "params": {
            "configs": [list(c) for c in configs],
            "p": p,
            "worker_counts": worker_counts,
            "repeats": repeats,
            "seed": args.timing_seed,
            "k": k,
            "n": n,
            "offers": offers,
            "batch": args.batch,
        },
        "sharded": {
            "timings": timings,
            "surfaces": surfaces,
            "identical_across_workers": identical_across_workers,
            "shard_speedup": shard_speedup,
        },
        "batch": {"engines": batch_timings, "checks": batch_checks},
        "speedup": max(t["speedup"] for t in batch_timings.values()),
        "determinism": {
            "all_identical": identical_across_workers and batch_identical,
            "identical_across_workers": identical_across_workers,
            "batch_identical": batch_identical,
        },
    }


# ----------------------------------------------------------------------
# socket runtime (loopback)
# ----------------------------------------------------------------------
def _net_report_stream(script, tree):
    """A recorded report stream: every node's scripted intervals as the
    ``IntervalReport``s it would send its parent, concatenated into one
    channel so per-channel compression references see realistic churn."""
    from repro.sim.messages import IntervalReport

    reports = []
    for pid, stream in sorted(script.streams.items()):
        parent = tree.parent_of(pid)
        dest = parent if parent is not None else pid
        for j, interval in enumerate(stream):
            reports.append(
                IntervalReport(
                    origin=pid, dest=dest, interval=interval, transport_seq=j
                )
            )
    return reports


def _codec_microbench(reports, frames, repeats) -> dict:
    """Codec-only encode/decode timing (no transport, no event loop):
    frames/s and bytes/frame for the JSON and binary wires on the same
    recorded report stream, so codec wins are attributable separately
    from ack-coalescing and flush-batching wins."""
    from repro.net import FrameCodec

    stream = [reports[i % len(reports)] for i in range(frames)]
    out = {}
    for wire in ("json", "binary"):
        encode_runs, decode_runs = [], []
        nbytes = 0
        for _ in range(repeats):
            encoder = FrameCodec(wire=wire)
            t0 = time.perf_counter()
            encoded = [encoder.encode(message) for message in stream]
            encode_runs.append(time.perf_counter() - t0)
            blob = b"".join(encoded)
            nbytes = len(blob)
            decoder = FrameCodec()
            t0 = time.perf_counter()
            decoded = decoder.feed(blob)
            decode_runs.append(time.perf_counter() - t0)
            if len(decoded) != len(stream):
                raise AssertionError(
                    f"{wire} codec round-trip lost frames "
                    f"({len(decoded)} != {len(stream)})"
                )
        out[wire] = {
            "encode_frames_per_s": frames / min(encode_runs),
            "decode_frames_per_s": frames / min(decode_runs),
            "roundtrip_frames_per_s": frames
            / (min(encode_runs) + min(decode_runs)),
            "bytes_per_frame": nbytes / frames,
        }
    out["binary_vs_json"] = {
        "encode_speedup": out["binary"]["encode_frames_per_s"]
        / out["json"]["encode_frames_per_s"],
        "decode_speedup": out["binary"]["decode_frames_per_s"]
        / out["json"]["decode_frames_per_s"],
        "roundtrip_speedup": out["binary"]["roundtrip_frames_per_s"]
        / out["json"]["roundtrip_frames_per_s"],
        "bytes_ratio": out["binary"]["bytes_per_frame"]
        / out["json"]["bytes_per_frame"],
    }
    return out


def _blast_wire(reports, frames, repeats) -> dict:
    """Unpaced wire throughput: blast ``frames`` reports through a
    transport pair as fast as the stack moves them (full encode → frame
    → decode → dispatch path), for both wires on both transports.  The
    binary loopback number is the benchmark's headline ``frames_per_s``."""
    import asyncio

    from repro.net import (
        AsyncClock,
        FrameCodec,
        LoopbackHub,
        LoopbackTransport,
        TcpTransport,
    )

    stream = [reports[i % len(reports)] for i in range(frames)]

    async def loopback_run(wire):
        clock = AsyncClock()
        hub = LoopbackHub()
        factory = lambda: FrameCodec(wire=wire)  # noqa: E731
        a = LoopbackTransport(0, hub, clock, codec_factory=factory)
        b = LoopbackTransport(1, hub, clock, codec_factory=factory)
        got = 0

        def receiver(src, message, meta=None):
            nonlocal got
            got += 1

        b.set_receiver(receiver)
        await a.start()
        await b.start()
        t0 = time.perf_counter()
        for i, message in enumerate(stream):
            a.send(1, message)
            if (i + 1) % 512 == 0:
                await asyncio.sleep(0)  # let flush callbacks deliver
        while got < frames:
            await asyncio.sleep(0)
        elapsed = time.perf_counter() - t0
        nbytes = clock.telemetry.registry.get("repro_net_bytes_sent_total")[0]
        await a.stop()
        await b.stop()
        return elapsed, int(nbytes)

    async def tcp_run(wire):
        clock = AsyncClock()
        factory = lambda: FrameCodec(wire=wire)  # noqa: E731
        outbox = dict(
            max_outbox=frames + 16, high_water=frames + 16, low_water=1
        )
        a = TcpTransport(0, clock, codec_factory=factory, **outbox)
        b = TcpTransport(1, clock, codec_factory=factory, **outbox)
        got = 0

        def receiver(src, message, meta=None):
            nonlocal got
            got += 1

        b.set_receiver(receiver)
        await a.start()
        await b.start()
        addresses = {0: a.address, 1: b.address}
        a.set_peers(addresses)
        b.set_peers(addresses)
        t0 = time.perf_counter()
        for message in stream:
            a.send(1, message)
        while got < frames:
            await asyncio.sleep(0.001)
        elapsed = time.perf_counter() - t0
        nbytes = clock.telemetry.registry.get("repro_net_bytes_sent_total")[0]
        await a.stop()
        await b.stop()
        return elapsed, int(nbytes)

    out = {"loopback": {}, "tcp": {}}
    for transport, run in (("loopback", loopback_run), ("tcp", tcp_run)):
        for wire in ("json", "binary"):
            runs = [asyncio.run(run(wire)) for _ in range(repeats)]
            elapsed, nbytes = min(runs, key=lambda r: r[0])
            out[transport][wire] = {
                "frames": frames,
                "elapsed_s": elapsed,
                "frames_per_s": frames / elapsed,
                "bytes_per_frame": nbytes / frames,
            }
        out[transport]["binary_speedup"] = (
            out[transport]["binary"]["frames_per_s"]
            / out[transport]["json"]["frames_per_s"]
        )
    return out


def _validate_net(doc: dict) -> None:
    """Schema + performance gate for ``BENCH_net.json``
    (``repro-bench/2``).  Fails the bench run when the shape regresses,
    when the binary wire falls under 5× the recorded JSON baseline, or
    when the cluster replay's solution set diverges from the reference
    simulation."""
    if doc.get("schema") != SCHEMA_NET:
        raise ValueError(
            f"net schema must be {SCHEMA_NET}, got {doc.get('schema')!r}"
        )
    for field in (
        "frames_per_s",
        "bytes_per_frame",
        "json_baseline_frames_per_s",
        "speedup_vs_json_baseline",
        "codec",
        "wire_throughput",
        "cluster",
        "detection_latency_s",
        "reference_match",
    ):
        if field not in doc:
            raise ValueError(f"net payload missing {field!r}")
    for field in ("wire", "ack_every", "ack_delay_s", "flush_frames", "flush_bytes"):
        if field not in doc["params"]:
            raise ValueError(f"net params missing {field!r}")
    floor = 5.0 * doc["json_baseline_frames_per_s"]
    if doc["frames_per_s"] < floor:
        raise ValueError(
            f"binary wire throughput {doc['frames_per_s']:.0f} frames/s is "
            f"below the gate of 5x the JSON baseline ({floor:.0f} frames/s)"
        )
    if not doc["reference_match"]:
        raise ValueError(
            "cluster replay diverged from the reference simulation "
            "(reference_match is false)"
        )


def bench_net(args) -> dict:
    """The ``repro.net`` baseline, in three phases:

    * **codec** — encode/decode microbenchmark on a recorded report
      stream, JSON vs binary wire (frames/s, bytes/frame), no transport.
    * **wire_throughput** — unpaced transport-pair blast (loopback and
      TCP, both wires).  The binary loopback number is the headline
      ``frames_per_s`` and is gated at ≥5× the recorded JSON baseline.
    * **cluster** — the original paced 7-node loopback cluster replay
      under the binary wire: end-to-end **detection latency** (wall
      seconds from the last concrete interval of a solution being
      offered at its leaf to the root announcing the detection) and the
      ``reference_match`` equality gate against the simulation.
    """
    import asyncio

    from repro.monitor import HeartbeatSpec
    from repro.net import (
        ClusterSpec,
        LocalCluster,
        TcpTransport,
        simulation_script,
        solution_signatures,
    )

    epochs = 2 if args.quick else 6
    repeats = 2 if args.quick else min(args.repeats, 3)
    blast_frames = 2000 if args.quick else 20000
    spec = ClusterSpec(
        nodes=7,
        degree=2,
        seed=args.timing_seed,
        transport="loopback",
        wire="binary",
        interval_spacing=0.002,
        start_delay=0.05,
        epochs=epochs,
        heartbeat=HeartbeatSpec(period=0.1, loss_tolerance=10),
    )
    script = simulation_script(spec.tree(), seed=spec.seed, epochs=epochs)
    reports = _net_report_stream(script, spec.tree())

    codec = _codec_microbench(reports, blast_frames // 4, repeats)
    throughput = _blast_wire(reports, blast_frames, repeats)

    async def one_run():
        cluster = LocalCluster(spec, script=script)
        offered_at = {}
        await cluster.start()
        # Stamp each interval's offer time for the latency measurement
        # (offers start after start_delay, so wrapping here is safe).
        for runtime in cluster.runtimes.values():
            original = runtime.offer_local

            def wrapped(interval, opened_at=None, *, _orig=original, _c=cluster):
                offered_at[(interval.owner, interval.seq)] = _c.clock.now
                _orig(interval, opened_at)

            runtime.offer_local = wrapped
        t0 = time.perf_counter()
        await cluster.run(until_detections=len(script.reference), timeout=120)
        elapsed = time.perf_counter() - t0
        await asyncio.sleep(0.1)  # grace: over-detections must surface
        wire_summary = cluster.wire_summary()
        await cluster.stop()

        latencies = []
        for record in cluster.detections:
            last_offer = max(
                offered_at.get((iv.owner, iv.seq), 0.0)
                for iv in record.solution.concrete_intervals()
            )
            latencies.append(record.time - last_offer)
        registry = cluster.telemetry.registry
        frames = registry.get("repro_net_frames_total")
        out_frames = sum(v for k, v in frames.items() if k[1] == "out")
        return {
            "elapsed_s": elapsed,
            "frames": int(out_frames),
            "bytes_sent": int(sum(registry.get("repro_net_bytes_sent_total").values())),
            "latencies": latencies,
            "bytes_by_type": wire_summary["bytes_by_type"],
            "signatures": solution_signatures(cluster.detections),
        }

    runs = [asyncio.run(one_run()) for _ in range(repeats)]
    best = min(runs, key=lambda r: r["elapsed_s"])
    latencies = np.array(best["latencies"], dtype=float)
    reference_match = all(
        r["signatures"] == solution_signatures(script.reference) for r in runs
    )

    import inspect

    # Record the coalescing/batching knobs actually in force — the
    # transport defaults every phase above ran with.
    tcp_defaults = {
        name: parameter.default
        for name, parameter in inspect.signature(
            TcpTransport.__init__
        ).parameters.items()
    }

    headline = throughput["loopback"]["binary"]
    doc = {
        "schema": SCHEMA_NET,
        "benchmark": "net",
        "quick": args.quick,
        "params": {
            "nodes": spec.nodes,
            "degree": spec.degree,
            "transport": spec.transport,
            "wire": spec.wire,
            "epochs": epochs,
            "intervals": script.total_intervals,
            "interval_spacing_s": spec.interval_spacing,
            "blast_frames": blast_frames,
            "repeats": repeats,
            "seed": args.timing_seed,
            "ack_every": tcp_defaults["ack_every"],
            "ack_delay_s": tcp_defaults["ack_delay"],
            "flush_frames": tcp_defaults["flush_frames"],
            "flush_bytes": tcp_defaults["flush_bytes"],
        },
        "codec": codec,
        "wire_throughput": throughput,
        "cluster": {
            "elapsed_s": best["elapsed_s"],
            "frames": best["frames"],
            "frames_per_s": best["frames"] / best["elapsed_s"],
            "bytes_sent": best["bytes_sent"],
            "bytes_by_type": best["bytes_by_type"],
            "detections": len(script.reference),
        },
        "frames_per_s": headline["frames_per_s"],
        "bytes_per_frame": headline["bytes_per_frame"],
        "json_baseline_frames_per_s": JSON_BASELINE_FRAMES_PER_S,
        "speedup_vs_json_baseline": headline["frames_per_s"]
        / JSON_BASELINE_FRAMES_PER_S,
        "detection_latency_s": {
            "p50": float(np.percentile(latencies, 50)),
            "p95": float(np.percentile(latencies, 95)),
            "max": float(latencies.max()),
        },
        "reference_match": reference_match,
    }
    _validate_net(doc)
    return doc


# ----------------------------------------------------------------------
# observability overhead + cluster scrape plane
# ----------------------------------------------------------------------
def _validate_obs(doc: dict) -> None:
    """Schema guard for ``BENCH_obs.json`` (``repro-bench/2``): CI and
    the docs tables parse these fields, so the bench fails loudly when
    the shape regresses instead of emitting a silently different file."""
    if doc.get("schema") != SCHEMA_OBS:
        raise ValueError(f"obs schema must be {SCHEMA_OBS}, got {doc.get('schema')!r}")
    core = doc["core"]
    for field in ("telemetry_off", "telemetry_on", "overhead_pct"):
        if field not in core:
            raise ValueError(f"obs core section missing {field!r}")
    on = core["telemetry_on"]
    for field in (
        "best_s",
        "sample_rate",
        "spans_recorded",
        "spans_materialized",
        "sampled_fraction",
        "fold_ms",
    ):
        if field not in on:
            raise ValueError(f"obs telemetry_on section missing {field!r}")
    if "available" not in doc["profiler"]:
        raise ValueError("obs profiler section missing 'available'")
    for field in ("cluster_scrape", "identical_outcomes"):
        if field not in doc:
            raise ValueError(f"obs payload missing {field!r}")


def bench_obs(args) -> dict:
    """The ``repro.obs`` baseline: what always-on observability costs,
    and how fast the cluster scrape plane folds.

    * **core** — the core-ops stream driven with the real telemetry
      wiring at the *default sampling rate* (queued lazy spans via
      ``record_interval``/``mark_interval``, counters folded in batches
      through pre-bound handles — mirroring
      ``HierarchicalRole._observe_core``/``_fold_counts``) vs. bare (no
      observer, no spans).  The solution sets must be identical —
      telemetry must never change detection behaviour, and the hot-loop
      overhead is gated in CI at < 10%.  The deferred queue fold (the
      work a deployment pays at scrape time, off the per-offer latency
      path) is timed separately and reported as ``fold_ms``.
    * **profiler** — the same telemetry-on drive with a continuous
      :class:`repro.obs.SamplingProfiler` riding along, so the cost of
      "always-on profiling too" is a recorded number (skipped where
      signal profiling is unavailable).
    * **cluster_scrape** — a loopback cluster run to completion, then
      scraped over its real admin TCP endpoint
      (:class:`repro.obs.ClusterScraper`) and folded
      (:class:`repro.obs.TelemetryAggregator`), timed separately.
    """
    import asyncio

    from repro.monitor import HeartbeatSpec
    from repro.net import ClusterSpec, LocalCluster, simulation_script
    from repro.obs import (
        DEFAULT_SAMPLE_RATE,
        ClusterScraper,
        SamplingProfiler,
        Telemetry,
        TelemetryAggregator,
        TraceSampler,
    )

    k, n = args.k, args.n
    offers = 2000 if args.quick else args.offers
    # The on/off delta is ~1µs/offer against multi-percent machine
    # noise, so this comparison needs more best-of samples than the
    # throughput benches to converge.
    repeats = 3 if args.quick else max(args.repeats, 9)
    stream = burst_stream(args.timing_seed, k=k, n=n, offers=offers)

    def drive_with_telemetry(profiler=None):
        from repro.detect import RepeatedDetectionCore

        telemetry = Telemetry(sampler=TraceSampler())
        spans = telemetry.spans
        enqueued = telemetry.registry.counter_vec(
            "repro_detect_enqueued_total", "", ("node",)
        )
        pruned = telemetry.registry.counter_vec(
            "repro_detect_pruned_total", "", ("node", "reason")
        )
        enq_handles = {q: enqueued.handle(q) for q in range(k)}
        pruned_handles = {}

        def fold_counts(node, counts):
            # Batch counter fold per queue flush (HierarchicalRole
            # registers the same shape of subscriber in bind()).
            for event, amount in counts.items():
                if event == "enqueued":
                    enq_handles[node](amount)
                elif event is not None and event.startswith("prune"):
                    handle = pruned_handles.get((node, event))
                    if handle is None:
                        handle = pruned_handles[(node, event)] = pruned.handle(
                            (node, event)
                        )
                    handle(amount)

        for q in range(k):
            spans.on_flush(q, lambda counts, _q=q: fold_counts(_q, counts))

        mark = spans.mark_interval
        record = spans.record_interval

        def observer(event, key, interval):
            mark(interval, 0.0, "enqueued" if event == "enqueue" else event, key)

        core = RepeatedDetectionCore(range(k), observer=observer)
        solutions = []
        if profiler is not None:
            profiler.start()
        t0 = time.perf_counter()
        for key, interval in stream:
            record(interval, 0.0, 0.0, key)
            solutions.extend(core.offer(key, interval))
        elapsed = time.perf_counter() - t0
        if profiler is not None:
            profiler.stop()
        t0 = time.perf_counter()
        spans.flush()
        fold_s = time.perf_counter() - t0
        return elapsed, solutions, telemetry, fold_s

    # Interleave on/off timing runs (same rationale as bench_parallel),
    # with the collector paused so a GC cycle landing in one arm but
    # not the other cannot masquerade as telemetry overhead.
    import gc

    _drive(stream, None, k)  # warmup
    drive_with_telemetry()
    off_runs, on_runs, fold_runs = [], [], []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            off_runs.append(_drive(stream, None, k)[1])
            run = drive_with_telemetry()
            on_runs.append(run[0])
            fold_runs.append(run[3])
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    _, _, off_solutions, _ = _drive(stream, None, k)
    _, on_solutions, telemetry, _ = drive_with_telemetry()
    span_stats = telemetry.spans.stats()
    # Overhead from *paired* per-rep ratios, not per-arm bests: the two
    # arms of one rep ran back to back under the same ambient machine
    # state (CPU frequency, cache pressure), so their ratio cancels the
    # run-scale noise that makes independent bests swing by several
    # percent.  The median pair is robust to the odd descheduled rep.
    ratios = sorted(on / off for on, off in zip(on_runs, off_runs))
    median_ratio = ratios[len(ratios) // 2]
    core = {
        "telemetry_off": {
            "best_s": min(off_runs),
            "runs_s": off_runs,
            "offers_per_s": offers / min(off_runs),
        },
        "telemetry_on": {
            "best_s": min(on_runs),
            "runs_s": on_runs,
            "offers_per_s": offers / min(on_runs),
            "sample_rate": DEFAULT_SAMPLE_RATE,
            "spans_recorded": span_stats["recorded"],
            "spans_materialized": span_stats["materialized"],
            "sampled_fraction": round(span_stats["sampled_fraction"], 4),
            "fold_ms": round(1e3 * min(fold_runs), 3),
        },
        "overhead_pct": 100.0 * (median_ratio - 1.0),
        "overhead_pairs_pct": [round(100.0 * (r - 1.0), 2) for r in ratios],
    }
    identical = _solution_signature(off_solutions) == _solution_signature(
        on_solutions
    )

    # -- continuous profiling riding along -----------------------------
    profiler_section = {"available": SamplingProfiler.available()}
    if profiler_section["available"]:
        prof_runs = []
        last_profiler = None
        for _ in range(repeats):
            last_profiler = SamplingProfiler(0.005)
            prof_runs.append(drive_with_telemetry(profiler=last_profiler)[0])
        profiler_section.update(
            interval_s=0.005,
            best_s=min(prof_runs),
            runs_s=prof_runs,
            overhead_vs_telemetry_pct=100.0
            * (min(prof_runs) - min(on_runs))
            / min(on_runs),
            samples=last_profiler.samples,
            unique_stacks=len(last_profiler.stacks),
        )
        if getattr(args, "profile", False):
            out = args.out_dir / "BENCH_obs_profile.txt"
            out.write_text(last_profiler.collapsed() + "\n", encoding="utf-8")
            profiler_section["collapsed_path"] = str(out)

    # -- the scrape plane over a real admin endpoint -------------------
    epochs = 2 if args.quick else 4
    spec = ClusterSpec(
        nodes=7,
        degree=2,
        seed=args.timing_seed,
        transport="loopback",
        interval_spacing=0.002,
        start_delay=0.05,
        epochs=epochs,
        heartbeat=HeartbeatSpec(period=0.1, loss_tolerance=10),
        admin_port=0,
    )
    script = simulation_script(spec.tree(), seed=spec.seed, epochs=epochs)

    async def scrape_run():
        cluster = LocalCluster(spec, script=script)
        await cluster.start()
        await cluster.run(until_detections=len(script.reference), timeout=120)
        port = cluster._admin_server.sockets[0].getsockname()[1]
        scraper = ClusterScraper("127.0.0.1", port)
        scrape_runs, fold_runs = [], []
        scrape = None
        for _ in range(repeats + 1):  # first lap is the warmup
            t0 = time.perf_counter()
            scrape = await scraper.scrape()
            scrape_runs.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            view = TelemetryAggregator().fold(scrape)
            fold_runs.append(time.perf_counter() - t0)
        await cluster.stop()
        return {
            "scrape_best_s": min(scrape_runs[1:]),
            "fold_best_s": min(fold_runs[1:]),
            "nodes": len(scrape.nodes),
            "spans": len(view.spans.spans),
            "stitched_hops": view.stitched_hops,
            "cross_node_alarms": len(view.cross_node_alarms()),
        }

    cluster_scrape = asyncio.run(scrape_run())

    doc = {
        "schema": SCHEMA_OBS,
        "benchmark": "obs",
        "quick": args.quick,
        "params": {
            "k": k,
            "n": n,
            "offers": offers,
            "repeats": repeats,
            "seed": args.timing_seed,
            "cluster_nodes": spec.nodes,
            "cluster_epochs": epochs,
        },
        "core": core,
        "profiler": profiler_section,
        "cluster_scrape": cluster_scrape,
        "identical_outcomes": identical,
    }
    _validate_obs(doc)
    return doc


# ----------------------------------------------------------------------
# traffic plane: offered-load sweep + saturation knee
# ----------------------------------------------------------------------
def _validate_epochs(label: str, block: "dict | None", *, drained: bool) -> None:
    """Gate one epoch-ledger summary block: the epoch accounting
    identity admitted_epochs = solved + stranded + in_flight must hold,
    a drained run must have nothing in flight, and every stranded epoch
    must carry a cause attribution."""
    if not block:
        raise ValueError(f"{label}: epoch ledger block missing")
    for field in ("offered_epochs", "admitted_epochs", "solved", "stranded",
                  "expired", "in_flight", "stranded_by_cause"):
        if field not in block:
            raise ValueError(f"{label}: epoch block missing {field!r}")
    resolved = block["solved"] + block["stranded"] + block["in_flight"]
    if block["admitted_epochs"] != resolved:
        raise ValueError(
            f"{label}: epoch identity broken: admitted_epochs="
            f"{block['admitted_epochs']} != solved+stranded+in_flight={resolved}"
        )
    if drained and block["in_flight"] != 0:
        raise ValueError(
            f"{label}: drained run left {block['in_flight']} epochs in flight"
        )
    by_cause = sum(block["stranded_by_cause"].values())
    if by_cause != block["stranded"]:
        raise ValueError(
            f"{label}: stranded={block['stranded']} but cause attribution "
            f"covers {by_cause}"
        )


def _validate_load(doc: dict) -> None:
    """Schema + behaviour gate for ``BENCH_load.json``
    (``repro-bench/2``).  Fails the bench when the shape regresses, when
    the sweep is too small to show a knee, when any run fails to drain
    (shedding must protect liveness, not replace it with deadlock), when
    any admitted subset diverges from the centralized reference, or when
    either accounting identity — offered = admitted + shed per offer,
    admitted_epochs = solved + stranded + in_flight per epoch — breaks.
    Epochs must not strand below the saturation knee, and the at-or-past
    knee points must strand at least one epoch with a cause attached
    (the goodput cliff must be explained, not just observed)."""
    if doc.get("schema") != SCHEMA_LOAD:
        raise ValueError(
            f"load schema must be {SCHEMA_LOAD}, got {doc.get('schema')!r}"
        )
    for field in ("sweep", "saturation_knee", "closed_loop", "cluster", "determinism"):
        if field not in doc:
            raise ValueError(f"load payload missing {field!r}")
    points = doc["sweep"]["points"]
    if len(points) < 4:
        raise ValueError(f"load sweep needs >= 4 points, got {len(points)}")
    for point in points:
        for field in ("rate", "offered", "admitted", "shed", "sojourn",
                      "goodput_per_s", "epochs"):
            if field not in point:
                raise ValueError(f"load sweep point missing {field!r}")
        if point["offered"] != point["admitted"] + point["shed"]:
            raise ValueError(
                f"accounting identity broken at rate {point['rate']}: "
                f"{point['offered']} != {point['admitted']} + {point['shed']}"
            )
        if not point["drained"]:
            raise ValueError(
                f"run at rate {point['rate']} did not drain — the cluster "
                "must shed under overload, not deadlock"
            )
        if not point["reference_match"]:
            raise ValueError(
                f"admitted subset at rate {point['rate']} diverged from the "
                "centralized reference detector"
            )
        _validate_epochs(
            f"sweep rate {point['rate']}", point["epochs"],
            drained=point["drained"],
        )
    _validate_epochs(
        "closed_loop", doc["closed_loop"].get("epochs"),
        drained=doc["closed_loop"]["drained"],
    )
    _validate_epochs(
        "cluster", doc["cluster"].get("epochs"),
        drained=doc["cluster"]["drained"],
    )
    knee = doc["saturation_knee"]
    if knee is not None:
        below = [p for p in points if p["rate"] < knee["rate"]]
        at_or_past = [p for p in points if p["rate"] >= knee["rate"]]
        for point in below:
            if point["epochs"]["stranded"] != 0:
                raise ValueError(
                    f"rate {point['rate']} is below the knee "
                    f"({knee['rate']}) yet stranded "
                    f"{point['epochs']['stranded']} epochs"
                )
        if knee.get("signal") == "shedding" and not any(
            p["epochs"]["stranded"] > 0 for p in at_or_past
        ):
            raise ValueError(
                "no sweep point at or past the shedding knee stranded an "
                "epoch — the ledger failed to explain the goodput cliff"
            )
    if doc["saturation_knee"] is None:
        raise ValueError(
            "no saturation knee identified — the sweep's top rate must "
            "drive the admission gate into shedding"
        )
    if not any(point["shed"] > 0 for point in points):
        raise ValueError("no sweep point shed any offers; raise the top rate")
    if not doc["determinism"]["all_identical"]:
        raise ValueError("load determinism gate failed (same seed, different counts)")
    if not doc["cluster"]["reference_match"]:
        raise ValueError("live cluster run diverged from the centralized reference")
    if not doc["cluster"]["drained"]:
        raise ValueError("live cluster run did not drain under overload")


def _find_knee(points) -> "dict | None":
    """The saturation knee: the first sweep point that sheds, or — for
    sweeps whose gate never engages — the first whose p95 sojourn blows
    past 4x the lightest point's (queueing-delay takeoff)."""
    for point in points:
        if point["shed"] > 0:
            return {"rate": point["rate"], "signal": "shedding"}
    base = points[0]["sojourn"]["p95"]
    if base:
        for point in points[1:]:
            p95 = point["sojourn"]["p95"]
            if p95 is not None and p95 > 4.0 * base:
                return {"rate": point["rate"], "signal": "latency"}
    return None


def bench_load(args) -> dict:
    """The ``repro.load`` baseline: what the detection cluster does as
    offered load crosses its service capacity.

    * **sweep** — open-loop Poisson traffic at increasing offered rates
      through the virtual-time twin (:func:`repro.load.run_traffic`:
      same session/dispatch/admission code as the live cluster, the
      centralized sink as detector behind a fixed service delay).  Each
      point records offered/admitted/shed, sojourn p50/p95/p99 and
      goodput; the **saturation knee** is the first point where the
      admission gate sheds (or p95 takes off).
    * **closed_loop** — the same cluster under virtual users: offered
      load self-limits, so shedding stays marginal no matter how many
      users pile on — the open/closed contrast the load docs discuss.
    * **cluster** — a live loopback 7-node cluster driven past
      saturation through the full socket stack: must shed, must drain,
      and the detections on the admitted subset must match the
      centralized reference replay.
    * **determinism** — the same seed re-run must reproduce identical
      offered/admitted/shed counts and per-target admissions, in both
      the open- and closed-loop models.
    """
    import asyncio

    from repro.load import LoadSpec, run_traffic
    from repro.monitor import HeartbeatSpec
    from repro.net import ClusterSpec, LocalCluster

    # regular(2, 3) is the 7-node tree every other bench uses.
    degree, height = 2, 3
    total_offers = 140 if args.quick else 420
    rates = [150.0, 400.0, 1200.0, 4000.0] if args.quick else [
        100.0, 300.0, 800.0, 2000.0, 6000.0,
    ]
    service_time = 0.005
    base = LoadSpec(
        mode="open",
        total_offers=total_offers,
        max_outstanding=16,
        resume_outstanding=8,
        pending_timeout=2.0,
        start_delay=0.0,
    )

    def sweep_point(rate: float) -> dict:
        result = run_traffic(
            base,
            seed=args.timing_seed,
            degree=degree,
            height=height,
            service_time=service_time,
            rate=rate,
        )
        summary = result["summary"]
        duration = result["virtual_duration"]
        return {
            "rate": rate,
            "offered": summary["offered"],
            "admitted": summary["admitted"],
            "shed": summary["shed"],
            "shed_by_reason": summary["shed_by_reason"],
            "completed": summary["completed"],
            "abandoned": summary["abandoned"],
            "sojourn": summary["sojourn"],
            "goodput_per_s": summary["completed"] / duration if duration else 0.0,
            "virtual_duration_s": duration,
            "drained": result["drained"],
            "reference_match": result["reference_match"],
            "epochs": result["epochs"],
        }

    points = [sweep_point(rate) for rate in rates]
    knee = _find_knee(points)

    # -- closed loop: offered load self-limits -------------------------
    closed_spec = LoadSpec(
        mode="closed",
        users=32,
        think_time=0.002,
        total_offers=total_offers,
        max_outstanding=16,
        resume_outstanding=8,
        pending_timeout=2.0,
        start_delay=0.0,
    )
    closed = run_traffic(
        closed_spec,
        seed=args.timing_seed,
        degree=degree,
        height=height,
        service_time=service_time,
    )

    # -- determinism: same seed, same counts ---------------------------
    def fingerprint(result: dict) -> dict:
        return {
            "summary": result["summary"],
            "admitted_by_target": result["admitted_by_target"],
            "virtual_duration": result["virtual_duration"],
        }

    open_again = run_traffic(
        base,
        seed=args.timing_seed,
        degree=degree,
        height=height,
        service_time=service_time,
        rate=rates[-1],
    )
    open_first = run_traffic(
        base,
        seed=args.timing_seed,
        degree=degree,
        height=height,
        service_time=service_time,
        rate=rates[-1],
    )
    closed_again = run_traffic(
        closed_spec,
        seed=args.timing_seed,
        degree=degree,
        height=height,
        service_time=service_time,
    )
    open_identical = fingerprint(open_first) == fingerprint(open_again)
    closed_identical = fingerprint(closed) == fingerprint(closed_again)

    # -- live loopback cluster past saturation -------------------------
    cluster_offers = 120 if args.quick else 240
    cluster_spec = ClusterSpec(
        nodes=7,
        degree=2,
        seed=args.timing_seed,
        transport="loopback",
        heartbeat=HeartbeatSpec(period=0.1, loss_tolerance=10),
        load=LoadSpec(
            mode="open",
            rate=3000.0,
            total_offers=cluster_offers,
            max_outstanding=14,
            resume_outstanding=7,
            pending_timeout=3.0,
            start_delay=0.05,
        ),
    )

    async def cluster_run() -> dict:
        cluster = LocalCluster(cluster_spec)
        await cluster.start()
        t0 = time.perf_counter()
        await cluster.run(until_load_drained=True, timeout=120)
        elapsed = time.perf_counter() - t0
        summary = cluster.load_summary()
        reference_match = cluster.load_session.reference_match(cluster.detections)
        drained = cluster.load_session.done
        await cluster.stop()
        return {
            "rate": cluster_spec.load.rate,
            "offered": summary["offered"],
            "admitted": summary["admitted"],
            "shed": summary["shed"],
            "shed_by_reason": summary["shed_by_reason"],
            "completed": summary["completed"],
            "abandoned": summary["abandoned"],
            "sojourn": summary["sojourn"],
            "detections": len(cluster.detections),
            "elapsed_s": elapsed,
            "drained": drained,
            "reference_match": reference_match,
            "epochs": summary["epochs"],
        }

    cluster_section = asyncio.run(cluster_run())

    doc = {
        "schema": SCHEMA_LOAD,
        "benchmark": "load",
        "quick": args.quick,
        "params": {
            "tree_degree": degree,
            "tree_height": height,
            "nodes": 7,
            "total_offers": total_offers,
            "service_time_s": service_time,
            "max_outstanding": base.max_outstanding,
            "resume_outstanding": base.resolved_resume,
            "arrival": base.arrival,
            "dispatch": base.dispatch,
            "policy": base.policy,
            "zipf_s": base.zipf_s,
            "seed": args.timing_seed,
        },
        "sweep": {"rates": rates, "points": points},
        "saturation_knee": knee,
        "closed_loop": {
            "users": closed_spec.users,
            "think_time_s": closed_spec.think_time,
            "offered": closed["summary"]["offered"],
            "admitted": closed["summary"]["admitted"],
            "shed": closed["summary"]["shed"],
            "sojourn": closed["summary"]["sojourn"],
            "drained": closed["drained"],
            "reference_match": closed["reference_match"],
            "epochs": closed["epochs"],
        },
        "cluster": cluster_section,
        "determinism": {
            "all_identical": open_identical and closed_identical,
            "open_identical": open_identical,
            "closed_identical": closed_identical,
        },
    }
    _validate_load(doc)
    return doc


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workloads")
    parser.add_argument("--out-dir", type=Path, default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--k", type=int, default=8, help="queues (core_ops)")
    parser.add_argument("--n", type=int, default=64, help="vector components")
    parser.add_argument("--offers", type=int, default=10000)
    parser.add_argument("--repeats", type=int, default=5, help="timing runs (best-of)")
    parser.add_argument("--timing-seed", type=int, default=1)
    parser.add_argument(
        "--det-seeds",
        type=int,
        nargs="+",
        default=[1, 2, 3],
        help="seeds for the scalar-vs-matrix determinism check",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="max worker count for the parallel benchmark "
        "(sweeps 1, 2, 4, 8 up to this bound)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=0,
        help="offer_batch chunk size for the parallel benchmark "
        "(0 = whole stream in one call)",
    )
    parser.add_argument(
        "--net",
        action="store_true",
        help="also run the socket-runtime loopback benchmark (BENCH_net.json)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="write the obs benchmark's collapsed profiler stacks to "
        "BENCH_obs_profile.txt (needs --only obs; no-op where signal "
        "profiling is unavailable)",
    )
    parser.add_argument(
        "--only",
        choices=("core_ops", "hierarchy", "parallel", "net", "obs", "load"),
        default=None,
        help="run a single benchmark instead of the default set",
    )
    args = parser.parse_args(argv)

    benches = {
        "core_ops": ("BENCH_core_ops.json", bench_core_ops),
        "hierarchy": ("BENCH_hierarchy.json", bench_hierarchy),
        "parallel": ("BENCH_parallel.json", bench_parallel),
        "net": ("BENCH_net.json", bench_net),
        "obs": ("BENCH_obs.json", bench_obs),
        "load": ("BENCH_load.json", bench_load),
    }
    if args.only:
        selected = [args.only]
    else:
        selected = ["core_ops", "hierarchy", "parallel"] + (["net"] if args.net else [])

    results = {benches[key][0]: benches[key][1](args) for key in selected}
    args.out_dir.mkdir(parents=True, exist_ok=True)
    failed = False
    for name, payload in results.items():
        path = args.out_dir / name
        path.write_text(json.dumps(payload, indent=2) + "\n")
        if "speedup" in payload:
            headline = f"speedup={payload['speedup']:.2f}x"
        elif "frames_per_s" in payload:
            headline = (
                f"frames_per_s={payload['frames_per_s']:.0f} "
                f"p50_latency={payload['detection_latency_s']['p50'] * 1e3:.1f}ms"
            )
        elif "saturation_knee" in payload:
            knee = payload["saturation_knee"]
            shed = sum(p["shed"] for p in payload["sweep"]["points"])
            headline = (
                f"knee_at={knee['rate']:g}/s ({knee['signal']}) "
                f"points={len(payload['sweep']['points'])} shed_total={shed}"
            )
        else:
            headline = (
                f"overhead={payload['core']['overhead_pct']:.1f}% "
                f"sampled={payload['core']['telemetry_on']['sampled_fraction']:.3f} "
                f"scrape={payload['cluster_scrape']['scrape_best_s'] * 1e3:.1f}ms "
                f"fold={payload['cluster_scrape']['fold_best_s'] * 1e3:.1f}ms"
            )
        if "determinism" in payload:
            ok = payload["determinism"].get("all_identical")
        elif "reference_match" in payload:
            ok = payload["reference_match"]
        else:
            ok = payload.get("identical_outcomes")
        print(f"{name}: {headline} identical={ok} -> {path}")
        if not ok:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
