"""Micro-benchmarks of the offline oracles (the test-suite's own cost
drivers — worth knowing when scaling the differential tests)."""

import pytest

from repro.detect import holds_definitely, lattice_definitely, replay_centralized
from repro.detect.offline import replay_hierarchical
from repro.topology import SpanningTree

from workload_helpers import random_execution


@pytest.fixture(scope="module")
def trace(rng=None):
    import numpy as np

    return random_execution(4, 120, np.random.default_rng(7), toggle_weight=2).trace


def test_brute_force_oracle(benchmark, trace):
    benchmark(holds_definitely, trace.all_intervals())


def test_lattice_oracle(benchmark):
    import numpy as np

    small = random_execution(3, 18, np.random.default_rng(3)).trace
    benchmark(lattice_definitely, small)


def test_replay_centralized(benchmark, trace):
    result = benchmark(replay_centralized, trace, 0)
    assert isinstance(result, list)


def test_replay_hierarchical(benchmark, trace):
    # A 4-node tree matching the trace's process count.
    tree = SpanningTree(0, {0: None, 1: 0, 2: 0, 3: 1})
    emissions = benchmark(replay_hierarchical, trace, tree)
    assert set(emissions) == {0, 1, 2, 3}
