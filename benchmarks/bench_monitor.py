"""End-to-end bench of the high-level monitoring façade."""

from repro.monitor import ConjunctivePredicate, DistributedMonitor
from repro.topology import small_world_topology


def build_and_run(n=16, episodes=3, seed=5):
    # Small-world graph: short gossip paths so causality threads every
    # hot window comfortably.
    graph = small_world_topology(n, k=6, rewire=0.2, seed=seed)
    monitor = DistributedMonitor(
        graph,
        ConjunctivePredicate.threshold(range(n), "temp", gt=30.0),
        seed=seed,
    )
    for episode in range(episodes):
        base = 5.0 + 80.0 * episode
        for pid in range(n):
            monitor.at(base + 0.1 * pid, monitor.setter(pid, "temp", 40.0))
            monitor.at(base + 45.0 + 0.1 * pid, monitor.setter(pid, "temp", 0.0))
    monitor.enable_gossip(rate=2.0, until=80.0 * episodes)
    monitor.run(until=80.0 * episodes + 120.0)
    return monitor


def test_monitor_facade_end_to_end(benchmark):
    monitor = benchmark.pedantic(build_and_run, rounds=2, iterations=1)
    assert len(monitor.alarms) == 3
    assert all(alarm.members == frozenset(range(16)) for alarm in monitor.alarms)
