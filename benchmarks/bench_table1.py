"""Benchmark + regeneration of Table I (complexity comparison).

Times one full epoch-workload simulation per algorithm on a (2, 4)
tree, and prints the Table I rows — symbolic and empirical — exactly as
``repro-experiments table1`` does.
"""

import pytest

from repro.experiments import format_table1, run_centralized, run_hierarchical, run_table1
from repro.topology import SpanningTree
from repro.workload import EpochConfig

CONFIG = EpochConfig(epochs=10, sync_prob=0.7)


def test_table1_rows(benchmark):
    """Regenerate the full Table I (4 configurations, both algorithms)."""
    rows = benchmark.pedantic(
        lambda: run_table1(configs=((2, 3), (2, 4), (3, 3), (4, 3)), p=10, seed=7),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table1(rows))
    for row in rows:
        assert row.hier_detections == row.cent_detections
        assert row.hier_messages < row.cent_messages
        assert row.hier_comparisons_max_node < row.cent_comparisons_max_node


@pytest.mark.parametrize("d,h", [(2, 3), (2, 4), (3, 3)])
def test_hierarchical_run(benchmark, d, h):
    """Wall-clock of one hierarchical simulation (Table I workload)."""
    result = benchmark.pedantic(
        lambda: run_hierarchical(SpanningTree.regular(d, h), seed=7, config=CONFIG),
        rounds=3,
        iterations=1,
    )
    assert result.metrics.root_detections > 0


@pytest.mark.parametrize("d,h", [(2, 3), (2, 4), (3, 3)])
def test_centralized_run(benchmark, d, h):
    """Wall-clock of one centralized-baseline simulation (same workload)."""
    result = benchmark.pedantic(
        lambda: run_centralized(SpanningTree.regular(d, h), seed=7, config=CONFIG),
        rounds=3,
        iterations=1,
    )
    assert result.metrics.root_detections > 0


def test_zero_assumptions_deployment(benchmark):
    """Wall-clock of the full in-band configuration: distributed tree
    build + self-healing detection on a 20-node WSN graph."""
    from repro.experiments import run_zero_assumptions
    from repro.topology import random_geometric_topology

    graph = random_geometric_topology(20, seed=4)
    result = benchmark.pedantic(
        lambda: run_zero_assumptions(
            graph, seed=4, config=EpochConfig(epochs=6, sync_prob=1.0)
        ),
        rounds=2,
        iterations=1,
    )
    assert result.metrics.root_detections == 6
