"""Ablation benches for the design choices DESIGN.md calls out:
tree shape, α steering, and the Eq. (9) vs Eq. (10) pruning rule."""

from repro.analysis import render_table
from repro.experiments import alpha_sweep, pruning_rule_ablation, tree_shape_ablation

from workload_helpers import random_execution


def test_tree_shape_ablation(benchmark):
    shapes = benchmark.pedantic(
        lambda: tree_shape_ablation(p=8, sync_prob=1.0, seed=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            ["shape", "d", "h", "n", "msgs", "max cmp/node", "total cmp", "detections"],
            [
                [s.name, s.d, s.h, s.n, s.messages,
                 s.max_comparisons_per_node, s.total_comparisons, s.detections]
                for s in shapes
            ],
        )
    )
    by_name = {s.name: s for s in shapes}
    # The star degenerates to centralized behaviour: one node does
    # (almost) all comparison work; deeper trees spread it (d² < n).
    assert (
        by_name["star"].max_comparisons_per_node
        > by_name["shallow"].max_comparisons_per_node
        > by_name["binary"].max_comparisons_per_node
    )


def test_alpha_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: alpha_sweep(d=2, h=4, p=12, seed=5), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["sync_prob", "realized alpha", "messages", "root detections"],
            [
                [r["sync_prob"], f"{r['realized_alpha']:.3f}",
                 int(r["messages"]), int(r["root_detections"])]
                for r in rows
            ],
        )
    )
    # More synchronization -> more aggregation -> more messages upward.
    assert rows[0]["messages"] <= rows[-1]["messages"]
    assert rows[0]["realized_alpha"] <= rows[-1]["realized_alpha"]


def test_pruning_rule_ablation(benchmark, rng):
    traces = [random_execution(4, 120, rng, toggle_weight=2).trace for _ in range(8)]

    def run():
        results = [pruning_rule_ablation(trace, sink=0) for trace in traces]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["trace", "detections", "pruned eq10", "pruned eq9", "same solutions"],
            [
                [i, r.detections_eq10, r.pruned_after_solution_eq10,
                 r.pruned_after_solution_eq9, r.same_solutions]
                for i, r in enumerate(results)
            ],
        )
    )
    assert all(r.same_solutions for r in results)
    assert all(
        r.pruned_after_solution_eq9 >= r.pruned_after_solution_eq10 for r in results
    )


def test_tree_construction_ablation(benchmark):
    from repro.experiments import tree_construction_ablation

    results = benchmark.pedantic(
        lambda: tree_construction_ablation(n=40, max_degree=3, p=8, seed=9),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            ["construction", "degree", "height", "msgs", "max cmp/node", "detections"],
            [[t.name, t.degree, t.height, t.messages,
              t.max_comparisons_per_node, t.detections] for t in results],
        )
    )
    bfs, bounded = results
    assert bounded.degree < bfs.degree
    assert bounded.max_comparisons_per_node < bfs.max_comparisons_per_node
    assert bounded.detections == bfs.detections
