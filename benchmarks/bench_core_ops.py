"""Micro-benchmarks of the hot paths (profiling targets per the
optimization-workflow guide: measure before optimizing).

* vector-timestamp comparison — executed O(d²pn²) times system-wide;
* aggregation ``⊓`` — once per solution;
* detection-core offer throughput — the per-message cost at a node;
* the vectorized all-pairs matrix used by the offline checker.
"""

import numpy as np
import pytest

from repro.clocks import freeze, vc_less
from repro.detect import CentralizedSinkCore, RepeatedDetectionCore
from repro.intervals import Interval, aggregate, pairwise_matrix
from repro.workload.scenarios import figure3_execution

from workload_helpers import random_execution


@pytest.mark.parametrize("n", [8, 64, 1024])
def test_vc_less(benchmark, n):
    u = freeze(np.arange(n))
    v = freeze(np.arange(n) + 1)
    assert benchmark(vc_less, u, v)


@pytest.mark.parametrize("k,n", [(4, 16), (16, 256)])
def test_aggregate(benchmark, k, n, rng):
    los = rng.integers(0, 10, size=(k, n))
    ceiling = los.max(axis=0)
    intervals = [
        Interval(owner=i, seq=0, lo=lo, hi=ceiling + rng.integers(1, 5, size=n))
        for i, lo in enumerate(los)
    ]
    agg = benchmark(aggregate, intervals, 0, 0)
    assert agg.members == frozenset(range(k))


def test_core_offer_throughput(benchmark, rng):
    """Feed a 4-process random execution's intervals through a sink."""
    ex = random_execution(4, 400, rng, toggle_weight=3)
    stream = ex.trace.intervals_in_completion_order()
    assert len(stream) > 50

    def run():
        core = CentralizedSinkCore(sink_id=0, process_ids=range(4))
        for interval in stream:
            core.offer(interval.owner, interval)
        return core

    core = benchmark(run)
    assert core.stats.offers == len(stream)


def test_leaf_core_fast_path(benchmark):
    """Single-queue (leaf) offers: solution + prune every time."""
    intervals = [
        Interval(owner=0, seq=s, lo=np.array([3 * s + 1]), hi=np.array([3 * s + 2]))
        for s in range(200)
    ]

    def run():
        core = RepeatedDetectionCore([0])
        for interval in intervals:
            core.offer(0, interval)
        return core.stats.detections

    assert benchmark(run) == 200


@pytest.mark.parametrize("k", [8, 64])
def test_pairwise_matrix(benchmark, k, rng):
    base = figure3_execution().intervals()
    intervals = []
    for i in range(k):
        lo = rng.integers(0, 6, size=16)
        intervals.append(
            Interval(owner=i, seq=0, lo=lo, hi=lo + rng.integers(0, 6, size=16))
        )
    matrix = benchmark(pairwise_matrix, intervals)
    assert matrix.shape == (k, k)
