#!/usr/bin/env python
"""Trace tooling: capture, visualize, archive, and replay executions.

A monitoring deployment produces executions worth keeping: this example
captures a live run, draws its timing diagram the way the paper draws
Figures 1–3, saves it to JSON, reloads it, and replays it offline
through three different detectors — demonstrating that the whole
detection stack is a pure function of the recorded ``(E, ≺)``.  It then
walks the run's built-in telemetry (``repro.obs``): the causal span
tree explaining each alarm down to the concrete leaf intervals, the
detection-latency percentiles, and the Perfetto trace export.

Run:  python examples/trace_tools.py
"""

import tempfile
from pathlib import Path

from repro import EpochConfig, SpanningTree, run_hierarchical
from repro.analysis import render_timeline
from repro.detect import (
    OneShotDefinitelyCore,
    TokenDefinitelyDetector,
    replay_centralized,
)
from repro.detect.offline import replay_hierarchical
from repro.obs import write_chrome_trace
from repro.sim import load_trace, save_trace
from repro.workload import figure2_execution


def main() -> None:
    # ------------------------------------------------------------------
    print("1. The paper's Figure 2 execution, as a timing diagram")
    print("   (#: predicate true; i/s/r: internal/send/recv, uppercase")
    print("   while the predicate holds):")
    print()
    trace = figure2_execution().trace
    print(render_timeline(trace))
    print()

    # ------------------------------------------------------------------
    print("2. Capture a live 7-node run and archive it")
    result = run_hierarchical(
        SpanningTree.regular(2, 3), seed=3,
        config=EpochConfig(epochs=4, sync_prob=0.8),
    )
    live = result.trace
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.json"
        save_trace(live, path)
        print(f"   saved {live.event_count()} events "
              f"({path.stat().st_size} bytes JSON)")
        reloaded = load_trace(path)
    print(f"   reloaded: {reloaded.event_count()} events, "
          f"{sum(len(v) for v in reloaded.all_intervals().values())} intervals")
    print()

    # ------------------------------------------------------------------
    print("3. Replay the archived trace through every detector")
    tree = SpanningTree.regular(2, 3)
    centralized = replay_centralized(reloaded, sink=0)
    hierarchical = replay_hierarchical(reloaded, tree)[0]

    one_shot = OneShotDefinitelyCore(0, range(reloaded.n))
    token = TokenDefinitelyDetector(range(reloaded.n))
    token.start()
    for interval in reloaded.intervals_in_completion_order():
        one_shot.offer(interval.owner, interval)
        token.offer(interval.owner, interval)

    print(f"   live hierarchical run    : {len(result.detections)} occurrences")
    print(f"   centralized replay [12]  : {len(centralized)} occurrences")
    print(f"   hierarchical replay      : {len(hierarchical)} occurrences")
    print(f"   one-shot replay [7]      : "
          f"{1 if one_shot.detection else 0} (first only, then hangs)")
    print(f"   token replay (≈[11])     : "
          f"{1 if token.detection else 0} (first only, "
          f"{token.token.hops} token hops)")
    assert len(centralized) == len(hierarchical) == len(result.detections)
    print()
    print("Replays agree with the live run — detection is a pure function")
    print("of the recorded causality, so archived traces are full repro-")
    print("duction artifacts.")
    print()

    # ------------------------------------------------------------------
    print("4. Explain the first alarm with the run's causal span trace")
    telemetry = result.sim.telemetry
    first_alarm = telemetry.spans.alarms()[0]
    print()
    print(telemetry.spans.render_tree(first_alarm))
    print()
    rendered = " ".join(
        f"p{q:g}={value:.2f}" for q, value in telemetry.latency_percentiles()
    )
    print(f"   detection latency over {telemetry.detection_latency.count} "
          f"alarms: {rendered} (sim time units)")
    with tempfile.TemporaryDirectory() as tmp:
        perfetto = Path(tmp) / "trace.json"
        count = write_chrome_trace(
            telemetry.spans, perfetto,
            levels={pid: tree.level(pid) for pid in tree.nodes},
        )
        print(f"   Perfetto/chrome://tracing export: {count} trace events "
              f"({perfetto.stat().st_size} bytes)")
    print("   (the repro-trace CLI produces the same exports from the")
    print("    command line: repro-trace --nodes 20 --chrome trace.json)")


if __name__ == "__main__":
    main()
