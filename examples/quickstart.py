#!/usr/bin/env python
"""Quickstart: hierarchical Definitely(Φ) detection on a 7-node tree.

Builds a complete binary spanning tree of height 3, runs the epoch
workload (each process raises its local predicate 8 times; 70% of
epochs are globally synchronized), and prints every satisfaction of the
global conjunctive predicate the root detects — plus the message/space
economics compared against the centralized baseline on the *same*
workload.

Run:  python examples/quickstart.py
"""

from repro import EpochConfig, SpanningTree, run_centralized, run_hierarchical

def main() -> None:
    tree = SpanningTree.regular(d=2, h=3)  # 7 nodes, root 0
    config = EpochConfig(epochs=8, sync_prob=0.7)

    print(f"Spanning tree: d={tree.degree}, h={tree.height}, n={tree.n}")
    print()

    result = run_hierarchical(tree, seed=42, config=config)

    print("Hierarchical detection — occurrences of Definitely(Φ):")
    for record in result.detections:
        concrete = sorted(
            (iv.owner, iv.seq) for iv in record.aggregate.concrete_leaves()
        )
        print(
            f"  t={record.time:8.2f}  detected by P{record.detector}  "
            f"solution set: {concrete}"
        )
    print()

    baseline = run_centralized(SpanningTree.regular(d=2, h=3), seed=42, config=config)
    print("Same workload, hierarchical vs centralized [12]:")
    rows = [
        ("occurrences detected", result.metrics.root_detections,
         baseline.metrics.root_detections),
        ("control messages (hop-counted)", result.metrics.control_messages,
         baseline.metrics.control_messages),
        ("max comparisons at any node", result.metrics.max_comparisons_per_node,
         baseline.metrics.max_comparisons_per_node),
        ("max queued intervals at any node", result.metrics.max_queue_per_node,
         baseline.metrics.max_queue_per_node),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"  {'metric'.ljust(width)}  hierarchical  centralized")
    for name, hier, cent in rows:
        print(f"  {name.ljust(width)}  {str(hier).rjust(12)}  {str(cent).rjust(11)}")
    print()
    print(
        "Note the identical detection count, the smaller message bill, and\n"
        "the per-node load: the centralized sink does all the work, the\n"
        "hierarchy spreads it (Table I of the paper)."
    )
    print()
    from repro.analysis import render_summary, summarize_run

    print(render_summary(summarize_run(result), title="Hierarchical run digest"))


if __name__ == "__main__":
    main()
