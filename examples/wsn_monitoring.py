#!/usr/bin/env python
"""WSN monitoring: "every sensor hot at once" over a geometric network.

The scenario the paper's introduction motivates: a wireless sensor
network (random geometric graph), each node sampling a temperature-like
reading (mean-reverting random walk), and a continuously running
monitor that must raise an alarm *every* time the strong conjunctive
predicate

    Definitely( reading_0 > T  ∧  reading_1 > T  ∧  …  )

holds — without funnelling all load into one sink node.  A BFS spanning
tree over the radio graph carries the hierarchy; gossip between radio
neighbours provides the causality the intervals are judged against.

The hierarchy also gives *group-level* monitoring for free: every
interior node continuously detects the predicate restricted to its own
subtree, which this example reports as per-group alarm counts.

Run:  python examples/wsn_monitoring.py
"""

from repro import SpanningTree, random_geometric_topology
from repro.detect import HierarchicalRole
from repro.sim import ExecutionTrace, MonitoredProcess, Network, Simulator, uniform_delay
from repro.workload import ThresholdSensor


def install_sensor_workload(sim, processes, graph, *, duration, threshold=0.45):
    """Schedule threshold-crossing predicate phases + neighbour gossip."""
    rng = sim.rng("sensors")
    for pid in sorted(processes):
        process = processes[pid]
        sensor = ThresholdSensor(
            threshold=threshold, sample_period=2.0, step=0.2, reversion=0.15
        )
        t = 0.0
        for duration_phase, value in sensor.phases(rng):
            t += duration_phase
            if t >= duration:
                break
            sim.schedule_at(
                t, lambda p=process, v=value: p.alive and p.set_predicate(v)
            )
        # Gossip: periodic sends to a random radio neighbour, threading
        # causality through the network so overlaps become observable.
        t = float(rng.uniform(0, 2.0))
        neighbours = sorted(graph.neighbors(pid))
        while t < duration and neighbours:
            dst = int(rng.choice(neighbours))
            sim.schedule_at(
                t,
                lambda p=process, d=dst: p.alive
                and p.network.is_alive(d)
                and p.send_app(d, "gossip"),
            )
            t += float(rng.exponential(3.0))
    sim.schedule_at(duration, lambda: [
        p.finish() for p in processes.values() if p.alive
    ])


def main() -> None:
    n, duration = 25, 300.0
    graph = random_geometric_topology(n, seed=7)
    tree = SpanningTree.bfs(graph, root=0)
    print(f"Radio graph: {n} sensors, {graph.number_of_edges()} links")
    print(f"BFS spanning tree: height {tree.height}, max degree {tree.degree}")
    print()

    sim = Simulator(seed=7)
    net = Network(sim, graph, uniform_delay(0.2, 0.8))
    trace = ExecutionTrace(n)
    roles = {
        pid: HierarchicalRole(tree.parent_of(pid), tree.children(pid))
        for pid in tree.nodes
    }
    processes = {
        pid: MonitoredProcess(pid, sim, net, trace, roles[pid]) for pid in tree.nodes
    }
    install_sensor_workload(sim, processes, graph, duration=duration)
    for p in processes.values():
        p.start()
    sim.run(until=duration + 60.0)

    root_alarms = roles[tree.root].detections
    print(f"Network-wide alarms (all {n} sensors hot, Definitely): "
          f"{len(root_alarms)}")
    for record in root_alarms:
        print(f"  t={record.time:8.2f}")
    print()

    print("Group-level monitoring (predicate per subtree, interior nodes):")
    for pid in tree.iter_bfs():
        if tree.is_leaf(pid) or pid == tree.root:
            continue
        members = tree.subtree_nodes(pid)
        count = roles[pid].core.stats.detections
        print(f"  group@P{pid:<3} ({len(members):2d} sensors): {count:3d} alarms")
    print()
    print(f"Control messages: {sum(v for (pl, t), v in net.sent.items() if pl == 'control' and t == 'IntervalReport')}"
          f" (each one hop, to the immediate parent)")


if __name__ == "__main__":
    main()
