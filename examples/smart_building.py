#!/usr/bin/env python
"""Smart-building monitoring with the high-level façade.

A building automation network: 9 controllers on a 3×3 mesh, each owning
different local state.  The alarm condition is the heterogeneous
conjunction of Section I of the paper:

    Definitely( occupancy_0 == 0  ∧  temp_i > 28 (HVAC zones)
                ∧  door_j == "locked" (perimeter nodes) )

— "the building was definitely empty, hot, and locked up at once" (time
to cut the HVAC).  The monitor raises the alarm on *every* satisfaction
and keeps working when a controller dies mid-run.

Run:  python examples/smart_building.py
"""

import networkx as nx

from repro.monitor import ConjunctivePredicate, DistributedMonitor
from repro.topology import grid_topology


def main() -> None:
    graph = grid_topology(3, 3)
    # Node roles: 0 = occupancy sensor, 1-4 HVAC zones, 5-8 perimeter.
    hvac = [1, 2, 3, 4]
    perimeter = [5, 6, 7, 8]

    clauses = {0: lambda v: v.get("occupancy") == 0}
    for pid in hvac:
        clauses[pid] = lambda v: v.get("temp", 0.0) > 28.0
    for pid in perimeter:
        clauses[pid] = lambda v: v.get("door") == "locked"

    monitor = DistributedMonitor(
        graph,
        ConjunctivePredicate.per_process(clauses, name="empty-hot-locked"),
        seed=8,
    )
    monitor.on_alarm(
        lambda record: print(
            f"  ALARM t={record.time:7.2f}: building definitely "
            f"empty+hot+locked (witnessed by {sorted(record.members)})"
        )
    )
    group_alarms = []
    monitor.on_group_alarm(lambda pid, emission: group_alarms.append(pid))
    monitor.enable_gossip(rate=0.8, until=400.0)

    # --- morning: occupied, cool, unlocked -----------------------------
    monitor.at(1.0, monitor.setter(0, "occupancy", 12))
    for pid in hvac:
        monitor.at(1.0 + pid * 0.1, monitor.setter(pid, "temp", 22.0))
    for pid in perimeter:
        monitor.at(1.0 + pid * 0.1, monitor.setter(pid, "door", "open"))

    # --- afternoon: heat creeps up -------------------------------------
    for pid in hvac:
        monitor.at(40.0 + pid, monitor.setter(pid, "temp", 29.5))

    # --- evening: everyone leaves, doors lock --------------------------
    monitor.at(80.0, monitor.setter(0, "occupancy", 0))
    for pid in perimeter:
        monitor.at(85.0 + pid * 0.3, monitor.setter(pid, "door", "locked"))

    # --- night: a janitor pops in (breaks the conjunction), leaves -----
    monitor.at(150.0, monitor.setter(0, "occupancy", 1))
    monitor.at(170.0, monitor.setter(0, "occupancy", 0))

    # --- next morning: the HVAC kicks in and staff unlock ---------------
    # Interval-based detection announces on *completed* intervals, so the
    # overnight satisfaction is detected once morning ends the episode.
    for pid in hvac:
        monitor.at(200.0 + pid, monitor.setter(pid, "temp", 21.0))
    for pid in perimeter:
        monitor.at(203.0 + pid * 0.3, monitor.setter(pid, "door", "open"))
    monitor.at(205.0, monitor.setter(0, "occupancy", 15))

    # --- a zone controller crashes; monitoring must continue -----------
    monitor.crash(230.0, 2)
    # A second empty-hot-locked episode among the 8 survivors.
    for pid in [p for p in hvac if p != 2]:
        monitor.at(260.0 + pid, monitor.setter(pid, "temp", 31.0))
    monitor.at(262.0, monitor.setter(0, "occupancy", 0))
    for pid in perimeter:
        monitor.at(264.0 + pid * 0.3, monitor.setter(pid, "door", "locked"))
    # ... and its end, which makes it announceable.
    for pid in [p for p in hvac if p != 2]:
        monitor.at(320.0 + pid, monitor.setter(pid, "temp", 20.0))
    for pid in perimeter:
        monitor.at(323.0 + pid * 0.3, monitor.setter(pid, "door", "open"))
    monitor.at(326.0, monitor.setter(0, "occupancy", 9))

    print("Running 400 time units of building telemetry...")
    monitor.run(until=400.0)
    print()
    print(f"total alarms: {len(monitor.alarms)}")
    full = [a for a in monitor.alarms if len(a.members) == 9]
    partial = [a for a in monitor.alarms if len(a.members) < 9]
    print(f"  full-building alarms   : {len(full)}")
    print(f"  post-crash (8-node)    : {len(partial)}"
          f"  members={sorted(partial[-1].members) if partial else '-'}")
    print(f"  group-level solutions  : {len(group_alarms)} "
          f"(at nodes {sorted(set(group_alarms))})")


if __name__ == "__main__":
    main()
