#!/usr/bin/env python
"""Replay the paper's Figures 1–3 and print each claim, verified.

Every statement the paper derives from its illustrative figures is
checked live against the library:

* Figure 1 — a Definitely(Φ) solution set need not be nested, breaking
  the hierarchical sketch of Garg–Waldecker [7];
* Figure 2 — repeated detection at intermediate nodes is *necessary*:
  P2 must report both {x1,x2} and {x1,x3} or the global occurrence is
  lost; and the occurrence survives P3's failure;
* Figure 3 — the ⊓ aggregation (Eq. 5–6) and Theorem 1.

Run:  python examples/paper_scenarios.py
"""

from repro import aggregate, overlap, vc_less
from repro.detect import replay_centralized
from repro.detect.hierarchical import EmissionKind
from repro.detect.offline import replay_hierarchical
from repro.topology import SpanningTree
from repro.workload import (
    figure1_staggered_execution,
    figure2_execution,
    figure2_tree,
    figure3_execution,
)


def check(label: str, condition: bool) -> None:
    print(f"  [{'ok' if condition else 'FAIL'}] {label}")
    assert condition


def figure1() -> None:
    print("Figure 1 — non-nested solution sets exist")
    ex = figure1_staggered_execution()
    x1, x2 = ex.intervals()[0][0], ex.intervals()[1][0]
    check("overlap({x1, x2}) — Definitely(Φ) holds", overlap([x1, x2]))
    check("min(x1) ≺ min(x2) (staggered start)", vc_less(x1.lo, x2.lo))
    check("max(x1) ≺ max(x2) (staggered end)", vc_less(x1.hi, x2.hi))
    check("NOT nested (nesting needs max(x2) ≺ max(x1))", not vc_less(x2.hi, x1.hi))
    print()


def figure2() -> None:
    print("Figure 2 — repeated detection is necessary; failures survivable")
    ex = figure2_execution()
    ivs = ex.intervals()
    x1, x2, x3, x4, x5 = ivs[0][0], ivs[1][0], ivs[1][1], ivs[2][0], ivs[3][0]
    check("overlap({x1, x2}) — P2's first solution", overlap([x1, x2]))
    check("overlap({x1, x3}) — P2's second solution", overlap([x1, x3]))
    check("NOT overlap({x1, x2, x4, x5}) — first attempt at P3 fails",
          not overlap([x1, x2, x4, x5]))
    check("overlap({x1, x3, x4, x5}) — the global occurrence",
          overlap([x1, x3, x4, x5]))
    agg12 = aggregate([x1, x2], owner=1, seq=0)
    check("one-shot P2 would doom P3: NOT overlap({⊓(x1,x2), x4, x5})",
          not overlap([agg12, x4, x5]))

    spec = figure2_tree()
    tree = SpanningTree(spec["root"], spec["parent"])
    emissions = replay_hierarchical(ex.trace, tree)
    p2_reports = [e for e in emissions[1] if e.kind is EmissionKind.REPORT]
    root_detections = [e for e in emissions[2] if e.kind is EmissionKind.DETECTION]
    check("P2 reports two aggregated intervals", len(p2_reports) == 2)
    check("P3 (root) detects the global occurrence once",
          len(root_detections) == 1)
    check("centralized [12] agrees: exactly one occurrence",
          len(replay_centralized(ex.trace, sink=2)) == 1)

    # Figure 2(c): P3 fails; tree reconnects P2 under P4.
    repaired = SpanningTree(3, {3: None, 1: 3, 0: 1})
    emissions = replay_hierarchical(ex.trace, repaired)
    survivors = [e for e in emissions[3] if e.kind is EmissionKind.DETECTION]
    check("after P3's failure, P4 detects for survivors {P1, P2, P4}",
          len(survivors) >= 1
          and survivors[0].aggregate.members == frozenset({0, 1, 3}))
    print()


def figure3() -> None:
    print("Figure 3 — aggregation ⊓ and Theorem 1")
    ex = figure3_execution()
    ivs = ex.intervals()
    x1, y1, x2, y2 = ivs[0][0], ivs[1][0], ivs[2][0], ivs[3][0]
    X, Y = [x1, x2], [y1, y2]
    check("overlap(X) for X = {x1@P1, x2@P3}", overlap(X))
    check("overlap(Y) for Y = {y1@P2, y2@P4}", overlap(Y))
    aggX, aggY = aggregate(X, owner=0, seq=0), aggregate(Y, owner=1, seq=0)
    check("overlap(⊓X, ⊓Y) — aggregates substitute for the sets",
          overlap([aggX, aggY]))
    check("Theorem 1: overlap(X ∪ Y)", overlap(X + Y))
    flat = aggregate(X + Y, owner=2, seq=0)
    nested = aggregate([aggX, aggY], owner=2, seq=0)
    check("Eq. 7: ⊓(⊓X, ⊓Y) = ⊓(X ∪ Y)",
          nested.lo.tolist() == flat.lo.tolist()
          and nested.hi.tolist() == flat.hi.tolist())
    print()


def main() -> None:
    figure1()
    figure2()
    figure3()
    print("All of the paper's figure-level claims verified.")


if __name__ == "__main__":
    main()
