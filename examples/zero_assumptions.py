#!/usr/bin/env python
"""Zero-assumptions deployment: every substrate built in-band.

The paper assumes a pre-constructed spanning tree and sketches failure
recovery.  This example makes *no* such assumptions: starting from a
bare 31-node WSN radio graph,

1. the spanning tree is constructed by the distributed flooding
   protocol over the real (delayed, non-FIFO) network;
2. hierarchical detection runs on the constructed tree with
   self-healing roles — crash recovery is pure message exchange
   (probe → neighbour status queries → candidate selection →
   hop-by-hop re-rooting → attach handshake), no global oracle;
3. an interior node is crashed mid-run; the orphaned subtrees find new
   homes themselves and monitoring continues over the 30 survivors.

Every line of the run's story comes from the structured event log.
(The one-call wrapper for this whole configuration is
``repro.experiments.run_zero_assumptions``; this script spells the
phases out.)

Run:  python examples/zero_assumptions.py
"""

from repro.fault import FailureInjector, SelfHealingRole
from repro.sim import ExecutionTrace, Network, Simulator, uniform_delay
from repro.topology import TreeBuilder, random_geometric_topology
from repro.workload import EpochConfig, EpochProcess, EpochWorkload


def main() -> None:
    n = 31
    graph = random_geometric_topology(n, seed=9)
    sim = Simulator(seed=9)
    network = Network(sim, graph, uniform_delay(0.5, 1.5))

    # ------------------------------------------------------------------
    print(f"Phase 1 — build the spanning tree in-band ({n}-node radio graph,"
          f" {graph.number_of_edges()} links)")
    builder = TreeBuilder(sim, network, graph, root=0)
    builder.start()
    sim.run()
    tree = builder.tree
    print(f"  built: height={tree.height}, max degree={tree.degree}, "
          f"{network.messages_sent('control')} protocol messages, "
          f"finished at t={builder.completed_at:.1f}")
    print()

    # ------------------------------------------------------------------
    print("Phase 2 — monitoring with self-healing roles (no repair oracle)")
    trace = ExecutionTrace(n)
    roles = {
        pid: SelfHealingRole(
            tree.parent_of(pid), tree.children(pid),
            heartbeat=(5.0, 16.0),
            collect_window=4.0 * tree.height * 1.5,
        )
        for pid in tree.nodes
    }
    processes = {
        pid: EpochProcess(pid, sim, network, trace, roles[pid], tree)
        for pid in tree.nodes
    }
    config = EpochConfig(epochs=12, sync_prob=1.0, drain_time=120.0)
    start = sim.now + 5.0  # workload begins after the build phase
    workload = EpochWorkload(
        sim, processes, tree, config, max_delay=1.5, start_time=start
    )
    workload.install()

    # Crash a busy interior node mid-run.
    victim = max(
        (pid for pid in tree.nodes if not tree.is_leaf(pid) and pid != 0),
        key=lambda pid: len(tree.subtree_nodes(pid)),
    )
    injector = FailureInjector(sim, processes)
    injector.crash_at(start + 90.0, victim)
    for p in processes.values():
        p.start()
    sim.run(until=workload.end_time + 100.0)

    detections = sorted(
        (d for r in roles.values() for d in r.detections), key=lambda d: d.time
    )
    print(f"  victim: P{victim} "
          f"(subtree of {len(tree.subtree_nodes(victim))} before the crash)")
    for record in detections:
        tag = "FULL   " if len(record.members) == n else f"partial({len(record.members)})"
        print(f"  t={record.time:8.1f}  {tag} detected by P{record.detector}")
    print()

    # ------------------------------------------------------------------
    print("The event log's repair narrative:")
    print(
        sim.log.render(
            kinds=["tree_built", "crash", "suspect", "repair_probe",
                   "repair_attached", "repair_partitioned"],
        )
    )
    post = [d for d in detections if len(d.members) == n - 1]
    assert post, "self-healing must restore monitoring over the survivors"
    print()
    print(f"{len(post)} detections cover all {n - 1} survivors after the "
          f"self-healed repair — no oracle, no coordinator, only messages.")


if __name__ == "__main__":
    main()
