#!/usr/bin/env python
"""Fault tolerance: detection survives crashes; the baseline does not.

Three acts on a 15-node binary tree whose radio graph has spare links:

1. healthy operation — the root announces every global occurrence;
2. an interior node crashes — heartbeats detect it, the orphaned
   subtrees reattach over spare links, and detection continues for the
   *partial* predicate over the 14 survivors;
3. the root itself crashes — a new root is promoted and keeps going.

For contrast, the same workload runs under the centralized
repeated-detection baseline [12] with its sink crashed at the same
moment: monitoring stops dead.

Run:  python examples/fault_tolerance.py
"""

from repro import EpochConfig, SpanningTree, run_hierarchical
from repro.topology import tree_with_chords


def describe(result, *, crashed_at=None):
    for record in result.detections:
        scope = (
            "GLOBAL " if len(record.members) == result.tree.n + len(result.crashed)
            else f"partial({len(record.members)}) "
        )
        marker = ""
        if crashed_at is not None and record.time > crashed_at:
            marker = "   <- after the crash"
        print(
            f"  t={record.time:8.2f}  by P{record.detector:<3} "
            f"{scope}members={sorted(record.members)}{marker}"
        )


def main() -> None:
    config = EpochConfig(epochs=10, sync_prob=1.0, drain_time=80.0)

    print("=" * 72)
    print("Act 1 — healthy run (15 nodes, binary tree of height 4)")
    print("=" * 72)
    tree = SpanningTree.regular(2, 4)
    healthy = run_hierarchical(tree, seed=5, config=config)
    print(f"{len(healthy.detections)} detections, all global:")
    describe(healthy)

    print()
    print("=" * 72)
    print("Act 2 — interior node P1 crashes at t=90 (spare links exist)")
    print("=" * 72)
    tree = SpanningTree.regular(2, 4)
    graph = tree_with_chords(tree.as_graph(), extra_edges=14, seed=3)
    crashed = run_hierarchical(
        tree, graph=graph, seed=5, config=config, failures=[(90.0, 1)]
    )
    print(f"{len(crashed.detections)} detections (note the partial ones):")
    describe(crashed, crashed_at=90.0)
    survivors = [d for d in crashed.detections if d.time > 120.0]
    print(f"\n  -> {len(survivors)} detections AFTER the crash, covering the "
          f"14 survivors. The paper's Section III-F in action.")

    print()
    print("=" * 72)
    print("Act 3 — the ROOT crashes at t=90; a new root takes over")
    print("=" * 72)
    tree = SpanningTree.regular(2, 4)
    graph = tree_with_chords(tree.as_graph(), extra_edges=14, seed=3)
    rootless = run_hierarchical(
        tree, graph=graph, seed=5, config=config, failures=[(90.0, 0)]
    )
    describe(rootless, crashed_at=90.0)
    late = [d for d in rootless.detections if d.time > 120.0]
    detectors = {d.detector for d in late}
    print(f"\n  -> late detections announced by promoted root(s) {sorted(detectors)}")
    print("\n  The run's own structured log tells the repair story:")
    print(
        rootless.sim.log.render(
            kinds=["crash", "suspect", "repair_planned", "root_promoted",
                   "reattached", "partitioned", "rejoin"],
        )
    )

    print()
    print("=" * 72)
    print("Contrast — centralized baseline [12], sink crashed at t=90")
    print("=" * 72)
    from repro.detect.roles import CentralizedReporterRole, CentralizedSinkRole
    from repro.fault.injector import FailureInjector
    from repro.sim import ExecutionTrace, Network, Simulator, uniform_delay
    from repro.workload.generator import EpochProcess, EpochWorkload

    tree = SpanningTree.regular(2, 4)
    sim = Simulator(seed=5)
    net = Network(sim, tree.as_graph(), uniform_delay(0.5, 1.5))
    trace = ExecutionTrace(tree.n)
    sink_role = CentralizedSinkRole(tree.nodes)
    roles = {0: sink_role}
    for pid in tree.nodes:
        if pid != 0:
            roles[pid] = CentralizedReporterRole(tree.path_to_root(pid))
    processes = {
        pid: EpochProcess(pid, sim, net, trace, roles[pid], tree)
        for pid in tree.nodes
    }
    EpochWorkload(sim, processes, tree, config, max_delay=1.5).install()
    FailureInjector(sim, processes).crash_at(90.0, 0)
    for p in processes.values():
        p.start()
    sim.run(until=10 * 25.0 + 200.0)
    print(f"  detections: {len(sink_role.detections)} "
          f"(latest at t={max((d.time for d in sink_role.detections), default=0):.2f})")
    print("  -> nothing after t=90: a single sink failure kills the "
          "entire monitoring task.")


if __name__ == "__main__":
    main()
