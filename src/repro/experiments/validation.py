"""Self-validation battery — `repro-experiments validate`.

A fast, self-contained correctness sweep a user can run after install
(or on a new platform) to confirm the reproduction behaves: random
executions and random trees are generated, every detector and oracle is
cross-checked, and a summary of checks × trials is printed.  The full
test-suite covers far more; this is the 10-second smoke version.

Checks per trial:

1. hierarchical root detections == centralized reference detections
   (count and solution identity);
2. every solution at every level unfolds to a concrete interval set
   satisfying Eq. (2);
3. first-detection existence == brute-force `Definitely(Φ)`;
4. event-based detection sound w.r.t. the global-state lattice oracle
   (small trials only);
5. one-shot and token baselines agree on the first occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..detect import OneShotDefinitelyCore, holds_definitely, lattice_definitely
from ..detect.offline import replay_centralized, replay_hierarchical
from ..detect.token import TokenDefinitelyDetector
from ..intervals import overlap
from ..topology.spanning_tree import SpanningTree
from ..workload.scenarios import ScriptedExecution

__all__ = ["ValidationReport", "run_validation"]


@dataclass
class ValidationReport:
    trials: int
    checks: Dict[str, int] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"validation: {self.trials} random executions"]
        for name, count in sorted(self.checks.items()):
            lines.append(f"  [ok] {name}: {count} checks")
        for failure in self.failures:
            lines.append(f"  [FAIL] {failure}")
        lines.append("RESULT: " + ("all checks passed" if self.ok else "FAILURES"))
        return "\n".join(lines)


def _random_execution(n: int, steps: int, rng: np.random.Generator) -> ScriptedExecution:
    ex = ScriptedExecution(n)
    in_flight: list = []
    tag = 0
    for _ in range(steps):
        op = int(rng.integers(0, 4))
        p = int(rng.integers(0, n))
        if op == 0:
            ex.internal(p)
        elif op == 1:
            ex.set_pred(p, not ex.predicate[p])
        elif op == 2:
            name = f"t{tag}"
            tag += 1
            ex.send(p, name)
            in_flight.append(name)
        elif in_flight:
            ex.recv(p, in_flight.pop(int(rng.integers(0, len(in_flight)))))
    for p in range(n):
        if ex.predicate[p]:
            ex.set_pred(p, False)
    return ex


def _random_tree(n: int, rng: np.random.Generator) -> SpanningTree:
    parent = {0: None}
    for i in range(1, n):
        parent[i] = int(rng.integers(0, i))
    return SpanningTree(0, parent)


def run_validation(
    *, trials: int = 50, seed: int = 0, batch: int = 0
) -> ValidationReport:
    """``batch > 0`` replays the one-shot baseline through
    :meth:`~repro.detect.core.RepeatedDetectionCore.offer_batch` in
    chunks of that size and cross-checks it against the scalar replay —
    exercising the batched ingestion path inside the battery."""
    rng = np.random.default_rng(seed)
    report = ValidationReport(trials=trials)

    def check(name: str, condition: bool, context: str) -> None:
        if condition:
            report.checks[name] = report.checks.get(name, 0) + 1
        else:
            report.failures.append(f"{name} @ {context}")

    for trial in range(trials):
        n = int(rng.integers(2, 5))
        ex = _random_execution(n, int(rng.integers(5, 40)), rng)
        trace = ex.trace
        context = f"trial {trial} (n={n}, seed={seed})"

        reference = replay_centralized(trace, sink=0)
        tree = _random_tree(n, rng)
        emissions = replay_hierarchical(trace, tree)

        check(
            "hierarchical == centralized detections",
            len(emissions[0]) == len(reference),
            context,
        )
        safe = all(
            overlap(list(e.aggregate.concrete_leaves()))
            for emitted in emissions.values()
            for e in emitted
        )
        check("every solution satisfies Eq. (2)", safe, context)
        ground_truth = holds_definitely(trace.all_intervals())
        check(
            "detects iff Definitely holds",
            bool(reference) == ground_truth,
            context,
        )
        if n <= 3 and trace.event_count() <= 20:
            check(
                "sound vs lattice oracle",
                (not ground_truth) or lattice_definitely(trace),
                context,
            )

        one_shot = OneShotDefinitelyCore(0, range(n))
        token = TokenDefinitelyDetector(range(n))
        token.start()
        ordered = trace.intervals_in_completion_order()
        for interval in ordered:
            one_shot.offer(interval.owner, interval)
            token.offer(interval.owner, interval)

        def key(solution):
            if solution is None:
                return None
            return tuple(sorted((iv.owner, iv.seq) for iv in solution.heads.values()))

        check(
            "one-shot == token first occurrence",
            key(one_shot.detection) == key(token.detection),
            context,
        )

        if batch > 0:
            batched = OneShotDefinitelyCore(0, range(n))
            stream = [(iv.owner, iv) for iv in ordered]
            for start in range(0, len(stream), batch):
                batched.offer_batch(stream[start : start + batch])
            check(
                "batched offer == scalar offer",
                key(batched.detection) == key(one_shot.detection),
                context,
            )
    return report
