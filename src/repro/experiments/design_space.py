"""Experiment: the detection-algorithm design space, measured.

Section I of the paper positions the hierarchical algorithm against two
families of prior work: centralized detectors (all queues, time and
risk at a sink [7], [8], [12]) and distributed one-shot detectors
(queues at their owners, token/control circulation, [9]–[11]).  This
experiment runs one representative of each family over the *identical*
workload and measures the three axes the paper argues about:

* control messages (hop-counted),
* where comparison work lands (max per node vs total),
* where queue space lands (max per node),
* and what each can actually deliver: every occurrence (repeated) vs
  the first one only.

The hierarchical algorithm is the only one delivering repeated
detection, and it does so with one-hop traffic and bounded per-node
load — the measured version of the paper's Contributions list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.report import render_table
from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig
from .harness import run_centralized, run_hierarchical, run_token

__all__ = ["AlgorithmProfile", "design_space_comparison", "format_design_space"]


@dataclass
class AlgorithmProfile:
    name: str
    repeated: bool
    detections: int
    control_messages: int
    cmp_max_node: int
    cmp_total: int
    queue_max_node: int
    survives_any_single_crash: bool


def design_space_comparison(
    *,
    d: int = 2,
    h: int = 4,
    p: int = 10,
    sync_prob: float = 0.8,
    seed: int = 17,
) -> List[AlgorithmProfile]:
    config = EpochConfig(epochs=p, sync_prob=sync_prob)

    hier = run_hierarchical(SpanningTree.regular(d, h), seed=seed, config=config)
    cent = run_centralized(SpanningTree.regular(d, h), seed=seed, config=config)
    one_shot = run_centralized(
        SpanningTree.regular(d, h), seed=seed, config=config, one_shot=True
    )
    token = run_token(SpanningTree.regular(d, h), seed=seed, config=config)

    def profile(name, result, *, repeated, survives):
        return AlgorithmProfile(
            name=name,
            repeated=repeated,
            detections=len(result.detections),
            control_messages=result.metrics.control_messages,
            cmp_max_node=result.metrics.max_comparisons_per_node,
            cmp_total=result.metrics.total_comparisons,
            queue_max_node=result.metrics.max_queue_per_node,
            survives_any_single_crash=survives,
        )

    return [
        profile("hierarchical (this paper)", hier, repeated=True, survives=True),
        profile("centralized repeated [12]", cent, repeated=True, survives=False),
        profile("centralized one-shot [7]", one_shot, repeated=False, survives=False),
        profile("distributed token (≈[11])", token, repeated=False, survives=False),
    ]


def format_design_space(profiles: List[AlgorithmProfile]) -> str:
    return render_table(
        ["algorithm", "repeated", "detections", "ctrl msgs",
         "cmp max/node", "cmp total", "queue max/node", "survives crash"],
        [
            [pr.name, "yes" if pr.repeated else "no", pr.detections,
             pr.control_messages, pr.cmp_max_node, pr.cmp_total,
             pr.queue_max_node, "yes" if pr.survives_any_single_crash else "no"]
            for pr in profiles
        ],
    )
