"""One-shot regeneration of every experimental artifact.

``repro-experiments all`` (or :func:`generate_report`) runs the full
battery — Table I, Figures 4–5, and every extension experiment — and
produces a single plain-text report mirroring EXPERIMENTS.md's measured
sections.  Useful for re-validating the reproduction after changes, on
new hardware, or with different seeds.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.report import render_table
from .ablation import (
    alpha_sweep,
    pruning_rule_ablation,
    tree_construction_ablation,
    tree_shape_ablation,
)
from .availability import availability_sweep, format_availability
from .compression import compression_ablation
from .design_space import design_space_comparison, format_design_space
from .figures import empirical_message_sweep, format_figure, message_complexity_figure
from .latency import format_latency, latency_sweep
from .levels import format_levels, level_breakdown
from .scaling import growth_slopes, scaling_sweep
from .table1 import format_table1, run_table1

__all__ = ["generate_report"]


def _header(title: str) -> str:
    bar = "=" * 72
    return f"{bar}\n{title}\n{bar}"


def generate_report(
    *, p: int = 10, seed: int = 7, empirical: bool = True, workers: int = 1
) -> str:
    """Run everything; return the full report text.  ``workers`` shards
    the sweeps that go through the parallel engine (Table I, scaling,
    tree-shape ablation); the report is identical for any value."""
    sections: List[str] = []

    sections.append(_header("Table I — complexity comparison"))
    sections.append(format_table1(run_table1(p=p, seed=seed, workers=workers)))

    for d, label in ((2, "Figure 4"), (4, "Figure 5")):
        sections.append(_header(f"{label} — message complexity (d={d})"))
        sections.append(format_figure(message_complexity_figure(d, p=20)))
        if empirical:
            heights = (2, 3, 4, 5) if d == 2 else (2, 3, 4)
            sections.append("")
            sections.append(
                format_figure(empirical_message_sweep(d, heights, p=p, seed=seed))
            )

    sections.append(_header("Extension — Table-I scaling, measured"))
    points = scaling_sweep(d=2, heights=(3, 4, 5), p=p, seed=seed, workers=workers)
    sections.append(
        render_table(
            ["h", "n", "cmp max/node hier", "cmp max/node cent",
             "space max/node hier", "space max/node cent"],
            [[pt.h, pt.n, pt.hier_cmp_max_node, pt.cent_cmp_max_node,
              pt.hier_space_max_node, pt.cent_space_max_node] for pt in points],
        )
    )
    fmt = lambda xs: ", ".join(f"{x:.2f}" for x in xs)
    sections.append(
        f"growth exponents vs n — cent cmp: {fmt(growth_slopes(points, 'cent_cmp_max_node'))}; "
        f"hier cmp: {fmt(growth_slopes(points, 'hier_cmp_max_node'))}"
    )

    sections.append(_header("Extension — the design space"))
    sections.append(format_design_space(design_space_comparison(p=p, seed=seed)))

    sections.append(_header("Extension — availability under crashes"))
    sections.append(format_availability(availability_sweep(seed=seed)))

    sections.append(_header("Extension — detection latency"))
    sections.append(format_latency(latency_sweep(p=p, seed=seed)))

    sections.append(_header("Extension — per-level message anatomy"))
    sections.append(format_levels(level_breakdown(p=p, seed=seed)))

    sections.append(_header("Extension — starvation behaviour"))
    from .starvation import format_starvation, starvation_comparison

    sections.append(format_starvation(starvation_comparison(p=p, seed=seed)))

    sections.append(_header("Ablation — tree shape"))
    shapes = tree_shape_ablation(p=p, sync_prob=1.0, seed=seed, workers=workers)
    sections.append(
        render_table(
            ["shape", "d", "h", "n", "msgs", "max cmp/node", "detections"],
            [[s.name, s.d, s.h, s.n, s.messages,
              s.max_comparisons_per_node, s.detections] for s in shapes],
        )
    )

    sections.append(_header("Ablation — tree construction (WSN graph)"))
    constructions = tree_construction_ablation(seed=seed)
    sections.append(
        render_table(
            ["construction", "degree", "height", "msgs", "max cmp/node", "detections"],
            [[t.name, t.degree, t.height, t.messages,
              t.max_comparisons_per_node, t.detections] for t in constructions],
        )
    )

    sections.append(_header("Ablation — alpha steering"))
    rows = alpha_sweep(seed=seed)
    sections.append(
        render_table(
            ["sync_prob", "realized alpha", "messages", "detections"],
            [[r["sync_prob"], f"{r['realized_alpha']:.3f}",
              int(r["messages"]), int(r["root_detections"])] for r in rows],
        )
    )

    sections.append(_header("Ablation — timestamp compression"))
    comp_rows = [
        ("epoch sync=1.0", compression_ablation(d=2, h=4, p=p, sync_prob=1.0, seed=seed)),
        ("local traffic", compression_ablation(d=2, h=4, p=p, seed=seed, workload="local")),
    ]
    sections.append(
        render_table(
            ["workload", "reports", "raw", "adaptive", "savings"],
            [[name, r.reports, r.raw_entries, r.adaptive_entries,
              f"{r.savings:.1%}"] for name, r in comp_rows],
        )
    )

    sections.append(_header("Ablation — pruning rule (Eq. 9 vs Eq. 10)"))
    from ..workload.scenarios import figure2_execution

    result = pruning_rule_ablation(figure2_execution().trace, sink=2)
    sections.append(
        f"figure-2 trace: detections eq10={result.detections_eq10} "
        f"eq9={result.detections_eq9}, pruned eq10="
        f"{result.pruned_after_solution_eq10} eq9="
        f"{result.pruned_after_solution_eq9}, same solutions: "
        f"{result.same_solutions}"
    )

    sections.append(_header("Self-validation"))
    from .validation import run_validation

    sections.append(run_validation(trials=30, seed=seed).render())

    return "\n\n".join(sections) + "\n"
