"""Experiment: per-level message structure of the hierarchy.

Eq. (11) is a sum over tree levels: level ``i`` (leaves = 1) sends
``d^(h-i) · p · (dα)^(i-1)`` reports to level ``i+1``.  This experiment
measures the actual per-level report counts of a simulated run and
compares them against

* the paper's per-level model at the realized α, and
* the structural bound (a node cannot emit more aggregates than the
  weakest of its input streams — the correction noted in
  EXPERIMENTS.md).

Leaves are exact by construction (every local interval is forwarded:
level-1 count == #leaves × p); higher levels shrink geometrically with
the realized α.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.report import render_table
from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig
from .harness import run_hierarchical

__all__ = ["LevelRow", "level_breakdown", "format_levels"]


@dataclass
class LevelRow:
    level: int  # paper numbering: leaves = 1, root = h
    nodes: int
    reports_sent: int  # aggregates emitted by this level (root: detections)
    paper_model: float  # d^(h-i) · p · (dα)^(i-1) at realized α
    realized_alpha: float


def level_breakdown(
    *,
    d: int = 2,
    h: int = 4,
    p: int = 12,
    sync_prob: float = 0.6,
    seed: int = 31,
) -> List[LevelRow]:
    tree = SpanningTree.regular(d, h)
    result = run_hierarchical(
        tree, seed=seed, config=EpochConfig(epochs=p, sync_prob=sync_prob)
    )
    emissions_by_level: Dict[int, int] = {}
    nodes_by_level: Dict[int, int] = {}
    for pid, role in result.roles.items():
        level = tree.level(pid)
        nodes_by_level[level] = nodes_by_level.get(level, 0) + 1
        emissions_by_level[level] = (
            emissions_by_level.get(level, 0) + len(role.core.emissions)
        )
    upper = [
        a for lvl, a in result.metrics.realized_alpha_by_level.items() if lvl >= 2
    ]
    alpha = sum(upper) / len(upper) if upper else 0.0
    rows: List[LevelRow] = []
    for level in sorted(nodes_by_level):
        rows.append(
            LevelRow(
                level=level,
                nodes=nodes_by_level[level],
                reports_sent=emissions_by_level.get(level, 0),
                paper_model=d ** (h - level) * p * (d * alpha) ** (level - 1),
                realized_alpha=alpha,
            )
        )
    return rows


def format_levels(rows: List[LevelRow]) -> str:
    return render_table(
        ["level", "nodes", "reports sent", "paper model @ realized alpha"],
        [
            [r.level, r.nodes, r.reports_sent, f"{r.paper_model:.1f}"]
            for r in rows
        ],
    )
