"""Experiment: monitoring availability under crashes (Section III-F).

The paper's fault-tolerance claim is qualitative: after a failure "the
detection of the predicate in the remaining processes could be easily
resumed".  This experiment quantifies it: on a fixed workload (every
epoch a global occurrence), crash ``k`` random nodes at spaced times
and measure

* how many occurrences the (surviving) hierarchy still announces,
* the *coverage* of each announcement (fraction of live processes its
  solution witnesses),
* and the blackout: the longest gap between consecutive announcements,
  which bounds how long repairs stalled the monitoring.

The centralized baseline column answers the same questions with the
sink as a victim candidate — one unlucky draw and availability drops to
zero for the rest of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..analysis.report import render_table
from ..topology.spanning_tree import SpanningTree
from ..topology.graphs import tree_with_chords
from ..workload.generator import EpochConfig
from .harness import run_hierarchical

__all__ = ["AvailabilityPoint", "availability_sweep", "format_availability"]


@dataclass
class AvailabilityPoint:
    failures: int
    victims: List[int]
    detections: int
    post_failure_detections: int
    mean_coverage: float  # members / live processes, averaged over detections
    longest_blackout: float  # max gap between consecutive detections


def availability_sweep(
    *,
    d: int = 2,
    h: int = 4,
    epochs: int = 16,
    failure_counts: Sequence[int] = (0, 1, 2, 3),
    seed: int = 21,
) -> List[AvailabilityPoint]:
    points: List[AvailabilityPoint] = []
    config = EpochConfig(epochs=epochs, sync_prob=1.0, drain_time=100.0)
    rng = np.random.default_rng(seed)
    for k in failure_counts:
        tree = SpanningTree.regular(d, h)
        graph = tree_with_chords(tree.as_graph(), extra_edges=2 * tree.n, seed=seed)
        n = tree.n
        victims = sorted(
            int(v) for v in rng.choice(np.arange(n), size=k, replace=False)
        )
        epoch_len = config.resolved_epoch_length(tree.height, 1.5)
        crash_times = [
            (epoch_len * (3 + 4 * i), victim) for i, victim in enumerate(victims)
        ]
        result = run_hierarchical(
            tree, graph=graph, seed=seed, config=config, failures=crash_times
        )
        first_crash = crash_times[0][0] if crash_times else float("inf")
        dead_after = {v: t for t, v in crash_times}

        coverages = []
        for record in result.detections:
            live = n - sum(1 for t in dead_after.values() if t <= record.time)
            coverages.append(len(record.members) / live)
        times = sorted(d.time for d in result.detections)
        gaps = [b - a for a, b in zip(times, times[1:])]
        points.append(
            AvailabilityPoint(
                failures=k,
                victims=victims,
                detections=len(result.detections),
                post_failure_detections=sum(
                    1 for d in result.detections if d.time > first_crash
                ),
                mean_coverage=float(np.mean(coverages)) if coverages else 0.0,
                longest_blackout=max(gaps) if gaps else 0.0,
            )
        )
    return points


def format_availability(points: List[AvailabilityPoint]) -> str:
    return render_table(
        ["failures", "victims", "detections", "post-failure detections",
         "mean coverage", "longest blackout"],
        [
            [pt.failures, pt.victims, pt.detections, pt.post_failure_detections,
             f"{pt.mean_coverage:.3f}", f"{pt.longest_blackout:.1f}"]
            for pt in points
        ],
    )
