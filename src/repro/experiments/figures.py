"""Experiments: Figures 4 and 5 — message complexity vs. tree height.

Figure 4: ``d = 2, p = 20``, α ∈ {0.1, 0.45}; Figure 5: the same with
``d = 4``.  Each figure plots, against the tree height ``h``, the total
number of control messages of

* the hierarchical algorithm (Eq. 11, per α), and
* the centralized repeated-detection algorithm [12] routed over the
  same tree (Eq. 12; we plot the corrected closed form — see the
  erratum note — and also the paper's printed Eq. 14 for reference).

The analytic series reproduce the paper's curves; an optional empirical
sweep runs the simulator at each height and reports measured message
counts next to the realized α, confirming the shape: hierarchical stays
a factor ``≈ (h-1)(1-α)`` below centralized, the gap widening with
network size, and smaller α means fewer hierarchical messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.complexity import (
    centralized_messages,
    centralized_messages_paper_eq14,
    hierarchical_messages,
    tree_nodes,
)
from ..analysis.report import render_series
from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig
from .harness import run_centralized, run_hierarchical

__all__ = ["FigureData", "message_complexity_figure", "empirical_message_sweep", "format_figure"]


@dataclass
class FigureData:
    title: str
    d: int
    p: int
    heights: List[int]
    series: Dict[str, List[float]] = field(default_factory=dict)


def message_complexity_figure(
    d: int,
    *,
    p: int = 20,
    alphas: Sequence[float] = (0.1, 0.45),
    heights: Optional[Sequence[int]] = None,
) -> FigureData:
    """Analytic series of Figure 4 (``d=2``) / Figure 5 (``d=4``)."""
    if heights is None:
        heights = list(range(2, 11)) if d == 2 else list(range(2, 7))
    heights = list(heights)
    fig = FigureData(
        title=f"Total #messages vs tree height (d={d}, p={p})",
        d=d,
        p=p,
        heights=heights,
    )
    for alpha in alphas:
        fig.series[f"hierarchical a={alpha}"] = [
            hierarchical_messages(p, d, h, alpha) for h in heights
        ]
    fig.series["centralized [12] (corrected Eq.14)"] = [
        centralized_messages(p, d, h) for h in heights
    ]
    fig.series["centralized [12] (printed Eq.14)"] = [
        centralized_messages_paper_eq14(p, d, h) for h in heights
    ]
    return fig


def empirical_message_sweep(
    d: int,
    heights: Sequence[int],
    *,
    p: int = 20,
    sync_prob: float = 0.6,
    seed: int = 11,
) -> FigureData:
    """Measured message counts from full simulations at each height."""
    fig = FigureData(
        title=(
            f"Measured #control messages vs tree height "
            f"(d={d}, p={p}, sync_prob={sync_prob})"
        ),
        d=d,
        p=p,
        heights=list(heights),
    )
    hier_series: List[float] = []
    cent_series: List[float] = []
    alpha_series: List[float] = []
    n_series: List[float] = []
    for h in heights:
        config = EpochConfig(epochs=p, sync_prob=sync_prob)
        hier = run_hierarchical(SpanningTree.regular(d, h), seed=seed, config=config)
        cent = run_centralized(SpanningTree.regular(d, h), seed=seed, config=config)
        hier_series.append(float(hier.metrics.control_messages))
        cent_series.append(float(cent.metrics.control_messages))
        upper = [
            a
            for lvl, a in hier.metrics.realized_alpha_by_level.items()
            if lvl >= 2
        ]
        alpha_series.append(sum(upper) / len(upper) if upper else 0.0)
        n_series.append(float(tree_nodes(d, h)))
    fig.series["n"] = n_series
    fig.series["hierarchical (measured)"] = hier_series
    fig.series["centralized (measured)"] = cent_series
    fig.series["realized alpha"] = alpha_series
    return fig


def format_figure(fig: FigureData) -> str:
    return render_series(fig.title, fig.heights, fig.series)
