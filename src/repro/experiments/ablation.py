"""Ablation experiments for the design choices DESIGN.md calls out.

1. **Tree shape** (:func:`tree_shape_ablation`): the hierarchical
   algorithm degenerates into the centralized one on a star (``h=2``);
   sweeping shapes of similar ``n`` — star, shallow, binary, chain —
   shows how the hierarchy trades per-node load against report hops,
   the ``d² < n`` argument of Section IV-C.

2. **α steering** (:func:`alpha_sweep`): the workload's ``sync_prob``
   knob versus the realized per-level aggregation probability and the
   resulting message count — the empirical counterpart of the α
   parameter in Eq. (11).

3. **Pruning rule** (:func:`pruning_rule_ablation`): the paper prunes
   with the approximation Eq. (10) because ``min(succ(x_j))`` is not
   yet known online.  With hindsight (a recorded trace), the exact
   Eq. (9) test can be evaluated; this ablation replays executions
   under both rules and reports how often the approximation delays a
   removal that Eq. (9) would have allowed — and verifies both detect
   identical occurrence sequences (Theorem 3/4's point: Eq. 10 is safe
   and live, merely conservative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..clocks import vc_less
from ..detect.centralized import CentralizedSinkCore
from ..intervals import Interval
from ..sim.trace import ExecutionTrace
from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig
from .harness import run_centralized, run_hierarchical

__all__ = [
    "ShapeResult",
    "tree_shape_ablation",
    "alpha_sweep",
    "PruningResult",
    "pruning_rule_ablation",
    "replay_with_eq9",
    "TreeConstructionResult",
    "tree_construction_ablation",
]


# ----------------------------------------------------------------------
# 1. tree shape
# ----------------------------------------------------------------------
@dataclass
class ShapeResult:
    name: str
    d: int
    h: int
    n: int
    messages: int
    max_comparisons_per_node: int
    total_comparisons: int
    max_queue_per_node: int
    detections: int


def tree_shape_ablation(
    shapes: Sequence[Tuple[str, int, int]] = (
        ("star", 14, 2),
        ("shallow", 3, 3),
        ("binary", 2, 4),
    ),
    *,
    p: int = 10,
    sync_prob: float = 0.7,
    seed: int = 3,
    workers: int = 1,
) -> List[ShapeResult]:
    """Run the hierarchical detector over differently shaped trees of
    comparable size (default shapes: n = 15, 13, 15).  ``workers``
    shards the independent per-shape runs over the parallel engine."""
    from .parallel import RunSpec, ShardedRunner

    specs = [
        RunSpec(
            fn=run_hierarchical,
            args=(SpanningTree.regular(d, h),),
            kwargs={"config": EpochConfig(epochs=p, sync_prob=sync_prob)},
            seed=seed,
            label=f"shape-{name}",
        )
        for name, d, h in shapes
    ]
    report = ShardedRunner(workers=workers).run(specs)
    out: List[ShapeResult] = []
    for (name, d, h), shard in zip(shapes, report.shards):
        out.append(
            ShapeResult(
                name=name,
                d=d,
                h=h,
                n=SpanningTree.regular(d, h).n,
                messages=shard.metrics.control_messages,
                max_comparisons_per_node=shard.metrics.max_comparisons_per_node,
                total_comparisons=shard.metrics.total_comparisons,
                max_queue_per_node=shard.metrics.max_queue_per_node,
                detections=shard.metrics.root_detections,
            )
        )
    return out


# ----------------------------------------------------------------------
# 2. alpha steering
# ----------------------------------------------------------------------
def alpha_sweep(
    *,
    d: int = 2,
    h: int = 4,
    p: int = 12,
    sync_probs: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    seed: int = 5,
) -> List[Dict[str, float]]:
    """Realized α and message counts across the sync knob."""
    rows: List[Dict[str, float]] = []
    for sync_prob in sync_probs:
        result = run_hierarchical(
            SpanningTree.regular(d, h),
            seed=seed,
            config=EpochConfig(epochs=p, sync_prob=sync_prob),
        )
        upper = [
            a
            for lvl, a in result.metrics.realized_alpha_by_level.items()
            if lvl >= 2
        ]
        rows.append(
            {
                "sync_prob": sync_prob,
                "realized_alpha": sum(upper) / len(upper) if upper else 0.0,
                "messages": float(result.metrics.control_messages),
                "root_detections": float(result.metrics.root_detections),
            }
        )
    return rows


# ----------------------------------------------------------------------
# 3. pruning rule: Eq. (10) vs exact Eq. (9)
# ----------------------------------------------------------------------
class _Eq9SinkCore(CentralizedSinkCore):
    """Centralized core whose post-solution pruning uses the exact
    Eq. (9) — ``remove x_i iff ∀ x_j (j≠i): min(succ(x_j)) ≮ max(x_i)``
    — evaluated with hindsight from the full interval lists."""

    def __init__(self, sink_id, process_ids, successors):
        super().__init__(sink_id, process_ids)
        # successors: (owner, seq) -> successor interval (or None)
        self._successors = successors
        core = self._core

        def removable(heads: Dict[Hashable, Interval]) -> set:
            keys = list(heads)
            removable_keys = set()
            for a in keys:
                hi_a = heads[a].hi
                ok = True
                for b in keys:
                    if b == a:
                        continue
                    succ = self._successors.get((heads[b].owner, heads[b].seq))
                    if succ is not None and vc_less(succ.lo, hi_a):
                        ok = False
                        break
                if ok:
                    removable_keys.add(a)
            # Eq. (9) may allow zero removals only if every interval can
            # recur — impossible by the paper's Theorem 4 argument, but
            # guard with Eq. (10) as the paper effectively does online.
            if not removable_keys:
                return type(core)._removable_heads(core, heads)
            return removable_keys

        core._removable_heads = removable  # type: ignore[method-assign]


@dataclass
class PruningResult:
    detections_eq10: int
    detections_eq9: int
    pruned_after_solution_eq10: int
    pruned_after_solution_eq9: int
    same_solutions: bool


def replay_with_eq9(trace: ExecutionTrace, sink: int = 0):
    """Replay a recorded trace through the Eq. (9) sink."""
    successors: Dict[tuple, Optional[Interval]] = {}
    for pid, intervals in trace.all_intervals().items():
        for i, interval in enumerate(intervals):
            successors[(pid, interval.seq)] = (
                intervals[i + 1] if i + 1 < len(intervals) else None
            )
    core = _Eq9SinkCore(sink, list(range(trace.n)), successors)
    solutions = []
    for interval in trace.intervals_in_completion_order():
        solutions.extend(core.offer(interval.owner, interval))
    return core, solutions


def pruning_rule_ablation(trace: ExecutionTrace, sink: int = 0) -> PruningResult:
    """Replay one trace under both pruning rules and compare."""
    eq10 = CentralizedSinkCore(sink, list(range(trace.n)))
    eq10_solutions = []
    for interval in trace.intervals_in_completion_order():
        eq10_solutions.extend(eq10.offer(interval.owner, interval))
    eq9_core, eq9_solutions = replay_with_eq9(trace, sink)

    def keys(solutions):
        return [
            tuple(sorted((iv.owner, iv.seq) for iv in s.heads.values()))
            for s in solutions
        ]

    return PruningResult(
        detections_eq10=len(eq10_solutions),
        detections_eq9=len(eq9_solutions),
        pruned_after_solution_eq10=eq10.stats.pruned_after_solution,
        pruned_after_solution_eq9=eq9_core.stats.pruned_after_solution,
        same_solutions=keys(eq10_solutions) == keys(eq9_solutions),
    )


# ----------------------------------------------------------------------
# 4. spanning-tree construction: plain BFS vs degree-bounded BFS
# ----------------------------------------------------------------------
@dataclass
class TreeConstructionResult:
    name: str
    degree: int
    height: int
    messages: int
    max_comparisons_per_node: int
    detections: int


def tree_construction_ablation(
    *,
    n: int = 40,
    max_degree: int = 3,
    p: int = 8,
    seed: int = 9,
) -> List[TreeConstructionResult]:
    """On a WSN-style geometric graph, compare the monitoring costs of a
    plain BFS spanning tree (hub-prone) against the degree-bounded
    construction — the d-vs-h tradeoff of Section IV, made actionable.
    """
    from ..topology.graphs import random_geometric_topology

    graph = random_geometric_topology(n, seed=seed)
    out: List[TreeConstructionResult] = []
    for name, tree in (
        ("bfs", SpanningTree.bfs(graph, root=0)),
        ("bfs_bounded", SpanningTree.bfs_bounded(graph, root=0, max_degree=max_degree)),
    ):
        result = run_hierarchical(
            tree,
            graph=graph,
            seed=seed,
            config=EpochConfig(epochs=p, sync_prob=1.0),
        )
        out.append(
            TreeConstructionResult(
                name=name,
                degree=tree.degree,
                height=tree.height,
                messages=result.metrics.control_messages,
                max_comparisons_per_node=result.metrics.max_comparisons_per_node,
                detections=result.metrics.root_detections,
            )
        )
    return out
