"""Command-line entry point: ``repro-experiments <experiment>``.

Regenerates the paper's table and figures from the terminal:

    repro-experiments table1
    repro-experiments fig4 [--empirical]
    repro-experiments fig5 [--empirical]
    repro-experiments ablation
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..analysis.report import render_table
from .ablation import alpha_sweep, tree_construction_ablation, tree_shape_ablation
from .availability import availability_sweep, format_availability
from .design_space import design_space_comparison, format_design_space
from .figures import empirical_message_sweep, format_figure, message_complexity_figure
from .latency import format_latency, latency_sweep
from .levels import format_levels, level_breakdown
from .scaling import growth_slopes, scaling_sweep
from .starvation import format_starvation, starvation_comparison
from .table1 import format_table1, run_table1

__all__ = ["main"]


def _cmd_table1(args) -> None:
    rows = run_table1(p=args.p, seed=args.seed, workers=args.workers)
    print(format_table1(rows))


def _cmd_figure(d: int, args) -> None:
    print(format_figure(message_complexity_figure(d, p=args.p)))
    if args.empirical:
        heights = range(2, 6) if d == 2 else range(2, 5)
        print()
        print(format_figure(empirical_message_sweep(d, heights, p=args.p, seed=args.seed)))


def _cmd_ablation(args) -> None:
    shapes = tree_shape_ablation(p=args.p, seed=args.seed, workers=args.workers)
    print("Tree-shape ablation (hierarchical detector):")
    print(
        render_table(
            ["shape", "d", "h", "n", "msgs", "max cmp/node", "total cmp", "max queue/node", "detections"],
            [
                [s.name, s.d, s.h, s.n, s.messages, s.max_comparisons_per_node,
                 s.total_comparisons, s.max_queue_per_node, s.detections]
                for s in shapes
            ],
        )
    )
    print()
    print("Tree construction on a 40-node WSN graph (BFS vs degree-bounded):")
    print(
        render_table(
            ["construction", "degree", "height", "msgs", "max cmp/node", "detections"],
            [
                [t.name, t.degree, t.height, t.messages,
                 t.max_comparisons_per_node, t.detections]
                for t in tree_construction_ablation(seed=args.seed)
            ],
        )
    )
    print()
    print("Alpha steering (sync knob vs realized alpha):")
    rows = alpha_sweep(seed=args.seed)
    print(
        render_table(
            ["sync_prob", "realized alpha", "messages", "root detections"],
            [
                [r["sync_prob"], f"{r['realized_alpha']:.3f}",
                 int(r["messages"]), int(r["root_detections"])]
                for r in rows
            ],
        )
    )


def _cmd_scaling(args) -> None:
    points = scaling_sweep(
        d=2, heights=(3, 4, 5), p=args.p, seed=args.seed, workers=args.workers
    )
    print("Empirical Table-I scaling (same workload, both algorithms):")
    print(
        render_table(
            ["h", "n", "cmp max/node hier", "cmp max/node cent",
             "space max/node hier", "space max/node cent", "detections"],
            [
                [pt.h, pt.n, pt.hier_cmp_max_node, pt.cent_cmp_max_node,
                 pt.hier_space_max_node, pt.cent_space_max_node, pt.detections]
                for pt in points
            ],
        )
    )
    print()
    fmt = lambda xs: ", ".join(f"{x:.2f}" for x in xs)
    print("local log-log growth exponents vs n:")
    print(f"  centralized sink comparisons : {fmt(growth_slopes(points, 'cent_cmp_max_node'))}")
    print(f"  busiest hierarchical node    : {fmt(growth_slopes(points, 'hier_cmp_max_node'))}")
    print(f"  centralized sink space       : {fmt(growth_slopes(points, 'cent_space_max_node'))}")
    print(f"  busiest hierarchical space   : {fmt(growth_slopes(points, 'hier_space_max_node'))}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's table and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "fig4", "fig5", "ablation", "scaling",
            "design-space", "availability", "latency", "levels", "starvation",
            "validate", "all",
        ],
    )
    parser.add_argument("--p", type=int, default=20, help="intervals per process")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--empirical",
        action="store_true",
        help="also run simulator sweeps (slower) for the figures",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sharded sweeps (table1, scaling, "
        "ablation, all); results are identical for any value",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=0,
        help="for 'validate': also replay through offer_batch() in "
        "chunks of this size and cross-check against scalar offers",
    )
    parser.add_argument(
        "--out", default=None, help="for 'all': also write the report to this file"
    )
    args = parser.parse_args(argv)
    if args.experiment == "table1":
        _cmd_table1(args)
    elif args.experiment == "fig4":
        _cmd_figure(2, args)
    elif args.experiment == "fig5":
        _cmd_figure(4, args)
    elif args.experiment == "scaling":
        _cmd_scaling(args)
    elif args.experiment == "design-space":
        print("One representative per algorithm family, identical workload:")
        print(format_design_space(design_space_comparison(p=args.p, seed=args.seed)))
    elif args.experiment == "availability":
        print("Monitoring availability under crashes (fully synced workload):")
        print(format_availability(availability_sweep(seed=args.seed)))
    elif args.experiment == "latency":
        print("Detection latency (announcement minus occurrence completion):")
        print(format_latency(latency_sweep(seed=args.seed)))
    elif args.experiment == "levels":
        print("Per-level report counts (the anatomy of Eq. 11):")
        print(format_levels(level_breakdown(p=min(args.p, 12), seed=args.seed)))
    elif args.experiment == "starvation":
        print("Queue behaviour with one permanently cold process:")
        print(format_starvation(starvation_comparison(p=args.p, seed=args.seed)))
    elif args.experiment == "validate":
        from .validation import run_validation

        report = run_validation(trials=50, seed=args.seed, batch=args.batch)
        print(report.render())
        return 0 if report.ok else 1
    elif args.experiment == "all":
        from .suite import generate_report

        report = generate_report(p=min(args.p, 12), seed=args.seed,
                                 empirical=args.empirical, workers=args.workers)
        print(report)
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(report)
    else:
        _cmd_ablation(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
