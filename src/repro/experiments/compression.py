"""Ablation: timestamp compression on real report streams.

Section IV charges every message O(n) entries for its two vector
timestamps.  This ablation replays the actual report stream of a
simulated hierarchical run through the encoders of
:mod:`repro.clocks.encoding` and measures what an adaptive sender
(raw / sparse / differential per timestamp, reference = the previous
report on the same child→parent channel) would actually transmit.

Localized workloads compress dramatically — successive aggregates from
the same subtree differ mostly in that subtree's components — which is
exactly the regime the paper's WSN motivation lives in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..clocks import best_encoding
from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig
from .harness import run_hierarchical

__all__ = ["CompressionResult", "compression_ablation"]


@dataclass
class CompressionResult:
    d: int
    h: int
    n: int
    reports: int
    raw_entries: int
    adaptive_entries: int
    picks: dict  # encoding name -> count

    @property
    def savings(self) -> float:
        if self.raw_entries == 0:
            return 0.0
        return 1.0 - self.adaptive_entries / self.raw_entries


def _run_local_workload(d: int, h: int, duration: float, seed: int):
    """A hierarchical run over *localized* traffic: random predicate
    toggles with chatter confined to tree neighbours.  Causality — and
    therefore timestamp growth — stays local, the regime where
    differential encoding pays."""
    from ..detect.roles import HierarchicalRole
    from ..sim.kernel import Simulator
    from ..sim.network import Network, uniform_delay
    from ..sim.process import MonitoredProcess
    from ..sim.trace import ExecutionTrace
    from ..workload.generator import RandomWorkload
    from .harness import RunResult
    from ..analysis.metrics import collect_hierarchical

    tree = SpanningTree.regular(d, h)
    sim = Simulator(seed=seed)
    network = Network(sim, tree.as_graph(), uniform_delay())
    trace = ExecutionTrace(tree.n)
    roles = {
        pid: HierarchicalRole(tree.parent_of(pid), tree.children(pid))
        for pid in tree.nodes
    }
    processes = {
        pid: MonitoredProcess(pid, sim, network, trace, roles[pid])
        for pid in tree.nodes
    }
    RandomWorkload(sim, processes, duration=duration, msg_rate=0.6).install()
    for process in processes.values():
        process.start()
    sim.run(until=duration + 60.0)
    return RunResult(
        metrics=collect_hierarchical(network, tree, roles),
        detections=[],
        trace=trace,
        tree=tree,
        sim=sim,
        network=network,
        roles=roles,
    )


def compression_ablation(
    *,
    d: int = 2,
    h: int = 4,
    p: int = 12,
    sync_prob: float = 0.7,
    seed: int = 19,
    workload: str = "epoch",
) -> CompressionResult:
    if workload == "epoch":
        result = run_hierarchical(
            SpanningTree.regular(d, h),
            seed=seed,
            config=EpochConfig(epochs=p, sync_prob=sync_prob),
        )
    elif workload == "local":
        result = _run_local_workload(d, h, duration=12.0 * p, seed=seed)
    else:
        raise ValueError(f"unknown workload {workload!r}")
    n = result.tree.n
    raw = adaptive = reports = 0
    picks: dict = {"raw": 0, "sparse": 0, "differential": 0}
    for pid, role in result.roles.items():
        if role.parent_id is None:
            continue  # the root announces locally; nothing on the wire
        prev_lo = prev_hi = None
        for emission in role.core.emissions:
            aggregate = emission.aggregate
            reports += 1
            for bound, prev in ((aggregate.lo, prev_lo), (aggregate.hi, prev_hi)):
                raw += n
                name, entries = best_encoding(bound, prev)
                adaptive += entries
                picks[name] += 1
            prev_lo, prev_hi = aggregate.lo, aggregate.hi
    return CompressionResult(
        d=d, h=h, n=n, reports=reports,
        raw_entries=raw, adaptive_entries=adaptive, picks=picks,
    )
