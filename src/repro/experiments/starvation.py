"""Experiment: queue behaviour under starvation.

What happens when one process's local predicate *never* joins a global
occurrence (a permanently cold sensor)?  Detection legitimately never
fires — but the two algorithms store the backlog very differently, and
the difference is structural, not accidental:

* **Centralized sink:** the starved process still reports its (early-
  ended) raw intervals directly to the sink.  Every fresh head triggers
  the pairwise pruning cascade, and cross-epoch incompatibility purges
  stale heads from *all* queues — the sink's queues churn at O(1).
* **Hierarchical:** the starved process's *parent* prunes the same way
  (its queues stay tiny), but it never finds a subtree solution, so it
  never reports upward.  Its ancestors' other queues then grow — up to
  the paper's per-queue bound ``p`` — because head-pruning evidence only
  arrives with fresh heads, and the blocked child queue never produces
  one.

Both stay within the paper's space bounds (per-queue O(p), global
O(pn²)), and the hierarchical backlog remains *distributed* along the
starved path rather than centralized.  The experiment measures and the
tests pin exactly this shape; it also documents the practical
implication (long-blocked subtrees hold p intervals per ancestor queue
— a deployment wanting bounded memory under indefinite starvation needs
an aging policy, which the paper does not discuss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.report import render_table
from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig
from .harness import run_centralized, run_hierarchical

__all__ = ["StarvationResult", "starvation_comparison", "format_starvation"]


@dataclass
class StarvationResult:
    algorithm: str
    detections: int
    max_queue_any_node: int
    starved_parent_queue: int  # hierarchical: the defector's parent's total
    blocked_ancestor_queue: int  # hierarchical: a blocked ancestor's total
    control_messages: int


def starvation_comparison(
    *, d: int = 2, h: int = 4, p: int = 20, seed: int = 2
) -> List[StarvationResult]:
    tree = SpanningTree.regular(d, h)
    defector = tree.leaves()[-1]
    parent = tree.parent_of(defector)
    grandparent = tree.parent_of(parent)
    config = EpochConfig(epochs=p, sync_prob=1.0, permanent_defectors=(defector,))

    hier = run_hierarchical(tree, seed=seed, config=config)
    cent = run_centralized(SpanningTree.regular(d, h), seed=seed, config=config)

    def total_queued(role) -> int:
        return sum(role.core.queue_sizes().values())

    results = [
        StarvationResult(
            algorithm="hierarchical",
            detections=hier.metrics.root_detections,
            max_queue_any_node=hier.metrics.max_queue_per_node,
            starved_parent_queue=total_queued(hier.roles[parent]),
            blocked_ancestor_queue=(
                total_queued(hier.roles[grandparent]) if grandparent is not None else 0
            ),
            control_messages=hier.metrics.control_messages,
        ),
        StarvationResult(
            algorithm="centralized [12]",
            detections=len(cent.detections),
            max_queue_any_node=cent.metrics.max_queue_per_node,
            starved_parent_queue=0,
            blocked_ancestor_queue=0,
            control_messages=cent.metrics.control_messages,
        ),
    ]
    return results


def format_starvation(results: List[StarvationResult]) -> str:
    return render_table(
        ["algorithm", "detections", "max queue (any node)",
         "starved parent's queues", "blocked ancestor's queues", "ctrl msgs"],
        [
            [r.algorithm, r.detections, r.max_queue_any_node,
             r.starved_parent_queue, r.blocked_ancestor_queue,
             r.control_messages]
            for r in results
        ],
    )
