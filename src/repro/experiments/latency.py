"""Experiment: detection latency — how stale is an announcement?

The paper analyses messages, space and time, but a monitoring operator
also cares about *latency*: the wall-clock gap between the moment an
occurrence physically completed (its last interval's closing event) and
the moment the detector announced it.

Structurally the two algorithms differ: the centralized sink hears raw
intervals after ``depth`` hops and decides immediately; the hierarchy
pays one hop per level but each level's decision is local.  Both are
O(height) pipelines, so the shapes should be comparable — with the
hierarchy's announcements coming from a root that did almost no work.

:func:`latency_sweep` measures mean / p95 latency for both algorithms
across tree heights on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..analysis.report import render_table
from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig
from .harness import RunResult, run_centralized, run_hierarchical

__all__ = ["LatencyPoint", "detection_latencies", "latency_sweep", "format_latency"]


def detection_latencies(result: RunResult) -> List[float]:
    """Per-detection latency: announcement time minus the wall time of
    the last closing event among the solution's concrete intervals."""
    out: List[float] = []
    for record in result.detections:
        completion = max(
            result.trace.interval_close_time(interval)
            for interval in record.solution.concrete_intervals()
        )
        out.append(record.time - completion)
    return out


@dataclass
class LatencyPoint:
    d: int
    h: int
    n: int
    hier_mean: float
    hier_p95: float
    cent_mean: float
    cent_p95: float
    detections: int


def latency_sweep(
    *,
    d: int = 2,
    heights: Sequence[int] = (3, 4, 5),
    p: int = 10,
    sync_prob: float = 1.0,
    seed: int = 29,
) -> List[LatencyPoint]:
    points: List[LatencyPoint] = []
    for h in heights:
        config = EpochConfig(epochs=p, sync_prob=sync_prob)
        hier = run_hierarchical(SpanningTree.regular(d, h), seed=seed, config=config)
        cent = run_centralized(SpanningTree.regular(d, h), seed=seed, config=config)
        hier_lat = detection_latencies(hier)
        cent_lat = detection_latencies(cent)
        points.append(
            LatencyPoint(
                d=d,
                h=h,
                n=hier.tree.n,
                hier_mean=float(np.mean(hier_lat)) if hier_lat else float("nan"),
                hier_p95=float(np.percentile(hier_lat, 95)) if hier_lat else float("nan"),
                cent_mean=float(np.mean(cent_lat)) if cent_lat else float("nan"),
                cent_p95=float(np.percentile(cent_lat, 95)) if cent_lat else float("nan"),
                detections=len(hier_lat),
            )
        )
    return points


def format_latency(points: List[LatencyPoint]) -> str:
    return render_table(
        ["d", "h", "n", "detections",
         "hier mean", "hier p95", "cent mean", "cent p95"],
        [
            [pt.d, pt.h, pt.n, pt.detections,
             f"{pt.hier_mean:.2f}", f"{pt.hier_p95:.2f}",
             f"{pt.cent_mean:.2f}", f"{pt.cent_p95:.2f}"]
            for pt in points
        ],
    )
