"""Experiment harness: one runner per paper table/figure, plus ablations."""

from .ablation import (
    PruningResult,
    ShapeResult,
    TreeConstructionResult,
    alpha_sweep,
    pruning_rule_ablation,
    replay_with_eq9,
    tree_construction_ablation,
    tree_shape_ablation,
)
from .availability import (
    AvailabilityPoint,
    availability_sweep,
    format_availability,
)
from .compression import CompressionResult, compression_ablation
from .deploy import run_zero_assumptions
from .design_space import (
    AlgorithmProfile,
    design_space_comparison,
    format_design_space,
)
from .figures import (
    FigureData,
    empirical_message_sweep,
    format_figure,
    message_complexity_figure,
)
from .harness import (
    RunResult,
    run_centralized,
    run_hierarchical,
    run_possibly,
    run_token,
)
from .levels import LevelRow, format_levels, level_breakdown
from .parallel import (
    RunSpec,
    ShardReport,
    ShardResult,
    ShardedRunner,
    spawn_seed_sequences,
    spawn_seeds,
)
from .latency import (
    LatencyPoint,
    detection_latencies,
    format_latency,
    latency_sweep,
)
from .scaling import ScalingPoint, growth_slopes, scaling_sweep
from .starvation import StarvationResult, format_starvation, starvation_comparison
from .suite import generate_report
from .table1 import Table1Row, format_table1, run_table1, table1_specs
from .validation import ValidationReport, run_validation

__all__ = [
    "AlgorithmProfile",
    "AvailabilityPoint",
    "CompressionResult",
    "FigureData",
    "LatencyPoint",
    "LevelRow",
    "PruningResult",
    "RunResult",
    "RunSpec",
    "ShapeResult",
    "ShardReport",
    "ShardResult",
    "ShardedRunner",
    "StarvationResult",
    "Table1Row",
    "ValidationReport",
    "TreeConstructionResult",
    "alpha_sweep",
    "availability_sweep",
    "compression_ablation",
    "design_space_comparison",
    "detection_latencies",
    "empirical_message_sweep",
    "format_availability",
    "format_latency",
    "format_starvation",
    "format_levels",
    "generate_report",
    "format_design_space",
    "format_figure",
    "format_table1",
    "message_complexity_figure",
    "pruning_rule_ablation",
    "replay_with_eq9",
    "run_centralized",
    "run_hierarchical",
    "run_possibly",
    "run_zero_assumptions",
    "run_token",
    "run_table1",
    "run_validation",
    "ScalingPoint",
    "growth_slopes",
    "latency_sweep",
    "level_breakdown",
    "scaling_sweep",
    "spawn_seed_sequences",
    "spawn_seeds",
    "starvation_comparison",
    "table1_specs",
    "tree_construction_ablation",
    "tree_shape_ablation",
]
