"""Experiment: empirical validation of the Table I space/time bounds.

Table I claims the hierarchical algorithm does `O(d²pn²)` comparison
work spread over all nodes against the centralized `O(pn³)` at the
sink, and that both store `O(pn²)` (vector entries) with opposite
placement.  Those are worst-case bounds — the workload decides the
constants — but the *relative* scaling is measurable: sweeping `n` at
fixed degree and intervals-per-process, the per-node work and space of
the centralized sink must grow strictly faster than the busiest
hierarchical node's.

:func:`scaling_sweep` runs both algorithms over the same workloads for
a range of heights and reports, per size: total and max-per-node
comparisons, max-per-node peak queue space (in vector entries), and the
log-log growth slopes between consecutive sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig
from .harness import run_centralized, run_hierarchical

__all__ = ["ScalingPoint", "scaling_sweep", "growth_slopes"]


@dataclass
class ScalingPoint:
    d: int
    h: int
    n: int
    hier_cmp_total: int
    hier_cmp_max_node: int
    cent_cmp_max_node: int
    hier_space_max_node: int  # peak queued intervals × 2n vector entries
    cent_space_max_node: int
    detections: int


def scaling_sweep(
    *,
    d: int = 2,
    heights: Sequence[int] = (3, 4, 5),
    p: int = 10,
    sync_prob: float = 0.7,
    seed: int = 13,
    workers: int = 1,
) -> List[ScalingPoint]:
    """``workers`` shards the ``2 × len(heights)`` independent runs over
    the parallel engine; points are identical for any worker count."""
    from .parallel import RunSpec, ShardedRunner

    specs = []
    for h in heights:
        config = EpochConfig(epochs=p, sync_prob=sync_prob)
        for name, fn in (("hier", run_hierarchical), ("cent", run_centralized)):
            specs.append(
                RunSpec(
                    fn=fn,
                    args=(SpanningTree.regular(d, h),),
                    kwargs={"config": config},
                    seed=seed,
                    label=f"scaling-{name}-d{d}h{h}",
                )
            )
    report = ShardedRunner(workers=workers).run(specs)
    points: List[ScalingPoint] = []
    for h, hier, cent in zip(heights, report.shards[0::2], report.shards[1::2]):
        n = SpanningTree.regular(d, h).n
        points.append(
            ScalingPoint(
                d=d,
                h=h,
                n=n,
                hier_cmp_total=hier.metrics.total_comparisons,
                hier_cmp_max_node=hier.metrics.max_comparisons_per_node,
                cent_cmp_max_node=cent.metrics.max_comparisons_per_node,
                hier_space_max_node=hier.metrics.max_queue_per_node * 2 * n,
                cent_space_max_node=cent.metrics.max_queue_per_node * 2 * n,
                detections=hier.metrics.root_detections,
            )
        )
    return points


def growth_slopes(points: List[ScalingPoint], attr: str) -> List[float]:
    """Log-log slope of *attr* vs ``n`` between consecutive sweep points
    (an empirical local growth exponent)."""
    slopes = []
    for a, b in zip(points, points[1:]):
        ya, yb = getattr(a, attr), getattr(b, attr)
        if ya <= 0 or yb <= 0:
            slopes.append(float("nan"))
        else:
            slopes.append(math.log(yb / ya) / math.log(b.n / a.n))
    return slopes
