"""Experiment: Table I — complexity comparison, analytic and empirical.

The paper's Table I states the space/time/message complexities of the
hierarchical algorithm versus the centralized repeated-detection
baseline [12].  This experiment reproduces it twice:

* **symbolic** — the Table I rows verbatim (with the corrected message
  closed form; see the erratum in :mod:`repro.analysis.complexity`);
* **empirical** — for each ``(d, h)`` configuration, one identical
  epoch workload run under both algorithms, measuring

  - control messages (hop-counted),
  - timestamp comparisons: total vs. the maximum at any single node
    (the "distributed across all processes" vs "at the sink" contrast),
  - peak queue space: total vs. the maximum at any single node.

Shape expectations: both algorithms detect the same occurrences; the
centralized run concentrates ~100% of comparisons and queue space at
the sink while the hierarchical run spreads them; centralized sends a
growing multiple of the hierarchical message count as ``h`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.complexity import (
    centralized_messages,
    hierarchical_messages,
    table1_rows,
    tree_nodes,
)
from ..analysis.report import render_table
from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig
from .harness import run_centralized, run_hierarchical

__all__ = ["Table1Row", "run_table1", "format_table1", "table1_specs"]


@dataclass
class Table1Row:
    d: int
    h: int
    n: int
    hier_messages: int
    cent_messages: int
    hier_detections: int
    cent_detections: int
    hier_comparisons_total: int
    hier_comparisons_max_node: int
    cent_comparisons_total: int
    cent_comparisons_max_node: int
    hier_queue_total: int
    hier_queue_max_node: int
    cent_queue_max_node: int
    analytic_hier_messages: float
    analytic_cent_messages: float
    realized_alpha: float


def table1_specs(
    configs: Sequence[Tuple[int, int]],
    *,
    p: int = 10,
    sync_prob: float = 0.7,
    seed: int = 7,
) -> list:
    """The sweep as :class:`~repro.experiments.parallel.RunSpec` pairs
    (hierarchical then centralized per config, in config order) — the
    unit the sharded runner fans out."""
    from .parallel import RunSpec

    specs = []
    for d, h in configs:
        config = EpochConfig(epochs=p, sync_prob=sync_prob)
        for name, fn in (("hier", run_hierarchical), ("cent", run_centralized)):
            specs.append(
                RunSpec(
                    fn=fn,
                    args=(SpanningTree.regular(d, h),),
                    kwargs={"config": config},
                    seed=seed,
                    label=f"table1-{name}-d{d}h{h}",
                )
            )
    return specs


def run_table1(
    configs: Sequence[Tuple[int, int]] = ((2, 3), (2, 4), (3, 3), (4, 3)),
    *,
    p: int = 10,
    sync_prob: float = 0.7,
    seed: int = 7,
    workers: int = 1,
) -> List[Table1Row]:
    """Run both algorithms on each ``(d, h)`` tree and measure.

    ``workers`` shards the ``2 × len(configs)`` independent runs over a
    process pool (see :mod:`repro.experiments.parallel`); the rows are
    identical for any worker count.
    """
    from .parallel import ShardedRunner

    specs = table1_specs(configs, p=p, sync_prob=sync_prob, seed=seed)
    report = ShardedRunner(workers=workers).run(specs)
    rows: List[Table1Row] = []
    for (d, h), hier, cent in zip(
        configs, report.shards[0::2], report.shards[1::2]
    ):
        tree = SpanningTree.regular(d, h)
        upper_alphas = [
            alpha
            for level, alpha in hier.metrics.realized_alpha_by_level.items()
            if level >= 2
        ]
        realized_alpha = (
            sum(upper_alphas) / len(upper_alphas) if upper_alphas else 0.0
        )
        rows.append(
            Table1Row(
                d=d,
                h=h,
                n=tree.n,
                hier_messages=hier.metrics.control_messages,
                cent_messages=cent.metrics.control_messages,
                hier_detections=hier.metrics.root_detections,
                cent_detections=cent.metrics.root_detections,
                hier_comparisons_total=hier.metrics.total_comparisons,
                hier_comparisons_max_node=hier.metrics.max_comparisons_per_node,
                cent_comparisons_total=cent.metrics.total_comparisons,
                cent_comparisons_max_node=cent.metrics.max_comparisons_per_node,
                hier_queue_total=hier.metrics.total_peak_queue,
                hier_queue_max_node=hier.metrics.max_queue_per_node,
                cent_queue_max_node=cent.metrics.max_queue_per_node,
                analytic_hier_messages=hierarchical_messages(
                    p, d, h, realized_alpha
                ),
                analytic_cent_messages=centralized_messages(p, d, h),
                realized_alpha=realized_alpha,
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    parts = ["Table I (symbolic, as in the paper):"]
    parts.append(
        render_table(
            ["metric", "hierarchical", "centralized [12]"],
            [[r["metric"], r["hierarchical"], r["centralized"]] for r in table1_rows()],
        )
    )
    parts.append("")
    parts.append(f"Empirical (epoch workload, p intervals/process):")
    headers = [
        "d", "h", "n",
        "msgs hier", "msgs cent", "msgs ratio",
        "analytic hier", "analytic cent",
        "det hier", "det cent",
        "cmp max-node hier", "cmp max-node cent",
        "queue max-node hier", "queue max-node cent",
        "alpha",
    ]
    body = []
    for r in rows:
        ratio = r.cent_messages / r.hier_messages if r.hier_messages else float("inf")
        body.append(
            [
                r.d, r.h, r.n,
                r.hier_messages, r.cent_messages, f"{ratio:.2f}",
                f"{r.analytic_hier_messages:.0f}", f"{r.analytic_cent_messages:.0f}",
                r.hier_detections, r.cent_detections,
                r.hier_comparisons_max_node, r.cent_comparisons_max_node,
                r.hier_queue_max_node, r.cent_queue_max_node,
                f"{r.realized_alpha:.2f}",
            ]
        )
    parts.append(render_table(headers, body))
    return "\n".join(parts)
