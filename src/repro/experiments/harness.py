"""End-to-end experiment runner.

Builds a full simulation — topology, spanning tree, workload, detector
roles, optional failures — runs it, and returns structured results the
experiment scripts, tests and benches consume.

Both detector configurations run over the *same* workload machinery, so
measured differences are attributable to the algorithms alone:

* :func:`run_hierarchical` — every node runs Algorithm 1
  (:class:`~repro.detect.HierarchicalRole`); reports travel one hop.
* :func:`run_centralized` — the baseline [12]: every non-sink node
  reports raw intervals hop-by-hop to the sink (the tree root), which
  runs the repeated-detection machinery alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..analysis.metrics import RunMetrics, collect_centralized, collect_hierarchical
from ..detect.roles import (
    CentralizedReporterRole,
    CentralizedSinkRole,
    DetectionRecord,
    HierarchicalRole,
)
from ..fault.coordinator import RepairCoordinator
from ..fault.injector import FailureInjector
from ..sim.kernel import Simulator
from ..sim.network import Network, uniform_delay
from ..sim.trace import ExecutionTrace
from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig, EpochProcess, EpochWorkload

__all__ = [
    "RunResult",
    "run_hierarchical",
    "run_centralized",
    "run_possibly",
    "run_token",
]

#: Default one-hop delay bounds (non-FIFO: each message samples its own).
DELAY_LOW, DELAY_HIGH = 0.5, 1.5


@dataclass
class RunResult:
    """Everything a finished run exposes."""

    metrics: RunMetrics
    detections: List[DetectionRecord]
    trace: ExecutionTrace
    tree: SpanningTree
    sim: Simulator
    network: Network
    roles: Dict[int, object] = field(default_factory=dict)
    workload: Optional[EpochWorkload] = None
    crashed: List[tuple] = field(default_factory=list)


def _build_common(
    tree: SpanningTree, graph: Optional[nx.Graph], seed: int
) -> Tuple[Simulator, Network, ExecutionTrace, nx.Graph]:
    graph = graph if graph is not None else tree.as_graph()
    for node, parent in tree.parent.items():
        if parent is not None and not graph.has_edge(node, parent):
            raise ValueError("communication graph must contain the tree's edges")
    sim = Simulator(seed=seed)
    network = Network(sim, graph, uniform_delay(DELAY_LOW, DELAY_HIGH))
    trace = ExecutionTrace(tree.n)
    return sim, network, trace, graph


def run_hierarchical(
    tree: SpanningTree,
    *,
    graph: Optional[nx.Graph] = None,
    seed: int = 0,
    config: Optional[EpochConfig] = None,
    failures: Sequence[Tuple[float, int]] = (),
    revivals: Sequence[Tuple[float, int]] = (),
    heartbeat: Optional[tuple] = None,
    extra_time: float = 0.0,
) -> RunResult:
    """Run the hierarchical detector over the epoch workload.

    ``failures`` is a list of ``(time, pid)`` crashes; providing any
    enables heartbeats (default period 5, timeout 16) and the repair
    coordinator unless ``heartbeat`` overrides the timing.
    ``revivals`` schedules ``(time, pid)`` recoveries of previously
    crashed nodes (see :mod:`repro.fault.rejoin`).
    """
    config = config or EpochConfig()
    sim, network, trace, graph = _build_common(tree, graph, seed)
    if (failures or revivals) and heartbeat is None:
        heartbeat = (5.0, 16.0)

    roles: Dict[int, HierarchicalRole] = {}
    coordinator = None
    if heartbeat is not None:
        coordinator = RepairCoordinator(
            sim, tree, graph, roles, is_alive=network.is_alive
        )
    for pid in tree.nodes:
        roles[pid] = HierarchicalRole(
            parent=tree.parent_of(pid),
            children=tree.children(pid),
            heartbeat=heartbeat,
            coordinator=coordinator,
            level=tree.level(pid),
        )
    processes = {
        pid: EpochProcess(pid, sim, network, trace, roles[pid], tree)
        for pid in tree.nodes
    }
    workload = EpochWorkload(sim, processes, tree, config, max_delay=DELAY_HIGH)
    workload.install()
    injector = FailureInjector(sim, processes)
    for time, pid in failures:
        injector.crash_at(time, pid)
    if revivals:
        from ..fault.rejoin import RejoinManager

        rejoin_manager = RejoinManager(coordinator, processes)
        for time, pid in revivals:
            rejoin_manager.schedule_rejoin(time, pid)
    for process in processes.values():
        process.start()

    sim.run(until=workload.end_time + extra_time)

    metrics = collect_hierarchical(network, tree, roles)
    detections: List[DetectionRecord] = []
    for role in roles.values():
        detections.extend(role.detections)
    detections.sort(key=lambda d: d.time)
    return RunResult(
        metrics=metrics,
        detections=detections,
        trace=trace,
        tree=tree,
        sim=sim,
        network=network,
        roles=roles,
        workload=workload,
        crashed=list(injector.crashed),
    )


def run_centralized(
    tree: SpanningTree,
    *,
    graph: Optional[nx.Graph] = None,
    seed: int = 0,
    config: Optional[EpochConfig] = None,
    one_shot: bool = False,
    extra_time: float = 0.0,
) -> RunResult:
    """Run the centralized baseline [12] (or the one-shot variant [7])
    over the identical epoch workload, sink at the tree root."""
    config = config or EpochConfig()
    sim, network, trace, graph = _build_common(tree, graph, seed)
    sink = tree.root
    sink_role = CentralizedSinkRole(tree.nodes, one_shot=one_shot)
    roles: Dict[int, object] = {sink: sink_role}
    for pid in tree.nodes:
        if pid == sink:
            continue
        route = tree.path_to_root(pid)
        roles[pid] = CentralizedReporterRole(route)
    processes = {
        pid: EpochProcess(pid, sim, network, trace, roles[pid], tree)
        for pid in tree.nodes
    }
    workload = EpochWorkload(sim, processes, tree, config, max_delay=DELAY_HIGH)
    workload.install()
    for process in processes.values():
        process.start()

    sim.run(until=workload.end_time + extra_time)

    reporter_pids = [pid for pid in tree.nodes if pid != sink]
    metrics = collect_centralized(network, tree, sink_role, reporter_pids)
    return RunResult(
        metrics=metrics,
        detections=list(sink_role.detections),
        trace=trace,
        tree=tree,
        sim=sim,
        network=network,
        roles=roles,
        workload=workload,
    )


def run_token(
    tree: SpanningTree,
    *,
    graph=None,
    seed: int = 0,
    config: Optional[EpochConfig] = None,
    initiator: Optional[int] = None,
    extra_time: float = 0.0,
) -> "RunResult":
    """Run the token-based distributed one-shot baseline (≈[11]) over
    the epoch workload.  Queues stay at their owners; the only control
    traffic is the token, routed along the tree between holders."""
    from ..detect.roles_token import TokenRole

    config = config or EpochConfig()
    sim, network, trace, graph = _build_common(tree, graph, seed)
    initiator = tree.root if initiator is None else initiator
    roles: Dict[int, TokenRole] = {
        pid: TokenRole(tree, has_token=(pid == initiator)) for pid in tree.nodes
    }
    processes = {
        pid: EpochProcess(pid, sim, network, trace, roles[pid], tree)
        for pid in tree.nodes
    }
    workload = EpochWorkload(sim, processes, tree, config, max_delay=DELAY_HIGH)
    workload.install()
    for process in processes.values():
        process.start()

    sim.run(until=workload.end_time + extra_time)

    detections = []
    from ..detect.roles import DetectionRecord

    for pid, role in roles.items():
        if role.detection is not None:
            detections.append(
                DetectionRecord(
                    time=role.detection_time,
                    detector=pid,
                    solution=role.detection,
                    aggregate=None,
                )
            )
    from ..analysis.metrics import RunMetrics, NodeMetrics

    metrics = RunMetrics(
        control_messages=sum(
            count
            for (plane, mtype), count in network.sent.items()
            if plane == "control" and mtype == "TokenMessage"
        ),
        app_messages=network.messages_sent("app"),
    )
    for pid, role in roles.items():
        metrics.per_node.append(
            NodeMetrics(
                pid=pid,
                level=tree.level(pid),
                comparisons=role.stats.comparisons,
                detections=role.stats.detections,
                peak_queue_intervals=role.queue.peak_size,
                messages_sent=network.per_node_sent.get(pid, 0),
            )
        )
    metrics.root_detections = len(detections)
    return RunResult(
        metrics=metrics,
        detections=detections,
        trace=trace,
        tree=tree,
        sim=sim,
        network=network,
        roles=roles,
        workload=workload,
    )


def run_possibly(
    tree: SpanningTree,
    *,
    graph=None,
    seed: int = 0,
    config: Optional[EpochConfig] = None,
    extra_time: float = 0.0,
) -> RunResult:
    """Run the one-shot ``Possibly(Φ)`` baseline [8]: reporters route
    raw intervals to the sink, which searches for the weak-modality
    condition (Eq. 1) and halts at the first satisfaction."""
    from ..detect.roles import PossiblySinkRole

    config = config or EpochConfig()
    sim, network, trace, graph = _build_common(tree, graph, seed)
    sink = tree.root
    sink_role = PossiblySinkRole(tree.nodes)
    roles: Dict[int, object] = {sink: sink_role}
    for pid in tree.nodes:
        if pid != sink:
            roles[pid] = CentralizedReporterRole(tree.path_to_root(pid))
    processes = {
        pid: EpochProcess(pid, sim, network, trace, roles[pid], tree)
        for pid in tree.nodes
    }
    workload = EpochWorkload(sim, processes, tree, config, max_delay=DELAY_HIGH)
    workload.install()
    for process in processes.values():
        process.start()

    sim.run(until=workload.end_time + extra_time)

    metrics = RunMetrics(
        control_messages=sum(
            count
            for (plane, mtype), count in network.sent.items()
            if plane == "control" and mtype == "IntervalReport"
        ),
        app_messages=network.messages_sent("app"),
    )
    metrics.root_detections = len(sink_role.detections)
    return RunResult(
        metrics=metrics,
        detections=list(sink_role.detections),
        trace=trace,
        tree=tree,
        sim=sim,
        network=network,
        roles=roles,
        workload=workload,
    )
