"""Zero-assumption deployment runner.

Combines the in-band substrates into one call: build the spanning tree
with the distributed flooding protocol, then run hierarchical detection
with self-healing (message-driven repair) roles over the same network —
no pre-constructed tree, no repair oracle.  This is the configuration a
real deployment of the paper's system would run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import networkx as nx

from ..analysis.metrics import collect_hierarchical
from ..fault.discovery import SelfHealingRole
from ..fault.injector import FailureInjector
from ..sim.kernel import Simulator
from ..sim.network import Network, uniform_delay
from ..sim.trace import ExecutionTrace
from ..topology.protocol import TreeBuilder
from ..workload.generator import EpochConfig, EpochProcess, EpochWorkload
from .harness import DELAY_HIGH, DELAY_LOW, RunResult

__all__ = ["run_zero_assumptions"]


def run_zero_assumptions(
    graph: nx.Graph,
    *,
    root: int = 0,
    seed: int = 0,
    config: Optional[EpochConfig] = None,
    failures: Sequence[Tuple[float, int]] = (),
    heartbeat: tuple = (5.0, 16.0),
    extra_time: float = 0.0,
) -> RunResult:
    """Build the tree in-band, then monitor with self-healing roles.

    ``failures`` times are relative to the start of the *workload*
    phase (which begins a few time units after the build completes).
    """
    config = config or EpochConfig()
    sim = Simulator(seed=seed)
    network = Network(sim, graph, uniform_delay(DELAY_LOW, DELAY_HIGH))

    builder = TreeBuilder(sim, network, graph, root=root)
    builder.start()
    sim.run()
    tree = builder.tree
    if tree is None:  # pragma: no cover - connected graphs always build
        raise RuntimeError("tree construction did not complete")

    trace = ExecutionTrace(tree.n)
    collect_window = 4.0 * tree.height * DELAY_HIGH
    roles: Dict[int, SelfHealingRole] = {
        pid: SelfHealingRole(
            tree.parent_of(pid),
            tree.children(pid),
            heartbeat=heartbeat,
            collect_window=collect_window,
        )
        for pid in tree.nodes
    }
    processes = {
        pid: EpochProcess(pid, sim, network, trace, roles[pid], tree)
        for pid in tree.nodes
    }
    start = sim.now + 5.0
    workload = EpochWorkload(
        sim, processes, tree, config, max_delay=DELAY_HIGH, start_time=start
    )
    workload.install()
    injector = FailureInjector(sim, processes)
    for time, pid in failures:
        injector.crash_at(start + time, pid)
    for process in processes.values():
        process.start()
    sim.run(until=workload.end_time + extra_time)

    detections = sorted(
        (d for role in roles.values() for d in role.detections),
        key=lambda d: d.time,
    )
    return RunResult(
        metrics=collect_hierarchical(network, tree, roles),
        detections=detections,
        trace=trace,
        tree=tree,
        sim=sim,
        network=network,
        roles=roles,
        workload=workload,
        crashed=list(injector.crashed),
    )
