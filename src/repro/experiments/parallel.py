"""Shared-nothing parallel execution engine for the experiment layer.

Every sweep in :mod:`repro.experiments` — Table I, the scaling and
availability suites, the ablations, the benchmarks — reduces to the
same shape: a list of independent *run specs* (a harness callable plus
its parameters and a seed), each of which builds its own
:class:`~repro.sim.kernel.Simulator`, runs to completion, and yields a
:class:`~repro.experiments.harness.RunResult`.  Runs share **nothing**
(no simulator, no registry, no RNG stream), which is exactly the
boundary predicate-detection workloads parallelize along (Garg,
arXiv:2008.12516; Chauhan & Garg, arXiv:1304.4326): the
:class:`ShardedRunner` fans the specs out over a
``concurrent.futures.ProcessPoolExecutor`` and folds the shard results
back into one report.

Determinism contract
--------------------
* ``workers=1`` executes the specs in-process, in order, through the
  exact code path a plain Python loop over the harness functions would
  take — byte-identical to the pre-engine sequential behaviour.
* Any ``workers > 1`` produces the *same* merged report: each spec
  carries its own seed, results are collected in spec order (never in
  completion order), and every reduction
  (:meth:`~repro.analysis.metrics.RunMetrics.merge`,
  :meth:`~repro.obs.registry.MetricsRegistry.merge`) is applied in spec
  order.  Only the wall-clock telemetry
  (``repro_shard_duration_seconds``) may differ between worker counts.
* Per-shard seeds for replicated sweeps come from
  :func:`spawn_seed_sequences` — ``numpy.random.SeedSequence.spawn`` —
  so shard streams are keyed apart by the spawn-key tree instead of by
  hashed names and cannot collide (see
  :meth:`repro.sim.kernel.Simulator.rng`).

Cross-process returns are reduced to picklable :class:`ShardResult`
snapshots inside the worker (full ``RunResult`` objects hold live
simulators and closures and deliberately stay worker-local).
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.metrics import RunMetrics
from ..obs.registry import MetricsRegistry

__all__ = [
    "RunSpec",
    "ShardResult",
    "ShardReport",
    "ShardedRunner",
    "spawn_seed_sequences",
    "spawn_seeds",
    "SHARD_DURATION_BUCKETS",
]

#: Per-shard wall-clock buckets (seconds): experiment shards range from
#: milliseconds (quick CI sweeps) to minutes (full availability suites).
SHARD_DURATION_BUCKETS: Tuple[float, ...] = (
    0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, math.inf,
)


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
def spawn_seed_sequences(seed: int, count: int) -> List[np.random.SeedSequence]:
    """``count`` independent child seeds of *seed*, via
    ``SeedSequence.spawn`` — the collision-free way to seed shard-local
    simulators (pass one child straight to ``Simulator(seed=child)``)."""
    return list(np.random.SeedSequence(seed).spawn(count))


def spawn_seeds(seed: int, count: int) -> List[int]:
    """Like :func:`spawn_seed_sequences`, reduced to plain ints for
    call-sites that persist seeds into JSON artifacts.  Distinct children
    yield distinct 64-bit draws with overwhelming probability, but for
    in-process use prefer the sequences themselves — they keep the
    spawn-key guarantee end to end."""
    return [
        int(child.generate_state(1, np.uint64)[0])
        for child in spawn_seed_sequences(seed, count)
    ]


# ----------------------------------------------------------------------
# specs and shard results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One independent unit of experiment work.

    ``fn`` must be a module-level callable (workers import it by
    reference); ``seed`` — when not ``None`` — is passed as the ``seed``
    keyword, matching every harness runner's signature.  ``label`` tags
    the shard in reports and telemetry.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[Any] = None
    label: str = ""

    def execute(self) -> Any:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return self.fn(*self.args, **kwargs)


@dataclass
class ShardResult:
    """The picklable residue of one executed spec.

    Harness runs (anything returning a
    :class:`~repro.experiments.harness.RunResult`) are reduced to their
    metrics, detection records and telemetry registry; any other return
    value is shipped verbatim in ``value`` (and must itself pickle).
    """

    label: str
    seed: Optional[Any]
    duration_s: float
    metrics: Optional[RunMetrics] = None
    detections: list = field(default_factory=list)
    registry: Optional[MetricsRegistry] = None
    trace: Optional[Any] = None
    value: Any = None

    @property
    def solution_count(self) -> int:
        return len(self.detections)


def _reduce_outcome(
    spec: RunSpec, outcome: Any, duration: float, capture_trace: bool
) -> ShardResult:
    from .harness import RunResult

    if isinstance(outcome, RunResult):
        return ShardResult(
            label=spec.label,
            seed=spec.seed,
            duration_s=duration,
            metrics=outcome.metrics,
            detections=list(outcome.detections),
            registry=outcome.sim.telemetry.registry,
            trace=outcome.trace if capture_trace else None,
        )
    return ShardResult(
        label=spec.label, seed=spec.seed, duration_s=duration, value=outcome
    )


def _execute_shard(work: Tuple[RunSpec, bool]) -> ShardResult:
    """Worker entry point (module-level, so the pool can import it)."""
    spec, capture_trace = work
    start = time.perf_counter()
    outcome = spec.execute()
    duration = time.perf_counter() - start
    return _reduce_outcome(spec, outcome, duration, capture_trace)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
@dataclass
class ShardReport:
    """A whole sweep, folded back together in spec order."""

    shards: List[ShardResult]
    workers: int
    metrics: RunMetrics
    telemetry: MetricsRegistry

    @property
    def detections(self) -> list:
        """All shards' detection records, concatenated in spec order."""
        out: list = []
        for shard in self.shards:
            out.extend(shard.detections)
        return out

    @property
    def values(self) -> list:
        """Raw return values of non-harness specs, in spec order."""
        return [shard.value for shard in self.shards]

    def shard_skew(self) -> float:
        """Slowest/fastest shard wall-clock ratio (1.0 = perfectly even;
        ``repro-trace`` reports this from the duration histogram)."""
        durations = [s.duration_s for s in self.shards if s.duration_s > 0]
        if not durations:
            return 1.0
        return max(durations) / min(durations)

    #: Metrics that legitimately vary with worker count / wall clock —
    #: everything else in the merged exposition must be identical for
    #: any ``workers`` setting.
    WALL_CLOCK_METRICS = ("repro_shard_duration_seconds", "repro_shard_workers")

    def deterministic_exposition(self) -> str:
        """The merged registry's Prometheus text with the wall-clock
        metrics stripped — the byte-comparable determinism surface of a
        sweep (``workers=1`` and ``workers=N`` must agree on it)."""
        from ..obs.export import prometheus_text

        lines = [
            line
            for line in prometheus_text(self.telemetry).splitlines()
            if not any(w in line.split("{")[0] for w in self.WALL_CLOCK_METRICS)
        ]
        return "\n".join(lines) + "\n"


class ShardedRunner:
    """Execute a list of :class:`RunSpec` across worker processes.

    Parameters
    ----------
    workers:
        ``1`` (default) runs in-process — the exact sequential path,
        with no executor, no pickling and no subprocess, kept as the
        determinism reference.  ``>1`` fans out over a process pool;
        results are gathered in spec order regardless of completion
        order.
    capture_trace:
        Ship each harness run's :class:`~repro.sim.trace.ExecutionTrace`
        back in the shard result (they can be large; off by default).
    """

    def __init__(self, *, workers: int = 1, capture_trace: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.capture_trace = capture_trace

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> ShardReport:
        specs = list(specs)
        work = [(spec, self.capture_trace) for spec in specs]
        if self.workers == 1 or len(specs) <= 1:
            shards = [_execute_shard(item) for item in work]
        else:
            max_workers = min(self.workers, len(specs), (os.cpu_count() or 1) * 8)
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                shards = list(pool.map(_execute_shard, work, chunksize=1))
        return self._fold(shards)

    # ------------------------------------------------------------------
    def _fold(self, shards: List[ShardResult]) -> ShardReport:
        metrics = RunMetrics.merged(
            [shard.metrics for shard in shards if shard.metrics is not None]
        )
        telemetry = MetricsRegistry()
        for shard in shards:
            if shard.registry is not None:
                telemetry.merge(shard.registry)
        self._republish_alpha(telemetry)
        duration = telemetry.histogram(
            "repro_shard_duration_seconds",
            "Wall-clock seconds per experiment shard (skew diagnostics).",
            SHARD_DURATION_BUCKETS,
        )
        for shard in shards:
            duration.observe(shard.duration_s)
        telemetry.counter(
            "repro_shards_total", "Experiment shards executed by ShardedRunner."
        ).inc(len(shards))
        telemetry.gauge(
            "repro_shard_workers", "Worker processes configured for the sweep."
        ).set(self.workers)
        return ShardReport(
            shards=shards, workers=self.workers, metrics=metrics, telemetry=telemetry
        )

    @staticmethod
    def _republish_alpha(telemetry: MetricsRegistry) -> None:
        """Recompute per-level realized α from the *merged* detection /
        offer counters (a gauge merge alone would keep the last shard's
        value, not the sweep-wide ratio)."""
        detections = telemetry.get("repro_level_detections_total")
        offers = telemetry.get("repro_level_offers_total")
        if detections is None or offers is None:
            return
        alpha = telemetry.gauge_vec(
            "repro_level_realized_alpha",
            "Realized aggregation probability α per tree level.",
            ("level",),
        )
        for level, count in offers.items():
            if count:
                alpha[level] = detections.get(level, 0) / count
