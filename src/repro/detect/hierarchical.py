"""The hierarchical detector — the paper's core contribution (Section III).

Every node ``P_i`` of the spanning tree runs a
:class:`HierarchicalNodeCore`: a :class:`~repro.detect.core.RepeatedDetectionCore`
over one queue for its own local intervals plus one queue per child.
The node thereby detects ``Definitely(Φ)`` restricted to the subtree
rooted at itself.  On each solution it

* if it has a parent: aggregates the solution set with ``⊓``
  (Eq. 5–6) and reports the single aggregated interval one hop up
  (Algorithm 1, lines 19–20);
* if it is the root: announces a satisfaction of the global predicate
  (lines 21–22) — or, after failures, of the partial predicate over the
  surviving processes.

The core is pure (no I/O, no clock): it consumes intervals and returns
:class:`Emission` records.  The simulation role in
:mod:`repro.detect.roles` wraps it with messaging, reordering and
heartbeats, and the fault layer rewires children on tree repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable, Iterable, List, Optional

from ..intervals import Interval, aggregate
from .base import CoreStats, Solution
from .core import RepeatedDetectionCore

__all__ = ["EmissionKind", "Emission", "HierarchicalNodeCore"]


class EmissionKind(Enum):
    """What a node does with a solution it detected."""

    REPORT = "report"  # non-root: aggregated interval for the parent
    DETECTION = "detection"  # root: global (or partial) predicate detected


@dataclass(frozen=True)
class Emission:
    kind: EmissionKind
    solution: Solution
    aggregate: Interval


class HierarchicalNodeCore:
    """Algorithm 1 state machine for one spanning-tree node.

    Parameters
    ----------
    node_id:
        This node's process id (also the key of its local queue).
    children:
        Ids of current children in the spanning tree.
    is_root:
        Whether this node currently has no parent.  Mutable: tree
        repair after the root's failure promotes a new root.
    observer:
        Optional lifecycle callback forwarded to the underlying
        :class:`~repro.detect.core.RepeatedDetectionCore` (see its
        docstring) — how span tracing observes enqueues and prunes.
    engine, on_pair_tests:
        Forwarded to the underlying core: comparison engine selection
        and the per-activation logical pair-test callback backing the
        ``repro_core_pair_tests_total`` metric.
    """

    def __init__(
        self,
        node_id: int,
        children: Iterable[int] = (),
        *,
        is_root: bool = False,
        observer=None,
        engine: Optional[str] = None,
        on_pair_tests=None,
    ) -> None:
        self.node_id = node_id
        self.is_root = is_root
        keys = [node_id, *children]
        if len(set(keys)) != len(keys):
            raise ValueError("children ids must be unique and differ from node_id")
        self._core = RepeatedDetectionCore(
            keys,
            detector_id=node_id,
            observer=observer,
            engine=engine,
            on_pair_tests=on_pair_tests,
        )
        self._next_agg_seq = 0
        self.emissions: List[Emission] = []

    # ------------------------------------------------------------------
    @property
    def children(self) -> List[int]:
        return [k for k in self._core.queues if k != self.node_id]

    @property
    def stats(self) -> CoreStats:
        return self._core.stats

    @property
    def solutions(self) -> List[Solution]:
        return self._core.solutions

    def queue_sizes(self):
        return self._core.queue_sizes()

    def space_in_use(self) -> int:
        return self._core.space_in_use()

    def peak_queue_space(self) -> int:
        return self._core.peak_queue_space()

    def add_observer(self, fn) -> None:
        """Chain an extra queue-lifecycle observer onto the underlying
        core (see :meth:`RepeatedDetectionCore.add_observer`)."""
        self._core.add_observer(fn)

    # ------------------------------------------------------------------
    # tree rewiring (Section III-F)
    # ------------------------------------------------------------------
    def add_child(self, child: int) -> None:
        """A subtree reattached below us: open a queue for it."""
        self._core.add_queue(child)

    def remove_child(self, child: int) -> List[Emission]:
        """A child failed or detached: drop its queue and re-run
        detection — the remaining heads may now form a solution."""
        solutions = self._core.remove_queue(child)
        return self._emit_all(solutions)

    # ------------------------------------------------------------------
    # interval input
    # ------------------------------------------------------------------
    def offer_local(self, interval: Interval) -> List[Emission]:
        """A local-predicate interval completed at this node (queue
        ``Q_0`` of Algorithm 1)."""
        return self._emit_all(self._core.offer(self.node_id, interval))

    def offer_child(self, child: int, interval: Interval) -> List[Emission]:
        """An interval (aggregated unless the child is a leaf) reported
        by *child*.  The caller must deliver a given child's reports in
        sequence order (see :class:`~repro.intervals.ReorderBuffer`)."""
        return self._emit_all(self._core.offer(child, interval))

    # ------------------------------------------------------------------
    def _emit_all(self, solutions: List[Solution]) -> List[Emission]:
        out = []
        for solution in solutions:
            out.append(self._emit(solution))
        self.emissions.extend(out)
        return out

    def _emit(self, solution: Solution) -> Emission:
        agg = aggregate(
            solution.intervals, owner=self.node_id, seq=self._next_agg_seq
        )
        self._next_agg_seq += 1
        kind = EmissionKind.DETECTION if self.is_root else EmissionKind.REPORT
        return Emission(kind=kind, solution=solution, aggregate=agg)
