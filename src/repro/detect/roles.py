"""Control-plane roles: detector cores embedded in the simulation.

A role is the personality a :class:`~repro.sim.process.MonitoredProcess`
runs on the control plane:

* :class:`HierarchicalRole` — Algorithm 1 at one spanning-tree node:
  detects over its subtree, reports ``⊓``-aggregates one hop to its
  parent, exchanges heartbeats, and rewires itself under the repair
  coordinator when the tree changes.
* :class:`CentralizedReporterRole` — the baseline's per-node half:
  forwards every local interval hop-by-hop to the sink.
* :class:`CentralizedSinkRole` — the baseline's sink ([12] repeated
  detection, or the one-shot Garg–Waldecker variant).

Roles communicate only through the simulated network; channels are
non-FIFO, so receivers run a per-sender
:class:`~repro.intervals.ReorderBuffer` keyed by transport sequence
numbers, which restart on every (re-)attachment epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..intervals import Interval, ReorderBuffer
from ..obs.spans import interval_key
from ..sim.messages import Heartbeat, IntervalReport
from ..sim.process import MonitoredProcess
from .base import Solution
from .centralized import CentralizedSinkCore
from .garg_waldecker import OneShotDefinitelyCore
from .possibly import PossiblyCore
from .hierarchical import Emission, HierarchicalNodeCore

__all__ = [
    "DetectionRecord",
    "HierarchicalRole",
    "CentralizedReporterRole",
    "CentralizedSinkRole",
    "PossiblySinkRole",
]


@dataclass(frozen=True)
class DetectionRecord:
    """One announced satisfaction of the (possibly partial) predicate."""

    time: float
    detector: int
    solution: Solution
    aggregate: Optional[Interval]

    @property
    def members(self) -> frozenset:
        """Processes whose local predicates this detection covers."""
        if self.aggregate is not None:
            return self.aggregate.members
        return self.solution.members


class HierarchicalRole:
    """Algorithm 1 node: subtree detection + reporting + fault handling.

    Parameters
    ----------
    parent:
        Initial parent in the spanning tree (``None`` for the root).
    children:
        Initial children.
    heartbeat:
        ``(period, timeout)`` or a
        :class:`~repro.monitor.HeartbeatSpec` to enable the Section
        III-F liveness protocol, or ``None`` to run without failure
        handling.
    coordinator:
        The :class:`~repro.fault.RepairCoordinator` to notify on
        suspected crashes.  Without one, a suspicion is handled locally:
        a dead child's queue is dropped and a dead parent makes this
        node the root of its own partition.
    level:
        This node's spanning-tree level (paper numbering: leaves are 1).
        Purely a telemetry label — spans and metrics carry it so the
        Chrome-trace exporter can lay processes out by level.  Kept at
        its initial value across repairs (it labels where work happened
        when the tree was built, not the live topology).
    """

    def __init__(
        self,
        parent: Optional[int],
        children: Sequence[int],
        *,
        heartbeat: Optional[tuple] = None,
        coordinator=None,
        on_detection=None,
        on_subtree_solution=None,
        level: Optional[int] = None,
    ) -> None:
        self.parent_id = parent
        self._init_children = list(children)
        self._heartbeat_cfg = heartbeat
        self.coordinator = coordinator
        self.on_detection = on_detection  # callback(DetectionRecord), root-level
        self.on_subtree_solution = on_subtree_solution  # callback(pid, Emission)
        self.level = level
        self.monitor = None
        self.detections: List[DetectionRecord] = []
        self.process: Optional[MonitoredProcess] = None
        self.core: Optional[HierarchicalNodeCore] = None
        self._extra_core_observers: List = []
        self._buffers: Dict[int, ReorderBuffer] = {}
        self._out_seq = 0
        self._pending: List[Interval] = []  # aggregates emitted while orphaned
        self._telemetry = None

    # ------------------------------------------------------------------
    # DetectorRole interface
    # ------------------------------------------------------------------
    def bind(self, process: MonitoredProcess) -> None:
        self.process = process
        self._telemetry = process.sim.telemetry
        registry = self._telemetry.registry
        self._c_enqueued = registry.counter_vec(
            "repro_detect_enqueued_total",
            "Intervals enqueued into detection queues, per node.",
            ("node",),
        )
        self._c_pruned = registry.counter_vec(
            "repro_detect_pruned_total",
            "Queue heads pruned, per node and reason.",
            ("node", "reason"),
        )
        self._c_reports = registry.counter_vec(
            "repro_reports_total",
            "Aggregated intervals reported to parents, per node.",
            ("node",),
        )
        self._c_alarms = registry.counter_vec(
            "repro_alarms_total",
            "Definitely(Phi) announcements, per (partition-)root node.",
            ("node",),
        )
        self._c_pair_tests = registry.counter_vec(
            "repro_core_pair_tests_total",
            "Logical head-pair comparisons performed by detection cores, "
            "per spanning-tree level (the unit of the paper's time "
            "analysis; engine-independent).",
            ("level",),
        )
        # Bound increment handles: label keys resolve once here instead
        # of on every event.  The per-offer counters (enqueued, pruned)
        # are folded in batches from the span tracker's pending queue —
        # the observer itself does no metric work (see _fold_counts).
        pid = process.pid
        self._h_enqueued = self._c_enqueued.handle(pid)
        self._h_reports = self._c_reports.handle(pid)
        self._h_alarms = self._c_alarms.handle(pid)
        self._h_pruned: Dict[str, Callable[..., None]] = {}
        self._mark = self._telemetry.spans.mark_interval
        self._telemetry.spans.on_flush(pid, self._fold_counts)
        self.core = HierarchicalNodeCore(
            process.pid,
            self._init_children,
            is_root=self.parent_id is None,
            observer=self._observe_core,
            on_pair_tests=self._count_pair_tests,
        )
        for observer in self._extra_core_observers:
            self.core.add_observer(observer)
        self._buffers = {c: ReorderBuffer() for c in self._init_children}
        if self._heartbeat_cfg is not None:
            from ..fault.heartbeat import HeartbeatMonitor

            cfg = self._heartbeat_cfg
            # A (period, timeout) tuple or a monitor.spec.HeartbeatSpec
            # (duck-typed to keep detect free of a monitor import cycle).
            period, timeout = cfg.as_tuple() if hasattr(cfg, "as_tuple") else cfg
            self.monitor = HeartbeatMonitor(
                process.sim,
                process.pid,
                send=process.send_control,
                on_suspect=self._suspect,
                period=period,
                timeout=timeout,
            )
            for peer in self._init_children:
                self.monitor.add_peer(peer)
            if self.parent_id is not None:
                self.monitor.add_peer(self.parent_id)

    def add_core_observer(self, fn) -> None:
        """Chain an extra queue-lifecycle observer onto the detection
        core and keep it across core rebuilds (``rebirth`` replaces the
        core object) — how the epoch ledger's queue hooks stay attached
        for a node's whole life."""
        self._extra_core_observers.append(fn)
        if self.core is not None:
            self.core.add_observer(fn)

    def on_start(self) -> None:
        if self.monitor is not None:
            self.monitor.start()

    def on_crash(self) -> None:
        """Host process crashed: a dead node must not keep suspecting
        the peers that (correctly) stopped talking to it."""
        if self.monitor is not None:
            self.monitor.stop()

    def on_local_interval(self, interval: Interval) -> None:
        self._handle(self.core.offer_local(interval))

    def on_control_message(self, src: int, message: object) -> None:
        if isinstance(message, IntervalReport):
            buffer = self._buffers.get(src)
            if buffer is None:
                return  # stale report from a node no longer our child
            for interval in buffer.push(message.transport_seq, message.interval):
                self._handle(self.core.offer_child(src, interval))
        elif isinstance(message, Heartbeat):
            if self.monitor is not None:
                self.monitor.beat_from(message.sender)

    # ------------------------------------------------------------------
    # telemetry (spans + counters; see repro.obs)
    # ------------------------------------------------------------------
    def _observe_core(self, event: str, key, interval: Interval) -> None:
        """Core lifecycle hook: enqueue one span mark and nothing else.

        This runs ~2× per offered interval, inside the loop the
        telemetry measures.  The mark entry doubles as the counting
        record — per-node enqueued/pruned counters are derived from the
        queued marks when the tracker folds (see :meth:`_fold_counts`),
        so the hot path is a single bounded append."""
        self._mark(
            interval,
            self.process.sim.now,
            "enqueued" if event == "enqueue" else event,
            self.process.pid,
        )

    def _fold_counts(self, counts: Dict) -> None:
        """Batch counter fold, called by the span tracker per queue
        flush with this node's ``{event_or_None: count}``.  ``None``
        keys are completed-interval records (counted by the process);
        prune reasons arrive verbatim from the core observer."""
        for event, amount in counts.items():
            if event == "enqueued":
                self._h_enqueued(amount)
            elif event is not None and event.startswith("prune"):
                handle = self._h_pruned.get(event)
                if handle is None:
                    pid = self.process.pid
                    handle = self._h_pruned[event] = self._c_pruned.handle((pid, event))
                handle(amount)

    def _count_pair_tests(self, count: int) -> None:
        """Per-activation flush from the core (see ``on_pair_tests``)."""
        self._c_pair_tests[self.level if self.level is not None else 0] += count

    def _span_attrs(self) -> dict:
        return {} if self.level is None else {"level": self.level}

    def _record_report_span(self, aggregate: Interval) -> None:
        """A ``report`` span for an aggregate, adopting the spans of the
        solution-set intervals it compresses (``⊓`` provenance)."""
        spans = self._telemetry.spans
        now = self.process.sim.now
        span = spans.record(
            "report",
            now,
            now,
            node=self.process.pid,
            key=interval_key(aggregate),
            seq=aggregate.seq,
            members=len(aggregate.members),
            **self._span_attrs(),
        )
        for part in aggregate.parts:
            spans.adopt(span, interval_key(part))

    # ------------------------------------------------------------------
    # emission handling
    # ------------------------------------------------------------------
    def _handle(self, emissions: List[Emission]) -> None:
        for emission in emissions:
            if self.on_subtree_solution is not None:
                self.on_subtree_solution(self.process.pid, emission)
            if self.core.is_root:
                self._record_detection(emission.solution, emission.aggregate)
            else:
                self._record_report_span(emission.aggregate)
                self._h_reports()
                self._report(emission.aggregate)

    def _record_detection(self, solution: Solution, aggregate: Interval) -> None:
        record = DetectionRecord(
            time=self.process.sim.now,
            detector=self.process.pid,
            solution=solution,
            aggregate=aggregate,
        )
        self.detections.append(record)
        self._record_alarm_telemetry(record)
        self.process.sim.emit(
            "detection",
            node=self.process.pid,
            members=len(record.members),
            index=record.solution.index,
        )
        if self.on_detection is not None:
            self.on_detection(record)

    def _record_alarm_telemetry(self, record: DetectionRecord) -> None:
        """An ``alarm`` span parented over the solution's artifacts, plus
        the headline detection-latency observation.

        Latency is the simulated time from the *last* solution
        interval's open to the announcement — 0-safe: a predicate
        satisfied at the very first event yields a small non-negative
        latency, and replayed solutions whose interval spans were never
        traced fall back to 0.
        """
        telemetry = self._telemetry
        now = self.process.sim.now
        opens = []
        for leaf in record.solution.concrete_intervals():
            span = telemetry.spans.get(interval_key(leaf))
            if span is not None:
                opens.append(span.start)
        latency = max(0.0, now - max(opens)) if opens else 0.0
        telemetry.detection_latency.observe(latency)
        alarm = telemetry.spans.record(
            "alarm",
            now,
            now,
            node=self.process.pid,
            index=record.solution.index,
            members=len(record.members),
            latency=latency,
            **self._span_attrs(),
        )
        self._h_alarms()
        aggregate = record.aggregate
        if aggregate is not None:
            # A pending aggregate announced after promotion already has
            # a report span — adopt it; otherwise adopt the solution
            # heads directly.
            if not telemetry.spans.adopt(alarm, interval_key(aggregate)):
                for part in aggregate.parts:
                    telemetry.spans.adopt(alarm, interval_key(part))
        else:
            for interval in record.solution.intervals:
                telemetry.spans.adopt(alarm, interval_key(interval))

    def _report(self, aggregate: Interval) -> None:
        if self.parent_id is None:
            # Orphaned mid-repair: hold reports for the next parent.
            self._pending.append(aggregate)
            return
        message = IntervalReport(
            origin=self.process.pid,
            dest=self.parent_id,
            interval=aggregate,
            transport_seq=self._out_seq,
        )
        self._out_seq += 1
        self.process.send_control(self.parent_id, message)

    # ------------------------------------------------------------------
    # failure handling & rewiring (RepairableRole interface)
    # ------------------------------------------------------------------
    def _suspect(self, peer: int) -> None:
        if self.coordinator is not None:
            self.coordinator.report_failure(peer, reporter=self.process.pid)
            return
        # Standalone handling: degrade to partition-local monitoring.
        if peer == self.parent_id:
            self.become_root()
        elif peer in self._buffers:
            self.child_failed(peer)

    def _release_peer(self, peer: int) -> None:
        """Stop watching *peer* — unless it is still a tree neighbour in
        another capacity.  Re-rooting flips can make yesterday's parent
        today's child (and vice versa); heartbeat peers track the union
        of the current parent and children, so a removal must check the
        relationship that remains, not the one that ended."""
        if self.monitor is None:
            return
        if peer == self.parent_id or peer in self._buffers:
            return
        self.monitor.remove_peer(peer)

    def child_failed(self, child: int) -> None:
        """Drop a dead child's queue; remaining heads may form solutions."""
        self._buffers.pop(child, None)
        self._release_peer(child)
        self._handle(self.core.remove_child(child))

    def drop_child(self, child: int) -> None:
        """A live child moved elsewhere in the tree (re-rooting)."""
        self.child_failed(child)

    def gain_child(self, child: int) -> None:
        self.core.add_child(child)
        self._buffers[child] = ReorderBuffer()
        if self.monitor is not None:
            self.monitor.add_peer(child)

    def set_parent(self, parent: int) -> None:
        old_parent, self.parent_id = self.parent_id, parent
        if self.monitor is not None:
            self.monitor.add_peer(parent)
        if old_parent is not None:
            self._release_peer(old_parent)
        self.core.is_root = False
        self._out_seq = 0  # new attachment epoch: receiver has a fresh buffer
        pending, self._pending = self._pending, []
        for aggregate in pending:
            self._report(aggregate)

    def become_root(self) -> None:
        """Promoted (root died) or partitioned: solutions are now
        detections of the partial predicate over this node's domain."""
        old_parent, self.parent_id = self.parent_id, None
        if old_parent is not None:
            self._release_peer(old_parent)
        self.core.is_root = True
        pending, self._pending = self._pending, []
        for aggregate in pending:
            # These solutions were detected while orphaned; announce them.
            matching = [
                s for s in self.core.solutions if s.index == aggregate.seq
            ]
            self._record_detection(matching[0], aggregate)

    def rebirth(self, parent: int) -> None:
        """Restart after recovery: fresh detector state (queues are soft
        state), rejoining as a leaf under *parent*.  Past detections are
        kept — they were correct when announced."""
        self.core = HierarchicalNodeCore(
            self.process.pid,
            (),
            is_root=False,
            observer=self._observe_core,
            on_pair_tests=self._count_pair_tests,
        )
        for observer in self._extra_core_observers:
            self.core.add_observer(observer)
        self._buffers = {}
        self._pending = []
        self._out_seq = 0
        self.parent_id = parent
        if self.monitor is not None:
            for peer in list(self.monitor.peers):
                self.monitor.remove_peer(peer)
            self.monitor.add_peer(parent)
            self.monitor.start()


class CentralizedReporterRole:
    """Baseline per-node role: every local interval goes to the sink,
    forwarded hop-by-hop along the spanning tree (Eq. 12 accounting)."""

    def __init__(self, route_to_sink: Sequence[int]) -> None:
        if len(route_to_sink) < 2:
            raise ValueError("reporter route must reach a distinct sink")
        self.route = list(route_to_sink)
        self.process: Optional[MonitoredProcess] = None
        self._out_seq = 0

    def bind(self, process: MonitoredProcess) -> None:
        if process.pid != self.route[0]:
            raise ValueError("route must start at the bound process")
        self.process = process

    def on_start(self) -> None:
        pass

    def on_local_interval(self, interval: Interval) -> None:
        message = IntervalReport(
            origin=self.process.pid,
            dest=self.route[-1],
            interval=interval,
            transport_seq=self._out_seq,
        )
        self._out_seq += 1
        self.process.send_control_routed(self.route, message)

    def on_control_message(self, src: int, message: object) -> None:
        pass  # the baseline has no node-level control traffic


class CentralizedSinkRole:
    """Baseline sink: all queues, all space, all time at one process."""

    def __init__(self, process_ids: Sequence[int], *, one_shot: bool = False) -> None:
        self.process_ids = list(process_ids)
        self.one_shot = one_shot
        self.process: Optional[MonitoredProcess] = None
        self.core = None
        self.detections: List[DetectionRecord] = []
        self._buffers: Dict[int, ReorderBuffer] = {}

    def bind(self, process: MonitoredProcess) -> None:
        self.process = process
        if self.one_shot:
            self.core = OneShotDefinitelyCore(process.pid, self.process_ids)
        else:
            self.core = CentralizedSinkCore(process.pid, self.process_ids)
        self._buffers = {
            pid: ReorderBuffer() for pid in self.process_ids if pid != process.pid
        }

    def on_start(self) -> None:
        pass

    def on_local_interval(self, interval: Interval) -> None:
        self._record(self.core.offer(self.process.pid, interval))

    def on_control_message(self, src: int, message: object) -> None:
        if not isinstance(message, IntervalReport):
            return
        buffer = self._buffers.get(message.origin)
        if buffer is None:
            return
        for interval in buffer.push(message.transport_seq, message.interval):
            self._record(self.core.offer(message.origin, interval))

    def _record(self, solutions) -> None:
        for solution in solutions or []:
            self.detections.append(
                DetectionRecord(
                    time=self.process.sim.now,
                    detector=self.process.pid,
                    solution=solution,
                    aggregate=None,
                )
            )


class PossiblySinkRole:
    """Sink role for the weak-modality baseline [8]: one-shot
    ``Possibly(Φ)`` detection over reports routed like the centralized
    Definitely baseline's."""

    def __init__(self, process_ids: Sequence[int]) -> None:
        self.process_ids = list(process_ids)
        self.process: Optional[MonitoredProcess] = None
        self.core: Optional[PossiblyCore] = None
        self.detections: List[DetectionRecord] = []
        self._buffers: Dict[int, ReorderBuffer] = {}

    def bind(self, process: MonitoredProcess) -> None:
        self.process = process
        self.core = PossiblyCore(process.pid, self.process_ids)
        self._buffers = {
            pid: ReorderBuffer() for pid in self.process_ids if pid != process.pid
        }

    def on_start(self) -> None:
        pass

    def on_crash(self) -> None:
        pass

    def on_local_interval(self, interval: Interval) -> None:
        self._record(self.core.offer(self.process.pid, interval))

    def on_control_message(self, src: int, message: object) -> None:
        if not isinstance(message, IntervalReport):
            return
        buffer = self._buffers.get(message.origin)
        if buffer is None:
            return
        for interval in buffer.push(message.transport_seq, message.interval):
            self._record(self.core.offer(message.origin, interval))

    def _record(self, solution) -> None:
        if solution is None:
            return
        self.detections.append(
            DetectionRecord(
                time=self.process.sim.now,
                detector=self.process.pid,
                solution=solution,
                aggregate=None,
            )
        )
        self.process.sim.emit(
            "possibly_detection", node=self.process.pid, members=len(solution.members)
        )
