"""Distributed one-shot ``Definitely(Φ)`` detection with a token.

The paper's related-work table (Section I) cites Chandra &
Kshemkalyani [11]: a *distributed* detector whose interval queues live
at their owners instead of a sink, trading the sink's `O(pn²)` hot spot
for token circulation.  This module implements a detector in that
spirit — simplified, but with honest queue placement and message
accounting (see DESIGN.md's substitution table):

* every process keeps its own completed intervals in a local FIFO —
  storage is `O(p·n)` vector entries *at the owner*, never centralized;
* a single token carries the current candidate set (one interval per
  process, possibly missing) plus the set of processes that owe it a
  fresh candidate;
* the token travels to a process that owes a candidate, pops that
  process's queue head, and runs the pairwise Garg–Waldecker checks
  *locally* (so comparison work is spread over the visited nodes):

  - ``min(x) ≮ max(y)``  ⟹  ``y`` can never join ``x`` or any of its
    successors: discard ``y`` and demand a fresh candidate from ``j``;
  - symmetrically for ``x``;

* when no process owes a candidate, the surviving heads mutually
  overlap — ``Definitely(Φ)`` detected, one-shot, at whichever process
  holds the token;
* a token demanding a candidate from a process with an empty queue
  *parks* there until a local interval completes.  Parking is safe: the
  process is only asked for a fresh candidate when every earlier
  candidate of its was proven useless, so any solution must contain a
  later interval of that very process.

Like [7]/[8]/[11], this is a one-shot algorithm — the contrast the
paper draws still stands: none of the distributed prior work detects
repeatedly, so none of it can sit inside a hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..clocks import vc_less
from ..intervals import Interval, IntervalQueue
from .base import CoreStats, Solution

__all__ = ["TokenState", "TokenDefinitelyDetector"]


@dataclass
class TokenState:
    """The circulating token: candidates + who owes one."""

    heads: Dict[int, Optional[Interval]]
    needs: Set[int]
    hops: int = 0  # control messages spent moving the token

    @classmethod
    def initial(cls, process_ids) -> "TokenState":
        ids = list(process_ids)
        return cls(heads={pid: None for pid in ids}, needs=set(ids))

    @property
    def complete(self) -> bool:
        return not self.needs


class TokenDefinitelyDetector:
    """Pure (simulation-free) engine for the token algorithm.

    Drives the token over per-owner queues; :meth:`offer` delivers a
    completed local interval, and the engine moves/parks the token and
    reports the one-shot detection.  The sim role in
    :mod:`repro.detect.roles_token` wraps this with real messages.
    """

    def __init__(self, process_ids, *, start_at: Optional[int] = None) -> None:
        ids = sorted(process_ids)
        if not ids:
            raise ValueError("need at least one process")
        self.queues: Dict[int, IntervalQueue] = {pid: IntervalQueue() for pid in ids}
        self.token = TokenState.initial(ids)
        self.token_at: int = start_at if start_at is not None else ids[0]
        if self.token_at not in self.queues:
            raise ValueError(f"start_at {self.token_at} is not a process")
        self.stats = CoreStats()
        self.detection: Optional[Solution] = None
        self.detected_at: Optional[int] = None
        self.moves: List[int] = [self.token_at]  # visit order, for accounting

    # ------------------------------------------------------------------
    @property
    def halted(self) -> bool:
        return self.detection is not None

    def _vc_less(self, u, v) -> bool:
        self.stats.comparisons += 1
        return vc_less(u, v)

    def offer(self, pid: int, interval: Interval) -> Optional[Solution]:
        """A local interval completed at *pid* (enqueued at its owner)."""
        if self.halted:
            return None
        self.queues[pid].enqueue(interval)
        self.stats.offers += 1
        # Wake the token if it is parked here waiting for exactly this.
        if self.token_at == pid and pid in self.token.needs:
            return self._drive()
        return None

    def start(self) -> Optional[Solution]:
        """Begin circulation (call once all roles are wired)."""
        return self._drive()

    # ------------------------------------------------------------------
    def _drive(self) -> Optional[Solution]:
        """Process the token at its current holder, moving it until it
        parks (owner's queue empty) or detection fires."""
        token = self.token
        while True:
            here = self.token_at
            if here in token.needs:
                queue = self.queues[here]
                if not queue:
                    return None  # park: wait for a local interval
                candidate = queue.dequeue()
                token.heads[here] = candidate
                token.needs.discard(here)
                self._check_against_others(here)
                if token.heads[here] is None:
                    continue  # pruned immediately; try the next local interval
            if token.complete:
                heads = {pid: iv for pid, iv in token.heads.items()}
                self.detection = Solution(detector=here, index=0, heads=heads)
                self.detected_at = here
                self.stats.detections += 1
                return self.detection
            # Move to the nearest (smallest-id) process owing a candidate.
            nxt = min(token.needs)
            token.hops += 1
            self.token_at = nxt
            self.moves.append(nxt)

    def _check_against_others(self, fresh: int) -> None:
        """Pairwise Garg–Waldecker pruning of the fresh candidate
        against every other present candidate (runs at the holder)."""
        token = self.token
        x = token.heads[fresh]
        for other, y in token.heads.items():
            if other == fresh or y is None:
                continue
            if not self._vc_less(x.lo, y.hi):
                token.heads[other] = None
                token.needs.add(other)
                self.stats.pruned_incompatible += 1
            if not self._vc_less(y.lo, x.hi):
                token.heads[fresh] = None
                token.needs.add(fresh)
                self.stats.pruned_incompatible += 1
                return  # the fresh candidate is gone; stop comparing it
