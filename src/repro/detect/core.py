"""The repeated-detection queue machine (Algorithm 1, lines 1–33).

This is the shared engine behind every detector in the library:

* the **hierarchical** node (paper's contribution) runs it over one
  queue per child plus one for local intervals;
* the **centralized repeated-detection** baseline [12] runs it at the
  sink over one queue per process in the system;
* the **one-shot Garg–Waldecker** baseline runs only the
  incompatibility-pruning half and stops at the first solution.

Control flow
------------
The paper's listing is ambiguous about whether the solution check
(line 18) sits inside the ``while`` of line 4.  The reading implemented
here — the only one that is both safe and complete — is:

1. run the pairwise incompatibility pruning (lines 4–17) to a fixed
   point, so that every surviving head has been checked against every
   other head;
2. if *all* queues are then non-empty, the heads form a solution
   (report it), prune per Eq. (10) (lines 23–33), and go back to 1 with
   the pruned queues marked updated — this is what makes detection
   *repeated* within a single activation.

Deletion rules
--------------
* lines 12–15: if ``min(x) ≮ max(y)`` then ``y`` can never belong to a
  solution containing ``x`` *or any successor of* ``x`` (successors'
  ``min`` dominates ``min(x)`` component-wise), so ``y`` is useless and
  is deleted; symmetrically for ``x``.
* Eq. (10): after a solution, delete every head ``x_a`` with
  ``∀ b≠a: max(x_b) ≮ max(x_a)`` — safe (Theorem 3) and guaranteed to
  delete at least one head (Theorem 4), ensuring progress.

We implement the exact ``≮`` test rather than the paper's line 26–29
short-circuit, which misses the (vector-equality) boundary case; see
DESIGN.md.  Both agree on all executions where ``max`` timestamps are
distinct, which property tests confirm.

Engines
-------
The pair tests themselves run on one of two interchangeable engines:

* ``"matrix"`` (default) — a :class:`~repro.clocks.compare.HeadMatrix`
  keeps the current heads' bounds stacked and memoizes every pair
  result until a head changes, so an activation costs one batched
  numpy refresh per changed head plus cache lookups;
* ``"scalar"`` — the original per-pair :func:`~repro.clocks.vc_less`
  calls, kept as the reference implementation the benchmarks and the
  determinism suite compare against.

Both engines produce byte-identical solutions, prune-event streams and
``stats.comparisons`` counts: ``comparisons`` counts *logical* pair
tests (each ``≮`` the algorithm consults, cached or not), which is the
unit of the paper's time analysis.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from ..clocks import vc_less
from ..clocks.compare import HeadMatrix
from ..intervals import Interval, IntervalQueue
from .base import CoreStats, Solution

__all__ = [
    "RepeatedDetectionCore",
    "get_default_engine",
    "set_default_engine",
]

_ENGINES = ("matrix", "scalar")
_default_engine = "matrix"


def get_default_engine() -> str:
    """The engine cores use when constructed without an explicit one."""
    return _default_engine


def set_default_engine(name: str) -> None:
    """Select the process-wide default comparison engine.

    The benchmarks flip this to time the scalar reference path against
    the vectorized one over identical workloads.
    """
    global _default_engine
    if name not in _ENGINES:
        raise ValueError(f"unknown engine {name!r}, expected one of {_ENGINES}")
    _default_engine = name


class RepeatedDetectionCore:
    """Queues + the repeated ``Definitely(Φ)`` detection procedure.

    Parameters
    ----------
    keys:
        Initial queue keys (e.g. ``0`` for local intervals and one key
        per child).  Queues may be added/removed later — the fault
        layer does so when the spanning tree is repaired.
    detector_id:
        Node id stamped on emitted :class:`Solution` records.
    repeated:
        When ``False``, the core stops after its first solution and
        ignores all later input — modelling the one-shot baselines the
        paper contrasts against (Section I: they "hang after the
        initial detection").
    observer:
        Optional ``observer(event, key, interval)`` lifecycle callback
        with events ``"enqueue"``, ``"prune_incompat"`` and
        ``"prune_solution"`` — the hook the telemetry layer
        (:mod:`repro.obs`) uses to mark spans without making the core
        impure (no I/O, no clock: the observer supplies its own).
    engine:
        ``"matrix"`` (memoized vectorized pair tests, the default) or
        ``"scalar"`` (per-pair ``vc_less``).  ``None`` picks the
        process default (:func:`get_default_engine`).
    on_pair_tests:
        Optional ``callback(count)`` invoked once per activation with
        the number of logical pair tests it performed — how the
        ``repro_core_pair_tests_total`` metric stays observable without
        a per-test callback on the hot path.
    """

    def __init__(
        self,
        keys: Iterable[Hashable],
        detector_id: int = 0,
        *,
        repeated: bool = True,
        observer=None,
        engine: Optional[str] = None,
        on_pair_tests=None,
    ) -> None:
        self.queues: Dict[Hashable, IntervalQueue] = {
            key: IntervalQueue() for key in keys
        }
        if not self.queues:
            raise ValueError("a detection core needs at least one queue")
        if engine is None:
            engine = _default_engine
        elif engine not in _ENGINES:
            raise ValueError(f"unknown engine {engine!r}, expected one of {_ENGINES}")
        self.detector_id = detector_id
        self.repeated = repeated
        self.observer = observer
        self.engine = engine
        self.on_pair_tests = on_pair_tests
        self._matrix = HeadMatrix(self.queues) if engine == "matrix" else None
        self.stats = CoreStats()
        self.solutions: List[Solution] = []
        self._halted = False

    def add_observer(self, fn) -> None:
        """Chain an additional ``observer(event, key, interval)`` after
        any already installed one.

        Roles install their telemetry observer at construction; layers
        that attach later (the epoch ledger's queue hooks) chain here
        instead of replacing it.  Observers run in attach order and
        must obey the same contract: cheap and pure.
        """
        current = self.observer
        if current is None:
            self.observer = fn
            return

        def chained(event, key, interval, _first=current, _second=fn):
            _first(event, key, interval)
            _second(event, key, interval)

        self.observer = chained

    # ------------------------------------------------------------------
    # queue management (used by the fault layer on tree repair)
    # ------------------------------------------------------------------
    def add_queue(self, key: Hashable) -> None:
        if key in self.queues:
            raise KeyError(f"queue {key!r} already exists")
        self.queues[key] = IntervalQueue()
        if self._matrix is not None:
            self._matrix.add_key(key)

    def remove_queue(self, key: Hashable) -> List[Solution]:
        """Drop a queue (child failed / detached).

        Removing a queue can *unblock* detection: the remaining heads
        may already form a solution that was only waiting on the dead
        child.  We therefore re-run detection over all non-empty queues.
        """
        del self.queues[key]
        if self._matrix is not None:
            self._matrix.remove_key(key)
        if self._halted or not self.queues:
            return []
        updated = {k for k, q in self.queues.items() if q}
        return self._detect(updated) if updated else []

    @property
    def halted(self) -> bool:
        return self._halted

    # ------------------------------------------------------------------
    # the algorithm
    # ------------------------------------------------------------------
    def offer(self, key: Hashable, interval: Interval) -> List[Solution]:
        """Deliver one interval from source *key* (Algorithm 1, line 1).

        Returns the solutions detected as a consequence (possibly more
        than one: a single arrival can unblock a cascade).
        """
        if self._halted:
            return []
        queue = self.queues[key]
        queue.enqueue(interval)
        self.stats.offers += 1
        if self.observer is not None:
            self.observer("enqueue", key, interval)
        # Line 2: only a fresh head can change the outcome of detection.
        if len(queue) != 1:
            return []
        if self._matrix is not None:
            self._matrix.set_head(key, interval.lo, interval.hi)
        return self._detect({key})

    def offer_batch(self, items) -> List[Solution]:
        """Deliver many ``(key, interval)`` offers in one call.

        Byte-identical to looping :meth:`offer` over *items* — same
        solutions, same prune-event stream, same logical comparison
        counts, same halting behaviour — but ingestion is batched:
        consecutive offers that deepen an already non-empty queue never
        activate detection (Algorithm 1 line 2), so whole runs of them
        are bulk-enqueued through :meth:`IntervalQueue.extend
        <repro.intervals.IntervalQueue.extend>` with no per-offer
        Python dispatch and no :class:`~repro.clocks.compare.HeadMatrix`
        traffic.  Only offers that expose a fresh head go through the
        full detection path, so the matrix refreshes once per head
        transition rather than being consulted per offer.

        *items* must be an indexable sequence (a list of pairs); a
        generator should be materialized by the caller.
        """
        found: List[Solution] = []
        queues = self.queues
        observer = self.observer
        stats = self.stats
        i, count = 0, len(items)
        while i < count:
            if self._halted:
                # offer() drops input entirely once halted (one-shot
                # cores "hang after the initial detection").
                return found
            key, interval = items[i]
            queue = queues[key]
            if not queue:
                found.extend(self.offer(key, interval))
                i += 1
                continue
            # Run of consecutive same-key offers onto a non-empty queue:
            # none of them can change a head, so none can change the
            # outcome of detection (line 2) — ingest the run wholesale.
            j = i + 1
            while j < count and items[j][0] == key:
                j += 1
            run = [pair[1] for pair in items[i:j]]
            queue.extend(run)
            stats.offers += len(run)
            if observer is not None:
                for pending in run:
                    observer("enqueue", key, pending)
            i = j
        return found

    def _vc_less(self, u, v) -> bool:
        self.stats.comparisons += 1
        return vc_less(u, v)

    def _dequeue(self, key: Hashable) -> Interval:
        """Pop *key*'s head, keeping the comparison cache in sync with
        the exposed successor (or the queue's emptiness)."""
        queue = self.queues[key]
        pruned = queue.dequeue()
        if self._matrix is not None:
            if queue:
                head = queue.head
                self._matrix.set_head(key, head.lo, head.hi)
            else:
                self._matrix.clear_head(key)
        return pruned

    def _detect(self, updated: set) -> List[Solution]:
        start = self.stats.comparisons
        try:
            return self._detect_inner(updated)
        finally:
            if self.on_pair_tests is not None:
                delta = self.stats.comparisons - start
                if delta:
                    self.on_pair_tests(delta)

    def _detect_inner(self, updated: set) -> List[Solution]:
        found: List[Solution] = []
        queues = self.queues
        matrix = self._matrix
        while True:
            # --- lines 4–17: prune mutually incompatible heads to fixpoint
            while updated:
                new_updated: set = set()
                for a in updated:
                    queue_a = queues.get(a)
                    if not queue_a:
                        continue
                    if matrix is not None:
                        others, x_lt, y_lt = matrix.partners(a)
                        self.stats.comparisons += 2 * len(others)
                        for b, x_lt_b, b_lt_x in zip(others, x_lt, y_lt):
                            if not x_lt_b:
                                new_updated.add(b)
                            if not b_lt_x:
                                new_updated.add(a)
                        continue
                    x = queue_a.head
                    for b, queue_b in queues.items():
                        if b == a or not queue_b:
                            continue
                        y = queue_b.head
                        if not self._vc_less(x.lo, y.hi):
                            new_updated.add(b)
                        if not self._vc_less(y.lo, x.hi):
                            new_updated.add(a)
                for c in new_updated:
                    if queues[c]:
                        pruned = self._dequeue(c)
                        self.stats.pruned_incompatible += 1
                        if self.observer is not None:
                            self.observer("prune_incompat", c, pruned)
                updated = new_updated
            # --- line 18: solution iff every queue has a head
            if not all(queues.values()):
                return found
            heads = {key: q.head for key, q in queues.items()}
            solution = Solution(
                detector=self.detector_id,
                index=len(self.solutions),
                heads=heads,
            )
            self.solutions.append(solution)
            self.stats.detections += 1
            found.append(solution)
            if not self.repeated:
                self._halted = True
                return found
            # --- lines 23–33: Eq. (10) pruning for repeated detection
            removable = self._removable_heads(heads)
            assert removable, "Theorem 4 guarantees at least one removal"
            for key in removable:
                pruned = self._dequeue(key)
                self.stats.pruned_after_solution += 1
                if self.observer is not None:
                    self.observer("prune_solution", key, pruned)
            updated = removable

    def _removable_heads(self, heads: Dict[Hashable, Interval]) -> set:
        """Keys whose head satisfies Eq. (10):
        ``∀ b≠a: max(x_b) ≮ max(x_a)`` — i.e. heads whose ``max`` is
        minimal under the strict vector order among all heads.

        Both engines preserve the scalar path's short-circuit
        accounting: tests after the first dominating ``b`` were never
        performed, so they are not counted.
        """
        matrix = self._matrix
        if matrix is not None:
            removable = set()
            for a in heads:
                _, flags = matrix.dominators(a)
                tested = 0
                dominated = False
                for flag in flags:
                    tested += 1
                    if flag:
                        dominated = True
                        break
                self.stats.comparisons += tested
                if not dominated:
                    removable.add(a)
            return removable
        keys = list(heads)
        removable = set()
        for a in keys:
            hi_a = heads[a].hi
            if all(
                not self._vc_less(heads[b].hi, hi_a) for b in keys if b != a
            ):
                removable.add(a)
        return removable

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def queue_sizes(self) -> Dict[Hashable, int]:
        return {key: len(q) for key, q in self.queues.items()}

    def space_in_use(self) -> int:
        """Current storage in *vector entries* (each interval stores two
        length-``n`` timestamps) — the unit of the paper's space
        analysis (Section IV-B)."""
        total = 0
        for queue in self.queues.values():
            for interval in queue:
                total += 2 * interval.n
        return total

    def peak_queue_space(self) -> int:
        """Peak total queued intervals observed (sum of per-queue peaks,
        an upper bound on the true simultaneous peak)."""
        return sum(q.peak_size for q in self.queues.values())
