"""Simulation role for the token-based distributed detector.

Unlike the reporting detectors, the token algorithm moves *no interval
data at all* until the token visits: queues live at their owners and
the only control traffic is the token itself, routed hop-by-hop along
the spanning tree between consecutive holders.  This gives the third
point in the design space the paper's Section I sketches:

=================  =====================  ========================
algorithm          queue placement        control traffic
=================  =====================  ========================
centralized [12]   all at the sink        every interval, multi-hop
hierarchical       O(d) queues per node   aggregates, one hop
token (≈[11])      own intervals locally  one token, multi-hop
=================  =====================  ========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..intervals import Interval, IntervalQueue
from ..sim.process import MonitoredProcess
from ..topology.spanning_tree import SpanningTree
from .base import CoreStats, Solution
from .token import TokenState

__all__ = ["TokenMessage", "TokenRole"]


@dataclass(frozen=True)
class TokenMessage:
    state: TokenState


class TokenRole:
    """One process's share of the token algorithm.

    Every role sees only its own interval queue; all shared state rides
    in the token.  Exactly one role is constructed with
    ``has_token=True`` (the initiator).
    """

    def __init__(self, tree: SpanningTree, *, has_token: bool = False) -> None:
        self.tree = tree
        self._starts_with_token = has_token
        self.process: Optional[MonitoredProcess] = None
        self.queue = IntervalQueue()
        self.token: Optional[TokenState] = None
        self.stats = CoreStats()
        self.detection: Optional[Solution] = None
        self.detection_time: Optional[float] = None

    # ------------------------------------------------------------------
    def bind(self, process: MonitoredProcess) -> None:
        self.process = process
        if self._starts_with_token:
            self.token = TokenState.initial(self.tree.nodes)

    def on_start(self) -> None:
        if self.token is not None:
            self._process_token()

    def on_crash(self) -> None:
        pass  # one-shot baseline: no failure story (the paper's point)

    def on_local_interval(self, interval: Interval) -> None:
        self.queue.enqueue(interval)
        self.stats.offers += 1
        if self.token is not None and self.process.pid in self.token.needs:
            self._process_token()

    def on_control_message(self, src: int, message: object) -> None:
        if isinstance(message, TokenMessage):
            self.token = message.state
            self._process_token()

    # ------------------------------------------------------------------
    def _vc_less(self, u, v) -> bool:
        from ..clocks import vc_less

        self.stats.comparisons += 1
        return vc_less(u, v)

    def _process_token(self) -> None:
        token = self.token
        me = self.process.pid
        if me in token.needs:
            if not self.queue:
                return  # park here until a local interval completes
            candidate = self.queue.dequeue()
            token.heads[me] = candidate
            token.needs.discard(me)
            self._check_candidate(me)
            if token.heads[me] is None:
                self._process_token()  # pruned; try the next local interval
                return
        if token.complete:
            self.detection = Solution(
                detector=me, index=0, heads=dict(token.heads)
            )
            self.detection_time = self.process.sim.now
            self.stats.detections += 1
            return
        self._forward(min(token.needs))

    def _check_candidate(self, fresh: int) -> None:
        token = self.token
        x = token.heads[fresh]
        for other, y in token.heads.items():
            if other == fresh or y is None:
                continue
            if not self._vc_less(x.lo, y.hi):
                token.heads[other] = None
                token.needs.add(other)
                self.stats.pruned_incompatible += 1
            if not self._vc_less(y.lo, x.hi):
                token.heads[fresh] = None
                token.needs.add(fresh)
                self.stats.pruned_incompatible += 1
                return

    def _forward(self, dst: int) -> None:
        token, self.token = self.token, None
        me = self.process.pid
        # Route along the tree: up to the common ancestor, then down.
        up = self.tree.path_to_root(me)
        down = self.tree.path_to_root(dst)
        up_set = {node: i for i, node in enumerate(up)}
        junction = next(node for node in down if node in up_set)
        route = up[: up_set[junction] + 1] + list(
            reversed(down[: down.index(junction)])
        )
        token.hops += len(route) - 1
        self.process.send_control_routed(route, TokenMessage(token))
