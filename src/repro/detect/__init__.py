"""Predicate-detection algorithms: the hierarchical detector (paper),
the centralized repeated baseline [12], one-shot baselines [7], [8],
and offline ground-truth oracles."""

from .base import CoreStats, Solution
from .centralized import CentralizedSinkCore
from .core import RepeatedDetectionCore
from .garg_waldecker import OneShotDefinitelyCore
from .hierarchical import Emission, EmissionKind, HierarchicalNodeCore
from .offline import (
    enumerate_solution_sets,
    holds_definitely,
    lattice_definitely,
    lattice_possibly,
    replay_centralized,
)
from .possibly import PossiblyCore
from .roles_token import TokenMessage, TokenRole
from .token import TokenDefinitelyDetector, TokenState
from .roles import (
    CentralizedReporterRole,
    CentralizedSinkRole,
    DetectionRecord,
    HierarchicalRole,
    PossiblySinkRole,
)

__all__ = [
    "CentralizedReporterRole",
    "CentralizedSinkCore",
    "CentralizedSinkRole",
    "CoreStats",
    "DetectionRecord",
    "Emission",
    "EmissionKind",
    "HierarchicalNodeCore",
    "OneShotDefinitelyCore",
    "PossiblyCore",
    "PossiblySinkRole",
    "RepeatedDetectionCore",
    "Solution",
    "TokenDefinitelyDetector",
    "TokenMessage",
    "TokenRole",
    "TokenState",
    "enumerate_solution_sets",
    "holds_definitely",
    "lattice_definitely",
    "lattice_possibly",
    "replay_centralized",
]
