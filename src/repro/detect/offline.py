"""Offline ground truth for ``Definitely(Φ)``.

Three independent oracles used by the test-suite to validate the online
detectors:

1. :func:`enumerate_solution_sets` / :func:`holds_definitely` — brute
   force over all combinations of one interval per process, testing the
   overlap condition (Eq. 2) directly.  Exponential; fine for the small
   executions tests use.
2. :func:`lattice_definitely` — the Cooper–Marzullo-style global-state
   lattice walk: ``Definitely(Φ)`` holds iff *every* observation (path
   through the lattice of consistent cuts) passes through a global
   state satisfying ``Φ``; equivalently, iff the final state cannot be
   reached from the initial one while avoiding ``Φ``-states.  This
   oracle knows nothing about intervals or overlap, making it a truly
   independent check of the Garg–Waldecker characterization.

   *Semantics note.*  The interval conditions (Eq. 1–2) are stated on
   event timestamps, while the lattice evaluates Φ on the states
   *between* events.  At interval boundaries the two conventions can
   differ by one event: when ``min(y)[i] == max(x)[i]`` (the first
   event of ``y`` knows exactly the last true event of ``x``), the
   event-based ``Possibly`` condition rejects the pair although a
   consistent cut through both intervals exists.  The event-based
   conditions are therefore *sound* but very slightly conservative
   w.r.t. state semantics — the convention this whole literature
   implements.  Empirically ``Definitely`` agrees exactly on random
   executions; ``Possibly`` shows the documented one-sided slack.
   Tests assert the sound directions unconditionally.
3. :func:`replay_centralized` — the centralized repeated-detection
   algorithm [12] replayed over a recorded trace with deterministic
   delivery order; its solution sequence is the reference the
   hierarchical algorithm's root detections are compared against.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..intervals import Interval, overlap
from ..sim.trace import ExecutionTrace
from .base import Solution
from .centralized import CentralizedSinkCore

__all__ = [
    "enumerate_solution_sets",
    "holds_definitely",
    "lattice_definitely",
    "lattice_possibly",
    "replay_centralized",
]


def enumerate_solution_sets(
    intervals_by_process: Dict[int, List[Interval]]
) -> Iterator[Tuple[Interval, ...]]:
    """Yield every combination (one interval per process) satisfying the
    overlap condition — every possible ``Definitely(Φ)`` witness."""
    processes = sorted(intervals_by_process)
    pools = [intervals_by_process[p] for p in processes]
    if any(not pool for pool in pools):
        return
    for combo in product(*pools):
        if overlap(combo):
            yield combo


def holds_definitely(intervals_by_process: Dict[int, List[Interval]]) -> bool:
    """Does at least one occurrence of ``Definitely(Φ)`` exist?"""
    return next(enumerate_solution_sets(intervals_by_process), None) is not None


# ----------------------------------------------------------------------
# lattice oracle
# ----------------------------------------------------------------------
def _next_states(
    cut: Tuple[int, ...], trace: ExecutionTrace
) -> Iterator[Tuple[int, ...]]:
    """Consistent cuts reachable by executing one more event."""
    for i in range(trace.n):
        k = cut[i]
        events = trace.events[i]
        if k >= len(events):
            continue
        ts = events[k].timestamp
        # The next event of P_i is enabled iff all events it causally
        # depends on are inside the cut.
        ok = True
        for j in range(trace.n):
            if j != i and int(ts[j]) > cut[j]:
                ok = False
                break
        if ok:
            yield cut[:i] + (k + 1,) + cut[i + 1 :]


def _phi(cut: Tuple[int, ...], trace: ExecutionTrace) -> bool:
    """The conjunctive predicate in the global state after *cut*."""
    return all(trace.predicate_after(i, cut[i]) for i in range(trace.n))


def lattice_definitely(trace: ExecutionTrace) -> bool:
    """``Definitely(Φ)`` by exhaustive lattice search (tiny runs only).

    Walks the lattice of consistent cuts, staying on non-``Φ`` states;
    ``Definitely`` holds iff the final cut is unreachable this way.
    """
    initial = tuple(0 for _ in range(trace.n))
    final = tuple(len(evts) for evts in trace.events)
    if _phi(initial, trace):
        return True
    seen = {initial}
    stack = [initial]
    while stack:
        cut = stack.pop()
        if cut == final:
            return False
        for nxt in _next_states(cut, trace):
            if nxt in seen or _phi(nxt, trace):
                continue
            seen.add(nxt)
            stack.append(nxt)
    return True


def lattice_possibly(trace: ExecutionTrace) -> bool:
    """``Possibly(Φ)``: some consistent cut satisfies ``Φ``."""
    initial = tuple(0 for _ in range(trace.n))
    if _phi(initial, trace):
        return True
    seen = {initial}
    stack = [initial]
    while stack:
        cut = stack.pop()
        for nxt in _next_states(cut, trace):
            if nxt in seen:
                continue
            if _phi(nxt, trace):
                return True
            seen.add(nxt)
            stack.append(nxt)
    return False


# ----------------------------------------------------------------------
# reference replay
# ----------------------------------------------------------------------
def replay_hierarchical(trace: ExecutionTrace, tree) -> Dict[int, List]:
    """Run the hierarchical detector offline over a recorded trace.

    Every node's :class:`~repro.detect.hierarchical.HierarchicalNodeCore`
    is driven directly: local intervals are delivered in completion
    order, and every emitted report is handed to the parent immediately
    (the idealized instantaneous-channel schedule, matching
    :func:`replay_centralized`).  Returns node id → its emissions, so
    callers can inspect detections at *every* level of the hierarchy,
    not just the root.
    """
    from .hierarchical import HierarchicalNodeCore

    cores = {
        pid: HierarchicalNodeCore(
            pid, tree.children(pid), is_root=tree.parent_of(pid) is None
        )
        for pid in tree.nodes
    }
    emissions: Dict[int, List] = {pid: [] for pid in tree.nodes}

    def propagate(pid: int, emitted) -> None:
        emissions[pid].extend(emitted)
        parent = tree.parent_of(pid)
        if parent is None:
            return
        for emission in emitted:
            propagate(
                parent, cores[parent].offer_child(pid, emission.aggregate)
            )

    for interval in trace.intervals_in_completion_order():
        if interval.owner not in cores:
            continue  # process not in this (possibly post-failure) tree
        propagate(interval.owner, cores[interval.owner].offer_local(interval))
    return emissions


def replay_centralized(trace: ExecutionTrace, sink: int = 0) -> List[Solution]:
    """Run the centralized repeated-detection algorithm [12] over a
    recorded trace, delivering intervals in completion order (the
    idealized instantaneous-channel schedule).  Returns its solutions —
    the reference occurrence sequence for the execution."""
    core = CentralizedSinkCore(sink_id=sink, process_ids=range(trace.n))
    out: List[Solution] = []
    for interval in trace.intervals_in_completion_order():
        out.extend(core.offer(interval.owner, interval))
    return out
