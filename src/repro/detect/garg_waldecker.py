"""One-shot ``Definitely(Φ)`` detection — the Garg–Waldecker baseline [7].

Garg & Waldecker, "Detection of strong unstable predicates in
distributed programs", IEEE TPDS 7(12), 1996.  A centralized sink runs
the interval-based overlap test but performs *no* post-solution
pruning: as Section I of the paper observes, such algorithms "can
detect predicates only once and will hang after the initial
detection" — rerunning them naively is unsafe, and the paper's Figure 2
shows why hierarchical detection is impossible on top of them.

We reproduce that behaviour faithfully (``repeated=False`` halts the
core at the first solution) so tests and benches can demonstrate the
claims the paper's motivation rests on.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..intervals import Interval
from .base import CoreStats, Solution
from .core import RepeatedDetectionCore

__all__ = ["OneShotDefinitelyCore"]


class OneShotDefinitelyCore:
    """Centralized, single-occurrence ``Definitely(Φ)`` detector."""

    def __init__(self, sink_id: int, process_ids: Iterable[int]) -> None:
        self.sink_id = sink_id
        self._core = RepeatedDetectionCore(
            list(process_ids), detector_id=sink_id, repeated=False
        )

    @property
    def stats(self) -> CoreStats:
        return self._core.stats

    @property
    def detection(self) -> Optional[Solution]:
        """The single detected occurrence, if any."""
        return self._core.solutions[0] if self._core.solutions else None

    @property
    def halted(self) -> bool:
        """True once the first occurrence was detected; all further
        intervals are ignored ("hangs after the initial detection")."""
        return self._core.halted

    def queue_sizes(self):
        return self._core.queue_sizes()

    def space_in_use(self) -> int:
        return self._core.space_in_use()

    def peak_queue_space(self) -> int:
        return self._core.peak_queue_space()

    def offer(self, process_id: int, interval: Interval) -> List[Solution]:
        return self._core.offer(process_id, interval)

    def offer_batch(self, items) -> List[Solution]:
        """Batched :meth:`offer`; intervals past the first detection are
        dropped exactly as the scalar path drops them."""
        return self._core.offer_batch(items)
