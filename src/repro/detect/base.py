"""Shared detector types: solutions, statistics and the core interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List

from ..intervals import Interval

__all__ = ["Solution", "CoreStats"]


@dataclass(frozen=True)
class Solution:
    """One detected occurrence of ``Definitely(Φ)`` within some scope.

    Attributes
    ----------
    detector:
        Node id of the process that detected this solution.
    index:
        0-based detection counter at that node.
    heads:
        The solution set — queue key → head interval at detection time.
        At hierarchy level >= 2 some of these are aggregated intervals.
    """

    detector: int
    index: int
    heads: Dict[Hashable, Interval]

    @property
    def intervals(self) -> List[Interval]:
        return list(self.heads.values())

    def concrete_intervals(self) -> List[Interval]:
        """Unfold aggregation provenance down to concrete per-process
        intervals — the full solution set this occurrence witnesses."""
        out: List[Interval] = []
        for interval in self.heads.values():
            out.extend(interval.concrete_leaves())
        return out

    @property
    def members(self) -> frozenset:
        """Processes whose local predicates this solution covers."""
        return frozenset().union(*(x.members for x in self.heads.values()))


@dataclass
class CoreStats:
    """Operation counters for the complexity experiments (Section IV).

    ``comparisons`` counts vector-timestamp comparisons — the unit in
    which the paper states time complexity (each comparison is ``O(n)``
    component work).  ``detections`` counts solutions, ``pruned``
    head-deletions of either kind.
    """

    comparisons: int = 0
    detections: int = 0
    pruned_incompatible: int = 0
    pruned_after_solution: int = 0
    offers: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def pruned_total(self) -> int:
        return self.pruned_incompatible + self.pruned_after_solution

    def merge(self, other: "CoreStats") -> None:
        self.comparisons += other.comparisons
        self.detections += other.detections
        self.pruned_incompatible += other.pruned_incompatible
        self.pruned_after_solution += other.pruned_after_solution
        self.offers += other.offers
        for key, val in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + val
