"""The centralized repeated-detection baseline — reference [12].

Kshemkalyani, "Repeated detection of conjunctive predicates in
distributed executions", Information Processing Letters 111(9), 2011.
This is the only prior algorithm capable of repeated ``Definitely(Φ)``
detection, and the comparator throughout the paper's Section IV:

* every process sends *every* local interval to a single sink,
* the sink keeps ``n`` queues and runs the same detection/pruning
  machinery as Algorithm 1 (the paper's listing is "adapted from [12]"),
* all ``O(pn²)`` space and ``O(pn³)`` time land on the sink, and a sink
  failure kills the entire monitoring task.

When the network is multi-hop (a spanning tree of height ``h``), each
report costs as many point-to-point messages as its hop distance to the
sink — this is what Eq. (12)–(14) count and Figures 4–5 plot.
"""

from __future__ import annotations

from typing import Iterable, List

from ..intervals import Interval
from .base import CoreStats, Solution
from .core import RepeatedDetectionCore

__all__ = ["CentralizedSinkCore"]


class CentralizedSinkCore:
    """The sink of the centralized repeated-detection algorithm [12].

    Parameters
    ----------
    sink_id:
        Process id of the sink (stamped on solutions).
    process_ids:
        All monitored processes, including the sink itself — one queue
        each.
    """

    def __init__(self, sink_id: int, process_ids: Iterable[int]) -> None:
        self.sink_id = sink_id
        ids = list(process_ids)
        if sink_id not in ids:
            raise ValueError("sink must be one of the monitored processes")
        self._core = RepeatedDetectionCore(ids, detector_id=sink_id)

    @property
    def stats(self) -> CoreStats:
        return self._core.stats

    @property
    def solutions(self) -> List[Solution]:
        return self._core.solutions

    def queue_sizes(self):
        return self._core.queue_sizes()

    def space_in_use(self) -> int:
        return self._core.space_in_use()

    def peak_queue_space(self) -> int:
        return self._core.peak_queue_space()

    def add_observer(self, fn) -> None:
        """Chain a queue-lifecycle observer onto the underlying core
        (see :meth:`RepeatedDetectionCore.add_observer`) — every sink
        queue is concrete, so an epoch ledger can fold enqueue/prune
        events straight off it."""
        self._core.add_observer(fn)

    def offer(self, process_id: int, interval: Interval) -> List[Solution]:
        """Deliver one interval reported by *process_id* (in sequence
        order) and return any solutions it unlocks."""
        return self._core.offer(process_id, interval)

    def offer_batch(self, items) -> List[Solution]:
        """Deliver ``(process_id, interval)`` pairs in order through the
        batched ingestion path (byte-identical to a loop of
        :meth:`offer`; see
        :meth:`~repro.detect.core.RepeatedDetectionCore.offer_batch`)."""
        return self._core.offer_batch(items)

    def remove_process(self, process_id: int) -> List[Solution]:
        """Drop a failed process's queue.

        Note the asymmetry the paper exploits: the *sink* failing is
        fatal for this algorithm, but a leaf failing merely narrows the
        predicate — provided the sink learns about it.
        """
        return self._core.remove_queue(process_id)
