"""``Possibly(Φ)`` detection — the weak-modality baseline [8].

Garg & Waldecker, "Detection of weak unstable predicates in distributed
programs", IEEE TPDS 5(3), 1994.  Included to complete the detection
suite the paper's Section II surveys: a centralized sink tracks one
queue per process and searches for a set of intervals satisfying
Eq. (1):

    ``∀ x_i, x_j ∈ X (i≠j): max(x_i) ≮ min(x_j)``

i.e. no interval in the set wholly precedes another.  The deletion rule
is dual to the ``Definitely`` one: if ``max(x) < min(y)`` then ``x``
ends before ``y`` (and before every successor of ``y``) begins, so
``x`` can never join a solution — a solution needs a representative of
``y``'s source — and is discarded.

Like [8], the detector is one-shot: it reports the first satisfaction
and halts.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from ..clocks import vc_less
from ..intervals import Interval, IntervalQueue
from .base import CoreStats, Solution

__all__ = ["PossiblyCore"]


class PossiblyCore:
    """Centralized one-shot ``Possibly(Φ)`` detector."""

    def __init__(self, sink_id: int, process_ids: Iterable[int]) -> None:
        self.sink_id = sink_id
        self.queues: Dict[Hashable, IntervalQueue] = {
            pid: IntervalQueue() for pid in process_ids
        }
        if not self.queues:
            raise ValueError("need at least one process")
        self.stats = CoreStats()
        self.detection: Optional[Solution] = None

    @property
    def halted(self) -> bool:
        return self.detection is not None

    def _vc_less(self, u, v) -> bool:
        self.stats.comparisons += 1
        return vc_less(u, v)

    def offer(self, process_id: int, interval: Interval) -> Optional[Solution]:
        """Deliver one interval; returns the solution if this completes
        the first satisfaction of ``Possibly(Φ)``."""
        if self.halted:
            return None
        queue = self.queues[process_id]
        queue.enqueue(interval)
        self.stats.offers += 1
        if len(queue) != 1:
            return None
        return self._detect({process_id})

    def _detect(self, updated: set) -> Optional[Solution]:
        queues = self.queues
        while updated:
            new_updated: set = set()
            for a in updated:
                queue_a = queues.get(a)
                if not queue_a:
                    continue
                x = queue_a.head
                for b, queue_b in queues.items():
                    if b == a or not queue_b:
                        continue
                    y = queue_b.head
                    if self._vc_less(x.hi, y.lo):
                        new_updated.add(a)
                    if self._vc_less(y.hi, x.lo):
                        new_updated.add(b)
            for c in new_updated:
                if queues[c]:
                    queues[c].dequeue()
                    self.stats.pruned_incompatible += 1
            updated = new_updated
        if all(queues.values()):
            heads = {key: q.head for key, q in queues.items()}
            self.detection = Solution(
                detector=self.sink_id, index=0, heads=heads
            )
            self.stats.detections += 1
            return self.detection
        return None
