"""Launching a whole detection tree as a localhost cluster.

:class:`LocalCluster` builds one :class:`~repro.net.runtime.NodeRuntime`
per tree node inside a single asyncio loop — separate sockets, separate
heartbeats, separate detector state, shared wall clock and telemetry.
Sharing the :class:`~repro.net.clock.AsyncClock` (and therefore one
:class:`~repro.obs.Telemetry`) is what keeps the cross-node trace whole:
an alarm span at the root adopts report spans from children exactly as
in the simulator.

The workload is an *interval script* — per-node interval streams
captured from a reference simulator run
(:func:`~repro.net.script.simulation_script`) — so a cluster run is
directly comparable to the simulation that produced the script: same
trees, same intervals, and (by the detection core's interleaving
confluence) the same solutions.

Fault tolerance is exercised for real: :meth:`kill_node` stops a node's
role and sockets mid-run; surviving peers notice via missed socket
heartbeats, their :class:`~repro.fault.HeartbeatMonitor` reports the
suspicion, and the stock repair machinery
(:func:`repro.topology.repair.apply_repair`) rewires the tree.  The only
network-specific twist is :class:`_ClusterCoordinator`: on a wall clock
a loaded machine can stall past a heartbeat timeout, so a suspicion
against a live node is logged and forgiven rather than treated as a
configuration bug like the simulator does.

An optional admin endpoint (newline-delimited JSON over TCP) powers the
``repro-cluster status`` / ``kill-node`` commands against a running
cluster.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..detect.roles import DetectionRecord
from ..fault.coordinator import RepairCoordinator
from ..monitor.spec import HeartbeatSpec
from ..topology.spanning_tree import SpanningTree
from .clock import AsyncClock
from .codec import FrameCodec
from .runtime import NodeRuntime
from .script import IntervalScript, simulation_script
from .transport import LoopbackHub, LoopbackTransport, TcpTransport

__all__ = ["ClusterSpec", "LocalCluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape and timing of a localhost cluster."""

    nodes: int = 7
    degree: int = 2
    seed: int = 1
    transport: str = "tcp"  # "tcp" | "loopback"
    host: str = "127.0.0.1"
    #: wall-clock heartbeat timing; the default suspects a dead peer
    #: within ~2 s while tolerating multi-hundred-ms scheduler stalls
    heartbeat: HeartbeatSpec = field(
        default_factory=lambda: HeartbeatSpec(period=0.25, loss_tolerance=7)
    )
    repair_latency: float = 0.05
    include_parts: bool = True
    #: reference-workload epochs (per-node interval count driver)
    epochs: int = 4
    #: wall seconds between consecutive offers of one node's stream
    interval_spacing: float = 0.02
    #: wall seconds between cluster start and the first offer
    start_delay: float = 0.2
    #: TCP port for the admin endpoint (None disables it)
    admin_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if self.degree < 1:
            raise ValueError("tree degree must be >= 1")
        if self.transport not in ("tcp", "loopback"):
            raise ValueError(f"unknown transport {self.transport!r}")

    def tree(self) -> SpanningTree:
        """Breadth-first ``degree``-ary tree over ``nodes`` nodes."""
        parent: Dict[int, Optional[int]] = {0: None}
        for i in range(1, self.nodes):
            parent[i] = (i - 1) // self.degree if self.degree > 1 else i - 1
        return SpanningTree(0, parent)


class _ClusterCoordinator(RepairCoordinator):
    """Repair coordination adapted to wall-clock reality.

    Differences from the simulator coordinator:

    * a suspicion against a live node is *forgiven* (event
      ``false_suspicion``) instead of raising — on real machines a GC
      pause or CI stall can outlast any sane heartbeat timeout;
    * once a plan is applied, survivors drop the dead peer's transport
      link so writer tasks stop redialling a closed listener.
    """

    def __init__(self, *args, cluster: "LocalCluster", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cluster = cluster

    def report_failure(self, failed: int, reporter: int) -> None:
        if failed not in self._handled and self._is_alive(failed):
            self.sim.emit("false_suspicion", node=reporter, suspect=failed)
            return
        super().report_failure(failed, reporter)

    def _apply(self, plan) -> None:
        super()._apply(plan)
        self.cluster._disconnect(plan.failed)


class LocalCluster:
    """All nodes of one detection tree, in one process, on real (or
    loopback) transports."""

    def __init__(
        self, spec: ClusterSpec, *, script: Optional[IntervalScript] = None
    ) -> None:
        self.spec = spec
        self.tree = spec.tree()
        self.clock = AsyncClock(seed=spec.seed)
        self.script = script  # built lazily so loopback tests can inject
        self.detections: List[DetectionRecord] = []
        self.runtimes: Dict[int, NodeRuntime] = {}
        self.roles: Dict[int, object] = {}
        self.coordinator = _ClusterCoordinator(
            self.clock,
            self.tree,
            self.tree.as_graph(),
            self.roles,
            repair_latency=spec.repair_latency,
            is_alive=self.is_alive,
            cluster=self,
        )
        self._hub = LoopbackHub() if spec.transport == "loopback" else None
        self._admin_server: Optional[asyncio.AbstractServer] = None
        self._offer_handles: List[object] = []
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    @property
    def telemetry(self):
        return self.clock.telemetry

    @property
    def log(self):
        return self.clock.log

    def is_alive(self, pid: int) -> bool:
        runtime = self.runtimes.get(pid)
        return runtime is not None and runtime.alive

    def _codec_factory(self) -> FrameCodec:
        return FrameCodec(include_parts=self.spec.include_parts)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bring every node up, connect the mesh, start the workload."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        if self.script is None:
            self.script = simulation_script(
                self.tree, seed=self.spec.seed, epochs=self.spec.epochs
            )

        transports: Dict[int, object] = {}
        for pid in self.tree.nodes:
            if self._hub is not None:
                transport = LoopbackTransport(
                    pid, self._hub, self.clock, codec_factory=self._codec_factory
                )
            else:
                transport = TcpTransport(
                    pid,
                    self.clock,
                    host=self.spec.host,
                    codec_factory=self._codec_factory,
                )
            transports[pid] = transport
            self.runtimes[pid] = NodeRuntime(
                pid,
                transport,
                self.clock,
                parent=self.tree.parent_of(pid),
                children=self.tree.children(pid),
                level=self.tree.level(pid),
                heartbeat=self.spec.heartbeat,
                coordinator=self.coordinator,
                on_detection=self._on_detection,
            )
            self.roles[pid] = self.runtimes[pid].role

        for transport in transports.values():
            await transport.start()
        if self._hub is None:
            addresses = {pid: t.address for pid, t in transports.items()}
            for transport in transports.values():
                transport.set_peers(addresses)

        for runtime in self.runtimes.values():
            runtime.activate()
        self._schedule_offers()
        if self.spec.admin_port is not None:
            self._admin_server = await asyncio.start_server(
                self._handle_admin, host=self.spec.host, port=self.spec.admin_port
            )
        self.clock.emit("cluster_started", nodes=self.tree.n)

    def _schedule_offers(self) -> None:
        """Replay each node's interval stream in order, offers paced by
        ``interval_spacing`` from ``start_delay`` on."""
        for pid, stream in sorted(self.script.streams.items()):
            for j, interval in enumerate(stream):
                at = self.spec.start_delay + j * self.spec.interval_spacing
                self._offer_handles.append(
                    self.clock.schedule_at(
                        at,
                        lambda p=pid, iv=interval: self.runtimes[p].offer_local(iv),
                    )
                )

    def _on_detection(self, record: DetectionRecord) -> None:
        self.detections.append(record)

    async def run(
        self,
        *,
        duration: Optional[float] = None,
        until_detections: Optional[int] = None,
        timeout: float = 60.0,
        poll: float = 0.01,
    ) -> None:
        """Let the cluster run: for a fixed wall duration, and/or until
        a detection count is reached (bounded by *timeout*)."""
        start = self.clock.now
        if duration is not None:
            await asyncio.sleep(duration)
        if until_detections is not None:
            while len(self.detections) < until_detections:
                if self.clock.now - start > timeout:
                    raise TimeoutError(
                        f"cluster reached {len(self.detections)} detections "
                        f"(< {until_detections}) within {timeout}s"
                    )
                await asyncio.sleep(poll)

    def kill_node(self, pid: int) -> None:
        """Crash-stop *pid* right now (sockets close a beat later)."""
        runtime = self.runtimes[pid]
        if not runtime.alive:
            return
        runtime.kill()
        asyncio.get_running_loop().create_task(runtime.transport.stop())

    def _disconnect(self, failed: int) -> None:
        """Post-repair: survivors forget the dead peer's address."""
        for pid, runtime in self.runtimes.items():
            if pid != failed and runtime.alive:
                runtime.transport.drop_peer(failed)

    async def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for handle in self._offer_handles:
            handle.cancel()
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()
            self._admin_server = None
        for runtime in self.runtimes.values():
            await runtime.shutdown()
        self.clock.emit("cluster_stopped", detections=len(self.detections))

    # ------------------------------------------------------------------
    # introspection / admin
    # ------------------------------------------------------------------
    def status(self) -> dict:
        return {
            "nodes": self.tree.n,
            "alive": [pid for pid in self.tree.nodes if self.is_alive(pid)],
            "detections": len(self.detections),
            "repairs": sorted(self.coordinator.plans),
            "false_suspicions": len(self.log.of_kind("false_suspicion")),
            "uptime": round(self.clock.now, 3),
        }

    async def _handle_admin(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = None
                try:
                    request = json.loads(line)
                    response = self._admin_dispatch(request)
                except Exception as exc:  # noqa: BLE001 — report, don't die
                    response = {"ok": False, "error": repr(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if isinstance(request, dict) and request.get("cmd") == "stop":
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _admin_dispatch(self, request: dict) -> dict:
        cmd = request.get("cmd")
        if cmd == "status":
            return {"ok": True, **self.status()}
        if cmd == "kill-node":
            pid = int(request["node"])
            if pid not in self.runtimes:
                return {"ok": False, "error": f"no node {pid}"}
            self.kill_node(pid)
            return {"ok": True, "killed": pid}
        if cmd == "stop":
            asyncio.get_running_loop().create_task(self.stop())
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown cmd {cmd!r}"}
