"""Launching a whole detection tree as a localhost cluster.

:class:`LocalCluster` builds one :class:`~repro.net.runtime.NodeRuntime`
per tree node inside a single asyncio loop — separate sockets, separate
heartbeats, separate detector state, shared wall clock, and **separate
telemetry**: every node gets a :class:`~repro.net.clock.ClockScope`, the
private registry/span-tracker/event-log island a real OS process would
hold.  The whole-cluster view is *reconstructed* the way a fleet
monitor would build it — :attr:`LocalCluster.telemetry` scrapes every
island (:func:`repro.obs.cluster.scrape_local`), merges the registries
and stitches the per-node span trees back into cross-node alarm traces
(:class:`repro.obs.cluster.TelemetryAggregator`), so an alarm is still
explained down to leaf intervals on other nodes.

The workload is an *interval script* — per-node interval streams
captured from a reference simulator run
(:func:`~repro.net.script.simulation_script`) — so a cluster run is
directly comparable to the simulation that produced the script: same
trees, same intervals, and (by the detection core's interleaving
confluence) the same solutions.

Fault tolerance is exercised for real: :meth:`kill_node` stops a node's
role and sockets mid-run; surviving peers notice via missed socket
heartbeats, their :class:`~repro.fault.HeartbeatMonitor` reports the
suspicion, and the stock repair machinery
(:func:`repro.topology.repair.apply_repair`) rewires the tree.  The only
network-specific twist is :class:`_ClusterCoordinator`: on a wall clock
a loaded machine can stall past a heartbeat timeout, so a suspicion
against a live node is logged and forgiven rather than treated as a
configuration bug like the simulator does.

An optional admin endpoint (newline-delimited JSON over TCP) powers the
``repro-cluster status`` / ``kill-node`` commands against a running
cluster, plus the observability plane's scrape commands —
``telemetry`` (per-node registry dumps), ``spans`` (per-node span
tables) and ``eventlog`` (per-node + cluster event streams) — which
``repro-cluster watch`` and :class:`repro.obs.cluster.ClusterScraper`
poll.

Two more operator surfaces ride on the same machinery:

* a :class:`~repro.obs.flight.FlightRecorder` per node (plus one for
  the cluster log) when ``flight_dir`` is set — crash/repair/SLO
  events snapshot the surrounding telemetry window to JSONL for
  ``repro-cluster postmortem``;
* an :class:`~repro.monitor.spec.SLOSpec` watchdog that periodically
  checks detection-latency p99, repair durations and outbox depths and
  emits a latched ``slo_breach`` event on violation (tripping the
  flight recorder).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..detect.roles import DetectionRecord
from ..fault.coordinator import RepairCoordinator
from ..load import LoadSession, LoadSpec
from ..monitor.spec import HeartbeatSpec, SLOSpec
from ..obs.cluster import ClusterView, TelemetryAggregator, scrape_local
from ..obs.epochs import StrandingWatchdog
from ..obs.export import _jsonable
from ..obs.flight import FlightRecorder
from ..obs.profile import SamplingProfiler
from ..obs.sampling import TraceSampler
from ..topology.spanning_tree import SpanningTree
from .clock import AsyncClock, ClockScope
from .codec import CODEC_VERSION, WIRE_FORMATS, FrameCodec
from .runtime import NodeRuntime
from .script import IntervalScript, simulation_script
from .transport import LoopbackHub, LoopbackTransport, TcpTransport

__all__ = ["ClusterSpec", "LocalCluster", "REPAIR_DURATION_BUCKETS"]

#: Wall-second buckets for plan→application repair durations.
REPAIR_DURATION_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, float("inf"),
)


@dataclass(frozen=True)
class ClusterSpec:
    """Shape and timing of a localhost cluster."""

    nodes: int = 7
    degree: int = 2
    seed: int = 1
    transport: str = "tcp"  # "tcp" | "loopback"
    host: str = "127.0.0.1"
    #: wall-clock heartbeat timing; the default suspects a dead peer
    #: within ~2 s while tolerating multi-hundred-ms scheduler stalls
    heartbeat: HeartbeatSpec = field(
        default_factory=lambda: HeartbeatSpec(period=0.25, loss_tolerance=7)
    )
    repair_latency: float = 0.05
    include_parts: bool = True
    #: frame encoding — ``"binary"`` (packed, the default) or
    #: ``"json"`` (the legacy wire).  Decoding always accepts both, so
    #: mixed-wire clusters interoperate; this picks what *this*
    #: cluster's nodes emit.
    wire: str = "binary"
    #: reference-workload epochs (per-node interval count driver)
    epochs: int = 4
    #: probability an epoch is a global occurrence (a detection); the
    #: default 1.0 keeps every kill test observable, while rates < 1
    #: produce intervals that never join a solution — the workload a
    #: sampled cluster needs for head drops to actually show up
    sync_prob: float = 1.0
    #: wall seconds between consecutive offers of one node's stream
    interval_spacing: float = 0.02
    #: wall seconds between cluster start and the first offer
    start_delay: float = 0.2
    #: traffic plane (see :mod:`repro.load`): when set, offers come from
    #: a :class:`~repro.load.LoadSession` — generator → dispatch →
    #: admission — instead of the fixed-spacing script replay
    load: Optional[LoadSpec] = None
    #: TCP port for the admin endpoint (None disables it)
    admin_port: Optional[int] = None
    #: directory for flight-recorder snapshots (None disables recording)
    flight_dir: Optional[str] = None
    #: flight-recorder ring size (newest events/spans kept per recorder)
    flight_capacity: int = 256
    #: service-level thresholds the watchdog checks (None disables it)
    slo: Optional[SLOSpec] = None
    #: wall seconds between SLO watchdog checks
    slo_check_interval: float = 0.5
    #: head-sampling rate for every node's span tracker; 1.0 keeps
    #: every span (no sampler installed — trace tables byte-identical
    #: to pre-sampling clusters)
    sample_rate: float = 1.0
    #: per-node overrides of ``sample_rate`` (``{pid: rate}``) — e.g.
    #: trace a suspect node fully while the fleet samples at 10%
    node_sample_rates: Optional[Dict[int, float]] = None
    #: bounded span-ring size per node (None = unbounded)
    span_capacity: Optional[int] = None
    #: run a continuous :class:`~repro.obs.profile.SamplingProfiler`
    #: over the cluster loop (``repro-cluster profile`` scrapes it)
    profile: bool = False
    #: seconds between profiler stack samples
    profile_interval: float = 0.005

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if self.degree < 1:
            raise ValueError("tree degree must be >= 1")
        if self.transport not in ("tcp", "loopback"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.wire not in WIRE_FORMATS:
            raise ValueError(f"wire must be one of {WIRE_FORMATS}, got {self.wire!r}")
        if self.flight_capacity < 1:
            raise ValueError("flight_capacity must be >= 1")
        if self.slo_check_interval <= 0:
            raise ValueError("slo_check_interval must be positive")
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if not 0.0 <= self.sync_prob <= 1.0:
            raise ValueError("sync_prob must be in [0, 1]")
        for pid, rate in (self.node_sample_rates or {}).items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"node_sample_rates[{pid}] must be in [0, 1], got {rate}"
                )
        if self.span_capacity is not None and self.span_capacity < 1:
            raise ValueError("span_capacity must be >= 1")
        if self.profile_interval <= 0:
            raise ValueError("profile_interval must be positive")

    def tree(self) -> SpanningTree:
        """Breadth-first ``degree``-ary tree over ``nodes`` nodes."""
        parent: Dict[int, Optional[int]] = {0: None}
        for i in range(1, self.nodes):
            parent[i] = (i - 1) // self.degree if self.degree > 1 else i - 1
        return SpanningTree(0, parent)


class _ClusterCoordinator(RepairCoordinator):
    """Repair coordination adapted to wall-clock reality.

    Differences from the simulator coordinator:

    * a suspicion against a live node is *forgiven* (event
      ``false_suspicion``) instead of raising — on real machines a GC
      pause or CI stall can outlast any sane heartbeat timeout;
    * once a plan is applied, survivors drop the dead peer's transport
      link so writer tasks stop redialling a closed listener;
    * repair milestones feed the observability plane: each plan's
      plan→application wall duration lands in the cluster registry's
      ``repro_cluster_repair_duration_seconds`` histogram, and a
      ``repair_applied`` event (paired with ``repair_planned`` by the
      postmortem tooling and watched by the SLO watchdog) is emitted.
    """

    def __init__(self, *args, cluster: "LocalCluster", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cluster = cluster
        self._planned_at: Dict[int, float] = {}
        self.durations: Dict[int, float] = {}

    def report_failure(self, failed: int, reporter: int) -> None:
        if failed not in self._handled and self._is_alive(failed):
            self.sim.emit("false_suspicion", node=reporter, suspect=failed)
            return
        if failed not in self._planned_at:
            self._planned_at[failed] = self.sim.now
        super().report_failure(failed, reporter)

    def _apply(self, plan) -> None:
        super()._apply(plan)
        self.cluster._disconnect(plan.failed)
        duration = self.sim.now - self._planned_at.get(plan.failed, self.sim.now)
        self.durations[plan.failed] = duration
        self.sim.telemetry.registry.histogram(
            "repro_cluster_repair_duration_seconds",
            "Wall seconds from a repair plan to its application.",
            REPAIR_DURATION_BUCKETS,
        ).observe(duration)
        self.sim.emit(
            "repair_applied",
            node=plan.failed,
            failed=plan.failed,
            duration=round(duration, 6),
        )


class LocalCluster:
    """All nodes of one detection tree, in one process, on real (or
    loopback) transports."""

    def __init__(
        self, spec: ClusterSpec, *, script: Optional[IntervalScript] = None
    ) -> None:
        self.spec = spec
        self.tree = spec.tree()
        self.clock = AsyncClock(seed=spec.seed)
        self.script = script  # built lazily so loopback tests can inject
        self.detections: List[DetectionRecord] = []
        self.runtimes: Dict[int, NodeRuntime] = {}
        self.roles: Dict[int, object] = {}
        self.coordinator = _ClusterCoordinator(
            self.clock,
            self.tree,
            self.tree.as_graph(),
            self.roles,
            repair_latency=spec.repair_latency,
            is_alive=self.is_alive,
            cluster=self,
        )
        self._hub = LoopbackHub() if spec.transport == "loopback" else None
        self._admin_server: Optional[asyncio.AbstractServer] = None
        self._offer_handles: List[object] = []
        self._started = False
        self._stopped = False
        self.scopes: Dict[int, ClockScope] = {}
        self.flight_recorders: Dict[str, FlightRecorder] = {}
        self._slo_handle: Optional[object] = None
        self._slo_latched: set = set()
        self._stranding_watchdog: Optional[StrandingWatchdog] = None
        self.profiler: Optional[SamplingProfiler] = None
        #: the traffic plane, when ``spec.load`` asked for one
        self.load_session: Optional[LoadSession] = None
        self._congestion_unsubs: List = []

    def _sampler_for(self, pid: int) -> Optional[TraceSampler]:
        """The node's head sampler — ``None`` at rate 1.0 (keep all).
        All samplers share the cluster seed, so every node reaches the
        same decision for the same artifact key (what makes sampled
        cross-node traces stitchable)."""
        rates = self.spec.node_sample_rates or {}
        rate = rates.get(pid, self.spec.sample_rate)
        if rate >= 1.0:
            return None
        return TraceSampler(rate, seed=self.spec.seed)

    # ------------------------------------------------------------------
    @property
    def telemetry(self):
        """The *aggregated* cluster telemetry: every node's island
        scraped, merged and trace-stitched (see :meth:`view`).  Shaped
        like an ordinary :class:`~repro.obs.Telemetry`, so exporters and
        summaries read it unchanged."""
        return self.view().telemetry

    def view(self) -> ClusterView:
        """Scrape + fold the cluster's current observability state."""
        return TelemetryAggregator().fold(scrape_local(self))

    @property
    def log(self):
        """The whole-cluster event log (scoped clocks forward every
        node's events here)."""
        return self.clock.log

    def is_alive(self, pid: int) -> bool:
        runtime = self.runtimes.get(pid)
        return runtime is not None and runtime.alive

    def _codec_factory(self) -> FrameCodec:
        return FrameCodec(
            wire=self.spec.wire, include_parts=self.spec.include_parts
        )

    def wire_summary(self) -> dict:
        """What actually moved on the wire: the configured format, the
        per-peer negotiated hellos (TCP only — loopback has no
        handshake) and the bytes-by-frame-type breakdown aggregated
        from every node's ``repro_net_bytes_total``."""
        negotiated: Dict[str, dict] = {}
        for runtime in self.runtimes.values():
            for peer, hello in getattr(
                runtime.transport, "negotiated", {}
            ).items():
                negotiated[str(peer)] = {
                    "wire": hello["wire"],
                    "codec": hello["codec"],
                }
        bytes_by_type: Dict[str, int] = {}
        for scope in self.scopes.values():
            vec = scope.telemetry.registry.get("repro_net_bytes_total")
            for key, value in (dict(vec) if vec else {}).items():
                kind = key[1] if isinstance(key, tuple) else str(key)
                bytes_by_type[kind] = bytes_by_type.get(kind, 0) + int(value)
        return {
            "wire": self.spec.wire,
            "codec_version": CODEC_VERSION,
            "negotiated": dict(sorted(negotiated.items())),
            "bytes_by_type": dict(sorted(bytes_by_type.items())),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bring every node up, connect the mesh, start the workload."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        if self.script is None:
            self.script = simulation_script(
                self.tree,
                seed=self.spec.seed,
                epochs=self.spec.epochs,
                sync_prob=self.spec.sync_prob,
            )

        transports: Dict[int, object] = {}
        for pid in self.tree.nodes:
            # Each node records into its own telemetry island — the
            # deployment-realistic shape the observability plane scrapes.
            scope = self.clock.scope(
                pid,
                sampler=self._sampler_for(pid),
                span_capacity=self.spec.span_capacity,
            )
            self.scopes[pid] = scope
            if self._hub is not None:
                transport = LoopbackTransport(
                    pid, self._hub, scope, codec_factory=self._codec_factory
                )
            else:
                transport = TcpTransport(
                    pid,
                    scope,
                    host=self.spec.host,
                    codec_factory=self._codec_factory,
                )
            transports[pid] = transport
            self.runtimes[pid] = NodeRuntime(
                pid,
                transport,
                scope,
                parent=self.tree.parent_of(pid),
                children=self.tree.children(pid),
                level=self.tree.level(pid),
                heartbeat=self.spec.heartbeat,
                coordinator=self.coordinator,
                on_detection=self._on_detection,
            )
            self.roles[pid] = self.runtimes[pid].role

        for transport in transports.values():
            await transport.start()
        if self._hub is None:
            addresses = {pid: t.address for pid, t in transports.items()}
            for transport in transports.values():
                transport.set_peers(addresses)

        if self.spec.profile and SamplingProfiler.available():
            # One profiler covers the whole cluster: every node shares
            # this asyncio loop, so one stack sampler sees them all.
            self.profiler = SamplingProfiler(self.spec.profile_interval)
            self.profiler.start()
            for runtime in self.runtimes.values():
                runtime.profiler = self.profiler

        for runtime in self.runtimes.values():
            runtime.activate()
        if self.spec.load is not None:
            self._start_load()
        else:
            self._schedule_offers()
        if self.spec.admin_port is not None:
            self._admin_server = await asyncio.start_server(
                self._handle_admin, host=self.spec.host, port=self.spec.admin_port
            )
        if self.spec.flight_dir is not None:
            self._start_flight_recorders()
        if self.spec.slo is not None and self.spec.slo.enabled:
            self._slo_handle = self.clock.schedule(
                self.spec.slo_check_interval, self._check_slo
            )
        self.clock.emit("cluster_started", nodes=self.tree.n)

    def _start_flight_recorders(self) -> None:
        """One recorder per node island plus one on the cluster log, so
        a node's dying telemetry and the cluster-wide storyline are both
        persisted around crash/repair/SLO events."""
        now = lambda: self.clock.now  # noqa: E731 — recorder clock stamp
        for pid, scope in sorted(self.scopes.items()):
            self.flight_recorders[f"node-{pid}"] = FlightRecorder(
                scope.log,
                scope.telemetry.spans,
                self.spec.flight_dir,
                source=f"node-{pid}",
                capacity=self.spec.flight_capacity,
                now=now,
            )
        self.flight_recorders["cluster"] = FlightRecorder(
            self.clock.log,
            None,
            self.spec.flight_dir,
            source="cluster",
            capacity=self.spec.flight_capacity,
            now=now,
        )

    def _schedule_offers(self) -> None:
        """Replay each node's interval stream in order, offers paced by
        ``interval_spacing`` from ``start_delay`` on."""
        for pid, stream in sorted(self.script.streams.items()):
            for j, interval in enumerate(stream):
                at = self.spec.start_delay + j * self.spec.interval_spacing
                self._offer_handles.append(
                    self.clock.schedule_at(
                        at,
                        lambda p=pid, iv=interval: self.runtimes[p].offer_local(iv),
                    )
                )

    # ------------------------------------------------------------------
    # traffic plane
    # ------------------------------------------------------------------
    def _start_load(self) -> None:
        """Stand up the :class:`~repro.load.LoadSession` in place of the
        fixed-spacing replay: offers route through dispatch + admission
        into ``offer_local``, completions come back via
        :meth:`_on_detection`, and the transports' congestion edges feed
        the admission gate through the cluster log."""
        self.load_session = LoadSession(
            self.clock,
            self.spec.load,
            self.script.streams,
            lambda pid, interval: self.runtimes[pid].offer_local(interval),
            registry=self.clock.telemetry.registry,
            alive=self.is_alive,
            congestion_probe=self._uplink_congested,
        )
        # Epoch plumbing: every runtime resolves admitted keys to epoch
        # ids for its report sidecars, and every node core's queue
        # lifecycle (enqueue / prune) feeds the ledger's queued→matched
        # transitions — concrete local intervals only, so child
        # aggregates at internal nodes never collide.
        for pid, runtime in self.runtimes.items():
            runtime.epoch_lookup = self.load_session.epoch_of
            runtime.role.add_core_observer(
                self.load_session.epochs.core_observer(self.clock, node=pid)
            )
        if self.spec.slo is not None and self.spec.slo.stranded_epoch_rate is not None:
            self._stranding_watchdog = StrandingWatchdog(
                self.load_session.epochs, self.spec.slo.stranded_epoch_rate
            )
        # ClockScope.emit forwards every node's events to the cluster
        # log, so one subscription sees all transports' watermark edges.
        self._congestion_unsubs = [
            self.clock.log.subscribe(
                "net_congested", lambda r: self._note_congestion(r, True)
            ),
            self.clock.log.subscribe(
                "net_uncongested", lambda r: self._note_congestion(r, False)
            ),
        ]
        self.load_session.start()

    def _uplink_congested(self, pid: int) -> bool:
        """Admission's snapshot probe: does *pid* currently hold any
        peer link above its high watermark?"""
        runtime = self.runtimes.get(pid)
        if runtime is None:
            return False
        peers = getattr(runtime.transport, "congested_peers", None)
        return bool(peers()) if peers is not None else False

    def _note_congestion(self, record, congested: bool) -> None:
        if self.load_session is None or record.node is None:
            return
        # A node with several peer links only leaves the congested set
        # once the *last* backed-up link drains below low water.
        if not congested and self._uplink_congested(record.node):
            return
        self.load_session.admission.note_congestion(record.node, congested)

    def load_summary(self) -> Optional[dict]:
        """The run's traffic accounting (``None`` without a load spec):
        offered/admitted/shed/deferred counts plus sojourn percentiles —
        the summary's ``load`` block, next to ``wire``."""
        if self.load_session is None:
            return None
        return self.load_session.summary()

    def _on_detection(self, record: DetectionRecord) -> None:
        self.detections.append(record)
        if self.load_session is not None:
            self.load_session.notify_detection(record)

    async def run(
        self,
        *,
        duration: Optional[float] = None,
        until_detections: Optional[int] = None,
        until_load_drained: bool = False,
        timeout: float = 60.0,
        poll: float = 0.01,
    ) -> None:
        """Let the cluster run: for a fixed wall duration, until a
        detection count is reached, and/or until the load session has
        issued and resolved every offer (each bounded by *timeout*)."""
        start = self.clock.now
        if duration is not None:
            await asyncio.sleep(duration)
        if until_detections is not None:
            while len(self.detections) < until_detections:
                if self.clock.now - start > timeout:
                    raise TimeoutError(
                        f"cluster reached {len(self.detections)} detections "
                        f"(< {until_detections}) within {timeout}s"
                    )
                await asyncio.sleep(poll)
        if until_load_drained:
            if self.load_session is None:
                raise RuntimeError("run(until_load_drained=) needs spec.load")
            while not self.load_session.done:
                if self.clock.now - start > timeout:
                    counts = self.load_session.counts
                    raise TimeoutError(
                        f"load session not drained within {timeout}s "
                        f"(offered={counts['offered']}, "
                        f"outstanding={self.load_session.outstanding})"
                    )
                await asyncio.sleep(poll)

    def kill_node(self, pid: int) -> None:
        """Crash-stop *pid* right now (sockets close a beat later)."""
        runtime = self.runtimes[pid]
        if not runtime.alive:
            return
        runtime.kill()
        asyncio.get_running_loop().create_task(runtime.transport.stop())

    def _disconnect(self, failed: int) -> None:
        """Post-repair: survivors forget the dead peer's address."""
        for pid, runtime in self.runtimes.items():
            if pid != failed and runtime.alive:
                runtime.transport.drop_peer(failed)

    async def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self.load_session is not None:
            self.load_session.stop()
        if self._stranding_watchdog is not None:
            # Strandings often resolve exactly at drain (the pending
            # sweep reaping a shed-broken epoch's survivors) — after
            # the last periodic check ran. One final look, while the
            # flight recorders are still open to snapshot the breach.
            breach = self._stranding_watchdog.check()
            if breach is not None:
                self._breach(
                    "stranded_epoch_rate", breach["value"], breach["threshold"]
                )
        for unsubscribe in self._congestion_unsubs:
            unsubscribe()
        self._congestion_unsubs = []
        for handle in self._offer_handles:
            handle.cancel()
        if self._slo_handle is not None:
            self._slo_handle.cancel()
            self._slo_handle = None
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()
            self._admin_server = None
        if self.profiler is not None:
            self.profiler.stop()
        for runtime in self.runtimes.values():
            await runtime.shutdown()
        self.clock.emit("cluster_stopped", detections=len(self.detections))
        for recorder in self.flight_recorders.values():
            recorder.snapshot("shutdown")
            recorder.close()

    # ------------------------------------------------------------------
    # SLO watchdog
    # ------------------------------------------------------------------
    def _breach(self, slo: str, value: float, threshold, node=None) -> None:
        """Emit one latched ``slo_breach`` per (check, node) pair — the
        flight recorder snapshots it; repeats would only spam."""
        key = (slo, node)
        if key in self._slo_latched:
            return
        self._slo_latched.add(key)
        self.clock.emit(
            "slo_breach",
            node=node,
            slo=slo,
            value=round(float(value), 6),
            threshold=threshold,
        )

    def _check_slo(self) -> None:
        if self._stopped:
            return
        slo = self.spec.slo
        if slo.detection_latency_p99 is not None:
            for pid, scope in self.scopes.items():
                histogram = scope.telemetry.registry.get("repro_detection_latency")
                if histogram is None or not histogram.count:
                    continue
                p99 = histogram.percentile(99.0)
                if p99 is not None and p99 > slo.detection_latency_p99:
                    self._breach(
                        "detection_latency_p99",
                        p99,
                        slo.detection_latency_p99,
                        node=pid,
                    )
        if slo.outbox_depth is not None:
            for pid, scope in self.scopes.items():
                vec = scope.telemetry.registry.get("repro_net_outbox_depth")
                depth = max(vec.values(), default=0) if vec else 0
                if depth > slo.outbox_depth:
                    self._breach("outbox_depth", depth, slo.outbox_depth, node=pid)
        if slo.repair_duration is not None:
            for failed, duration in self.coordinator.durations.items():
                if duration > slo.repair_duration:
                    self._breach(
                        "repair_duration", duration, slo.repair_duration, node=failed
                    )
        if self._stranding_watchdog is not None:
            breach = self._stranding_watchdog.check()
            if breach is not None:
                self._breach(
                    "stranded_epoch_rate", breach["value"], breach["threshold"]
                )
        self._slo_handle = self.clock.schedule(
            self.spec.slo_check_interval, self._check_slo
        )

    # ------------------------------------------------------------------
    # introspection / admin
    # ------------------------------------------------------------------
    def status(self) -> dict:
        return {
            "nodes": self.tree.n,
            "alive": [pid for pid in self.tree.nodes if self.is_alive(pid)],
            "levels": {str(pid): self.tree.level(pid) for pid in self.tree.nodes},
            "detections": len(self.detections),
            "repairs": sorted(self.coordinator.plans),
            "false_suspicions": len(self.log.of_kind("false_suspicion")),
            "uptime": round(self.clock.now, 3),
        }

    @staticmethod
    def _event_dicts(log) -> List[dict]:
        return [
            {
                "time": record.time,
                "kind": record.kind,
                "node": record.node,
                "fields": _jsonable(record.as_dict()),
            }
            for record in list(log.records)
        ]

    def _telemetry_payload(self) -> dict:
        return {
            "nodes": {
                str(pid): scope.telemetry.registry.to_dict()
                for pid, scope in sorted(self.scopes.items())
            },
            "cluster": self.clock.telemetry.registry.to_dict(),
        }

    def _spans_payload(self) -> dict:
        return {
            "nodes": {
                str(pid): scope.telemetry.spans.to_dicts()
                for pid, scope in sorted(self.scopes.items())
            }
        }

    def _eventlog_payload(self) -> dict:
        return {
            "nodes": {
                str(pid): self._event_dicts(scope.log)
                for pid, scope in sorted(self.scopes.items())
            },
            "cluster": self._event_dicts(self.clock.log),
        }

    def _epochs_payload(self) -> Optional[dict]:
        """The epoch ledger's wire form (``None`` without a load
        session) — summary, stranding detail and watchdog state."""
        if self.load_session is None:
            return None
        payload = self.load_session.epochs.to_dict()
        if self._stranding_watchdog is not None:
            payload["watchdog"] = {
                "threshold": self._stranding_watchdog.threshold,
                "latched": self._stranding_watchdog.latched,
            }
        return payload

    def scrape_payload(self) -> dict:
        """Everything the observability plane needs, in the JSON wire
        forms the admin endpoint serves — :func:`repro.obs.cluster.scrape_local`
        and :class:`~repro.obs.cluster.ClusterScraper` parse the same
        shapes, so the in-process and over-the-wire paths cannot drift."""
        return {
            "status": self.status(),
            "telemetry": self._telemetry_payload(),
            "spans": self._spans_payload(),
            "eventlog": self._eventlog_payload(),
            "epochs": self._epochs_payload(),
        }

    async def _handle_admin(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = None
                try:
                    request = json.loads(line)
                    response = self._admin_dispatch(request)
                except Exception as exc:  # noqa: BLE001 — report, don't die
                    response = {"ok": False, "error": repr(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if isinstance(request, dict) and request.get("cmd") == "stop":
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _admin_dispatch(self, request: dict) -> dict:
        cmd = request.get("cmd")
        if cmd == "status":
            return {"ok": True, **self.status()}
        if cmd == "telemetry":
            return {"ok": True, **self._telemetry_payload()}
        if cmd == "spans":
            return {"ok": True, **self._spans_payload()}
        if cmd == "eventlog":
            return {"ok": True, **self._eventlog_payload()}
        if cmd == "epochs":
            return {"ok": True, "epochs": self._epochs_payload()}
        if cmd == "profile":
            return {
                "ok": True,
                "available": SamplingProfiler.available(),
                "profile": (
                    self.profiler.to_dict() if self.profiler is not None else None
                ),
            }
        if cmd == "kill-node":
            pid = int(request["node"])
            if pid not in self.runtimes:
                return {"ok": False, "error": f"no node {pid}"}
            self.kill_node(pid)
            return {"ok": True, "killed": pid}
        if cmd == "stop":
            asyncio.get_running_loop().create_task(self.stop())
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown cmd {cmd!r}"}
