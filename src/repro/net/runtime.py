"""One tree node of the socket runtime.

A :class:`NodeRuntime` is the network-world analogue of a
:class:`~repro.sim.process.MonitoredProcess`, reduced to what the
detection layer actually requires of its host: ``pid``, a ``sim``-shaped
clock handle, and ``send_control``.  It binds an **unmodified**
:class:`~repro.detect.HierarchicalRole` — queues, aggregation,
heartbeats, repair hooks and all — and plugs its control plane into a
:class:`~repro.net.transport.Transport` instead of the simulated
network.

Local intervals arrive through :meth:`offer_local` (driven by a
workload script or a live predicate source) and get the same span +
counter bookkeeping the simulator's process layer does, so the
interval → report → alarm trace reads identically in both worlds.

At-least-once delivery is absorbed here: after a TCP reconnect the
transport may replay the in-flight report, and the role's
:class:`~repro.intervals.queues.ReorderBuffer` rejects it by
``transport_seq`` with a ``ValueError``.  That is a correct, expected
outcome on this plane, so the runtime catches it, counts it under
``repro_net_stale_frames_total`` and moves on — the role itself stays
byte-identical to the simulated one.

Cross-node trace stitching
--------------------------
When each node owns a private span tracker (a
:class:`~repro.net.clock.ClockScope` — the realistic deployment shape),
the causal chain interval → report → alarm breaks at every TCP hop: the
sender's ``report`` span lives in the sender's tracker, invisible to
the receiver.  The runtime repairs this at the transport boundary:

* outbound ``IntervalReport`` frames carry the sender's report-span id
  in the frame's ``_meta`` sidecar (``{"span": [node, sid]}``);
* on receipt, if the aggregate's span key is unknown locally, a ``hop``
  placeholder span is recorded under that key, holding the remote
  ``(node, sid)`` coordinates.  The receiving role's ordinary adoption
  then parents the *hop* span, and the cluster aggregator
  (:mod:`repro.obs.cluster`) later re-parents the sender's report span
  beneath the hop — reconnecting the trace across process boundaries.

With a shared tracker the key is already registered, so no hop spans
appear and behavior is byte-identical to the pre-scope runtime.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..detect.roles import DetectionRecord, HierarchicalRole
from ..intervals import Interval
from ..obs.spans import interval_key
from ..sim.messages import IntervalReport
from .transport import Transport

__all__ = ["NodeRuntime"]


class NodeRuntime:
    """Host one :class:`HierarchicalRole` on a transport.

    Parameters mirror the role's constructor; ``heartbeat`` accepts the
    same ``(period, timeout)`` tuple / :class:`~repro.monitor.spec.HeartbeatSpec`
    the simulator path takes, but here the periods are **wall seconds**.
    """

    def __init__(
        self,
        node_id: int,
        transport: Transport,
        clock,
        *,
        parent: Optional[int],
        children: Sequence[int],
        level: Optional[int] = None,
        heartbeat=None,
        coordinator=None,
        on_detection: Optional[Callable[[DetectionRecord], None]] = None,
        on_subtree_solution=None,
    ) -> None:
        self.pid = node_id
        self.sim = clock  # the role-facing name for the clock handle
        self.transport = transport
        self.alive = True
        #: Optional :class:`~repro.obs.profile.SamplingProfiler` the
        #: cluster attaches when launched with profiling enabled; the
        #: ``profile`` admin command reads it back.
        self.profiler = None
        #: Optional ``key -> epoch`` resolver the cluster attaches when
        #: a load session is active (``LoadSession.epoch_of``); outbound
        #: report sidecars then carry the epoch ids of the concrete
        #: intervals they cover, next to the span coordinates.
        self.epoch_lookup = None
        self._count_interval = clock.telemetry.registry.counter_handle(
            "repro_intervals_total",
            "Local intervals produced, per node.",
            ("node",),
            key=node_id,
        )
        # Folded in batches from the span queue (``None`` = record entry).
        clock.telemetry.spans.on_flush(
            node_id,
            lambda counts, _inc=self._count_interval: (
                counts.get(None) and _inc(counts[None])
            ),
        )
        self._count_stale = clock.telemetry.registry.counter_handle(
            "repro_net_stale_frames_total",
            "Redelivered (stale/duplicate) frames rejected by reorder "
            "buffers after reconnects.",
            ("node",),
            key=node_id,
        )
        self.role = HierarchicalRole(
            parent,
            children,
            heartbeat=heartbeat,
            coordinator=coordinator,
            on_detection=on_detection,
            on_subtree_solution=on_subtree_solution,
            level=level,
        )
        self.role.bind(self)
        transport.set_receiver(self._on_message)

    # ------------------------------------------------------------------
    # the MonitoredProcess surface the role needs
    # ------------------------------------------------------------------
    def send_control(self, dst: int, message: object) -> None:
        if not self.alive:
            return
        self.transport.send(dst, message, self._span_meta(message))

    def _span_meta(self, message: object) -> Optional[dict]:
        """Frame sidecar for trace stitching: the local span coordinates
        of an outbound report's aggregate (see module docstring), plus
        the sender's head-sampling decision for that artifact so the
        receiving hop honors it (decoders ignore keys they don't know —
        the sidecar is the protocol's forward-compatible slot)."""
        if not isinstance(message, IntervalReport):
            return None
        spans = self.sim.telemetry.spans
        key = interval_key(message.interval)
        span = spans.get(key)
        if span is None:
            return None
        meta = {
            "span": [self.pid, span.sid],
            "sampled": spans.head_decision(key),
        }
        epochs = self._meta_epochs(message.interval)
        if epochs is not None:
            meta["epochs"] = epochs
        return meta

    #: Distinct epoch ids carried per report sidecar — a report covers
    #: at most ``max_outstanding`` in-flight offers, but the sidecar is
    #: bounded regardless so a pathological aggregate cannot bloat the
    #: frame toward the codec's ``max_meta`` ceiling.
    META_EPOCH_LIMIT = 8

    def _meta_epochs(self, interval) -> Optional[list]:
        """Epoch ids of the concrete intervals an outbound aggregate
        covers (sorted, bounded), or ``None`` when no load session is
        attached / none of the leaves map to an admitted offer."""
        lookup = self.epoch_lookup
        if lookup is None:
            return None
        found = set()
        for leaf in interval.concrete_leaves():
            epoch = lookup((leaf.owner, leaf.seq))
            if epoch is not None:
                found.add(epoch)
        if not found:
            return None
        return sorted(found)[: self.META_EPOCH_LIMIT]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Start the role (arms heartbeats).  Call once the transport is
        up and the peer map installed."""
        self.role.on_start()

    def kill(self, *, reason: str = "crash") -> None:
        """Crash-stop this node: stop producing, sending and receiving.
        The transport is torn down separately (:meth:`shutdown`) so a
        ``kill-node`` admin command stays synchronous.

        ``reason`` is the emitted event kind — ``crash`` for a real
        crash-stop (trips flight recorders), ``node_stopped`` for the
        graceful-teardown path, so a clean shutdown never reads as a
        fleet-wide crash in postmortems."""
        if not self.alive:
            return
        self.alive = False
        self.role.on_crash()
        self.sim.emit(reason, node=self.pid)

    async def shutdown(self) -> None:
        """Graceful teardown: stop the node, then close its sockets."""
        self.kill(reason="node_stopped")
        await self.transport.stop()

    # ------------------------------------------------------------------
    # local interval ingestion
    # ------------------------------------------------------------------
    def offer_local(self, interval: Interval, opened_at: Optional[float] = None) -> None:
        """Feed one locally produced interval to the detector, with the
        same span/counter bookkeeping the simulator's process layer
        performs at interval close."""
        if not self.alive:
            return
        now = self.sim.now
        self.sim.telemetry.spans.record_interval(
            interval,
            opened_at if opened_at is not None else now,
            now,
            self.pid,
        )
        self.role.on_local_interval(interval)

    # ------------------------------------------------------------------
    # inbound dispatch
    # ------------------------------------------------------------------
    def _on_message(self, src: int, message: object, meta: Optional[dict] = None) -> None:
        if not self.alive:
            return
        if meta is not None:
            self._record_hop(src, message, meta)
        try:
            self.role.on_control_message(src, message)
        except ValueError as exc:
            # Reorder buffers reject replayed transport_seqs after a
            # reconnect — that's the at-least-once tax, not a fault.
            self._count_stale()
            self.sim.emit(
                "net_stale_frame", node=self.pid, src=src, error=str(exc)
            )

    def _record_hop(self, src: int, message: object, meta: dict) -> None:
        """Register the received aggregate under its span key as a
        ``hop`` placeholder carrying the sender's span coordinates.

        No-op when the key is already known — either the tracker is
        shared (the sender's report span is right there) or this is an
        at-least-once redelivery of a frame we already hopped."""
        remote = meta.get("span")
        if not (isinstance(message, IntervalReport) and isinstance(remote, list)):
            return
        spans = self.sim.telemetry.spans
        key = interval_key(message.interval)
        if spans.get(key) is not None:
            return
        now = self.sim.now
        sampled = meta.get("sampled")
        attrs = {}
        epochs = meta.get("epochs")
        if isinstance(epochs, list) and epochs:
            # The sender's epoch ids stick to the hop span, so stitched
            # cross-node traces can name the epoch(s) a report carried —
            # the ledger's stranding rows become explainable hop by hop.
            attrs["epochs"] = [int(e) for e in epochs]
        spans.record(
            "hop",
            now,
            now,
            node=self.pid,
            key=key,
            sampled=None if sampled is None else bool(sampled),
            src=src,
            remote_node=int(remote[0]),
            remote_sid=int(remote[1]),
            seq=message.interval.seq,
            **attrs,
        )
