"""The wire protocol: versioned binary frames with a JSON escape hatch
and per-channel timestamp compression.

Binary frame layout (``wire="binary"``, one frame per control message)::

     0        1        2        3      4..6        7
    +--------+--------+--------+----------------+------------------+
    | 0xB1   | tag    | flags  | body length    | packed body      |
    | magic/ | msg    | bit 0: | 4 bytes,       | (+ _meta sidecar |
    | version| type   | _meta  | big-endian     |  when flags&1)   |
    +--------+--------+--------+----------------+------------------+

The first byte doubles as magic and version: ``0xB1`` is binary
protocol v1.  Because legacy JSON frames start with a 4-byte big-endian
body length — and body lengths are bounded by ``max_frame``, far below
2**31 — a legacy frame's first byte never has the high bit set.  The
decoder uses exactly that: high bit set means a binary header (any
value other than ``0xB1`` is an unsupported version and poisons the
stream); high bit clear means legacy JSON framing::

    +-------------------+----------------------------------------+
    | 4 bytes, big-end. | UTF-8 JSON body, ``length`` bytes      |
    | unsigned length   | (repro.sim.serialize.message_to_dict)  |
    +-------------------+----------------------------------------+

Each frame is therefore self-describing, so a decoder needs no
configuration: json→binary and binary→json peers interoperate frame by
frame, and the ``wire=`` knob governs *encoding* only.

Type tags (see :mod:`repro.sim.wirepack` for body layouts):

====  ==================  =============================================
tag   body                notes
====  ==================  =============================================
0     JSON escape hatch   UTF-8 JSON object; message types the packer
                          does not know keep working on a binary wire
1     IntervalReport      varint ids/seq + scheme-tagged bounds
2     Heartbeat           svarint sender
3     AppMessage          JSON payload + svarint piggyback vector
4     AttachRequest       svarint child + svarint member list
5     AttachAccept        svarint parent
6     DetachNotice        svarint child
7     __ack__             uvarint cumulative frame count
====  ==================  =============================================

Meta frames (``type`` starts with ``__``) stay plain dicts consumed by
the transport before messages reach a role.  The ``__hello__``
handshake is *always* sent in legacy JSON framing — it is the
negotiation vehicle (it carries the sender's ``wire`` and ``codec``
version), so it must be readable by any peer regardless of wire
format.  Acks are hot (one per read batch) and go packed on a binary
wire.

Timestamp compression
---------------------
``IntervalReport`` bodies dominate wire volume, and their cost is the
two length-``n`` vector timestamps — the O(n) factor of the paper's
Section IV accounting.  A codec instance therefore carries per-channel
reference state: for each of ``lo``/``hi`` it remembers the previous
timestamp sent (or received) on this channel and lets
:func:`repro.clocks.encoding.best_encoding` pick the cheapest of
raw / sparse / differential for the next one.  The chosen scheme is
tagged on the wire — a one-byte scheme tag followed by packed varint
pairs on the binary path, a ``{"e": "sparse", "p": [[i, v], …]}``
envelope on the JSON path — so the decoder, whose reference state
advances in lockstep frame by frame, inverts it exactly.

Because the references advance per frame, a codec pair is only coherent
over an *ordered, gap-free* frame stream: exactly what one TCP
connection provides.  Transports create a fresh codec per connection
(and re-encode any retransmitted message with the new codec), so a
reconnect can never desynchronize the references.
"""

from __future__ import annotations

import json
import struct
from collections import Counter
from typing import List, Optional, Tuple, Union

import numpy as np

from ..clocks.encoding import (
    best_encoding,
    decode_differential,
    decode_sparse,
    encode_differential,
    encode_sparse,
)
from ..sim.serialize import message_from_dict, message_to_dict
from ..sim.wirepack import (
    SCHEME_DIFFERENTIAL,
    SCHEME_RAW,
    SCHEME_SPARSE,
    TAG_ACK,
    TAG_JSON,
    pack_message,
    read_uvarint,
    unpack_message,
    write_svarint,
    write_uvarint,
)

__all__ = [
    "FrameCodec",
    "HELLO_TYPE",
    "ACK_TYPE",
    "MAGIC_BINARY_V1",
    "CODEC_VERSION",
    "WIRE_FORMATS",
]

#: Meta-frame type sent first on every outbound connection so the
#: receiver learns which node is talking (listeners see only an
#: ephemeral source port otherwise).  Always legacy-JSON-framed; it
#: carries the sender's ``wire`` format and ``codec`` version.
HELLO_TYPE = "__hello__"

#: Meta frame flowing back on an inbound connection: ``n`` is the
#: cumulative count of message frames received on that connection.
ACK_TYPE = "__ack__"

#: First byte of a binary v1 frame.  High bit deliberately set so the
#: byte can never be confused with the leading length byte of a legacy
#: JSON frame; future versions claim 0xB2, 0xB3, …
MAGIC_BINARY_V1 = 0xB1

#: Negotiated protocol version advertised in ``__hello__``.
CODEC_VERSION = 1

WIRE_FORMATS = ("json", "binary")

_HEADER = struct.Struct(">I")
#: magic/version, type tag, flags, body length.
_BIN_HEADER = struct.Struct(">BBBI")
#: flags bit 0: a ``_meta`` sidecar (uvarint length + JSON bytes)
#: follows the packed body.
_FLAG_META = 0x01

#: best_encoding name -> wire scheme byte.
_SCHEME_BYTES = {
    "raw": SCHEME_RAW,
    "sparse": SCHEME_SPARSE,
    "differential": SCHEME_DIFFERENTIAL,
}


def _pack_pairs(pairs: list) -> bytes:
    """``(index, value)`` pair list -> uvarint count + packed pairs."""
    buf = bytearray()
    write_uvarint(buf, len(pairs))
    for index, value in pairs:
        write_uvarint(buf, int(index))
        write_svarint(buf, int(value))
    return bytes(buf)


class FrameCodec:
    """Encoder/decoder for one direction of one connection.

    Parameters
    ----------
    wire:
        ``"json"`` (default) or ``"binary"`` — the *encode* format.
        Decoding is wire-agnostic (frames are self-describing), so the
        two formats interoperate in either direction.
    include_parts:
        Ship aggregation provenance (``parts``) inside interval bodies.
        ``True`` (default) makes the socket runtime deliver exactly what
        the simulator's in-memory channels deliver — root alarms can
        unfold solutions down to concrete intervals and the span tracer
        parents alarms over reports.  ``False`` is the paper-faithful
        lean wire (bounds only; see ``payload_entries``).
    compress:
        Apply per-channel timestamp compression to ``IntervalReport``
        bounds.  Both ends of a channel must agree (transports build
        both codecs from one factory).
    max_frame:
        Hard bound on body size; oversized frames fail loudly on encode
        and poison the stream on decode (the transport drops the
        connection).  Enforced identically on both wire formats.
    max_meta:
        Hard bound on the serialized ``_meta`` sidecar.  The sidecar is
        a forward-compatible extension point — decoders tolerate keys
        they do not understand — so its size must be bounded
        independently of the body: an oversized (or non-object) sidecar
        poisons the frame exactly like an oversized body, on either
        wire format.
    """

    def __init__(
        self,
        *,
        wire: str = "json",
        include_parts: bool = True,
        compress: bool = True,
        max_frame: int = 8 * 1024 * 1024,
        max_meta: int = 64 * 1024,
    ) -> None:
        if wire not in WIRE_FORMATS:
            raise ValueError(f"wire must be one of {WIRE_FORMATS}, got {wire!r}")
        self.wire = wire
        self.include_parts = include_parts
        self.compress = compress
        self.max_frame = max_frame
        self.max_meta = max_meta
        #: chosen-scheme counts (encoder side), for tests and benches
        self.encodings: Counter = Counter()
        self._enc_ref: List[Optional[np.ndarray]] = [None, None]  # lo, hi
        self._dec_ref: List[Optional[np.ndarray]] = [None, None]
        self._buffer = bytearray()

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    def encode(
        self, message: Union[object, dict], meta: Optional[dict] = None
    ) -> bytes:
        """One message (or meta dict) -> one framed byte string.

        ``meta`` is an optional JSON-safe sidecar dict carried in the
        frame — transport-level annotations (the sender's span id, for
        cross-node trace stitching) that never touch the message
        dataclass itself.  The decoder hands it back via
        :meth:`feed_meta`."""
        if isinstance(message, dict):
            if not str(message.get("type", "")).startswith("__"):
                raise ValueError("dict frames are reserved for __meta__ types")
            if meta is not None:
                raise ValueError("meta frames cannot carry a _meta sidecar")
            if self.wire == "binary" and message.get("type") == ACK_TYPE:
                body = bytearray()
                write_uvarint(body, int(message["n"]))
                return self._frame_packed(TAG_ACK, 0, bytes(body))
            # Hello and any other meta frame stays legacy JSON so every
            # peer — whatever its wire format — can read the handshake.
            return self._frame_json(message)
        if self.wire == "binary":
            packed = pack_message(
                message,
                include_parts=self.include_parts,
                bounds=self._encode_bound,
            )
            if packed is not None:
                tag, body = packed
                flags = 0
                if meta is not None:
                    self._check_meta(meta)
                    sidecar = json.dumps(meta, separators=(",", ":")).encode(
                        "utf-8"
                    )
                    trailer = bytearray()
                    write_uvarint(trailer, len(sidecar))
                    body = body + bytes(trailer) + sidecar
                    flags |= _FLAG_META
                return self._frame_packed(tag, flags, body)
            # Escape hatch: a message type the packer does not know
            # rides as JSON behind a binary header.  No timestamp
            # compression here — the reference chain is owned by the
            # packed IntervalReport path.
            data = message_to_dict(message, include_parts=self.include_parts)
            if meta is not None:
                self._check_meta(meta)
                data["_meta"] = meta
            body = json.dumps(data, separators=(",", ":")).encode("utf-8")
            return self._frame_packed(TAG_JSON, 0, body)
        data = message_to_dict(message, include_parts=self.include_parts)
        if self.compress and data["type"] == "IntervalReport":
            self._compress_interval(data["interval"])
        if meta is not None:
            self._check_meta(meta)
            data["_meta"] = meta
        return self._frame_json(data)

    def _frame_json(self, data: dict) -> bytes:
        body = json.dumps(data, separators=(",", ":")).encode("utf-8")
        if len(body) > self.max_frame:
            raise ValueError(
                f"frame body of {len(body)} bytes exceeds max_frame "
                f"({self.max_frame})"
            )
        return _HEADER.pack(len(body)) + body

    def _frame_packed(self, tag: int, flags: int, body: bytes) -> bytes:
        if len(body) > self.max_frame:
            raise ValueError(
                f"frame body of {len(body)} bytes exceeds max_frame "
                f"({self.max_frame})"
            )
        return _BIN_HEADER.pack(MAGIC_BINARY_V1, tag, flags, len(body)) + body

    def _check_meta(self, meta) -> None:
        """Validate a ``_meta`` sidecar on either side of the wire.

        Only the *shape* (a JSON object) and *size* are checked — never
        the keys, so newer peers may attach sidecar fields older peers
        simply ignore."""
        if not isinstance(meta, dict):
            raise ValueError(
                f"frame _meta sidecar must be a JSON object, got "
                f"{type(meta).__name__}"
            )
        size = len(json.dumps(meta, separators=(",", ":")).encode("utf-8"))
        if size > self.max_meta:
            raise ValueError(
                f"frame _meta sidecar of {size} bytes exceeds max_meta "
                f"({self.max_meta})"
            )

    # -- timestamp channel state (shared by both wire formats) ---------
    def _encode_bound(self, slot: int, ts: np.ndarray) -> Tuple[int, bytes]:
        """Binary-path bounds hook: pick a scheme against the channel
        reference, advance it, emit packed bytes."""
        ts = np.asarray(ts, dtype=np.int64)
        reference = self._enc_ref[slot]
        if reference is not None and reference.shape != ts.shape:
            reference = None
        name = "raw"
        if self.compress:
            name, _ = best_encoding(ts, reference)
        if name == "sparse":
            pairs, _ = encode_sparse(ts)
            payload = _pack_pairs(pairs)
        elif name == "differential":
            pairs, _ = encode_differential(ts, reference)
            payload = _pack_pairs(pairs)
        else:
            payload = np.ascontiguousarray(ts).astype(">i8").tobytes()
        if self.compress:
            self.encodings[name] += 1
        self._enc_ref[slot] = ts
        return _SCHEME_BYTES[name], payload

    def _decode_bound(
        self, slot: int, scheme: int, payload: object, n: int
    ) -> np.ndarray:
        """Binary-path bounds hook: invert the scheme, advance the
        decoder reference in lockstep with the encoder's."""
        if scheme == SCHEME_RAW:
            ts = np.asarray(payload, dtype=np.int64)
        elif scheme == SCHEME_SPARSE:
            ts = np.asarray(decode_sparse(payload, n), dtype=np.int64)
        else:
            ts = np.asarray(
                decode_differential(payload, self._dec_ref[slot], n),
                dtype=np.int64,
            )
        self._dec_ref[slot] = ts
        return ts

    def _compress_interval(self, data: dict) -> None:
        """JSON path: replace the top-level ``lo``/``hi`` lists with
        tagged encoded payloads, advancing the encoder references.
        Nested ``parts`` stay raw: provenance is bulky but rare, and
        keeping the reference chain tied to the head timestamps keeps
        both ends' state trivially in lockstep."""
        data["n"] = len(data["lo"])
        for slot, bound in enumerate(("lo", "hi")):
            ts = np.asarray(data[bound], dtype=np.int64)
            reference = self._enc_ref[slot]
            if reference is not None and reference.shape != ts.shape:
                reference = None
            name, _ = best_encoding(ts, reference)
            if name == "sparse":
                payload, _ = encode_sparse(ts)
            elif name == "differential":
                payload, _ = encode_differential(ts, reference)
            else:
                payload = data[bound]
            self.encodings[name] += 1
            data[bound] = {"e": name, "p": payload}
            self._enc_ref[slot] = ts

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def feed(self, data: bytes) -> List[object]:
        """Buffer raw socket bytes; return every message that became
        complete (meta frames come back as plain dicts).  Frame sidecars
        are discarded — use :meth:`feed_meta` to keep them."""
        return [message for message, _ in self.feed_meta(data)]

    def feed_meta(self, data: bytes) -> List[Tuple[object, Optional[dict]]]:
        """Like :meth:`feed`, but each message comes back with the frame
        ``_meta`` sidecar (or ``None``) it was encoded with.  Both wire
        formats are accepted, frame by frame."""
        self._buffer.extend(data)
        out: List[Tuple[object, Optional[dict]]] = []
        while self._buffer:
            first = self._buffer[0]
            if first & 0x80:
                if first != MAGIC_BINARY_V1:
                    raise ValueError(
                        f"unsupported binary wire version byte 0x{first:02x}; "
                        f"stream is corrupt"
                    )
                if len(self._buffer) < _BIN_HEADER.size:
                    break
                _, tag, flags, length = _BIN_HEADER.unpack_from(self._buffer)
                if length > self.max_frame:
                    raise ValueError(
                        f"declared frame length {length} exceeds max_frame "
                        f"({self.max_frame}); stream is corrupt"
                    )
                total = _BIN_HEADER.size + length
                if len(self._buffer) < total:
                    break
                body = bytes(self._buffer[_BIN_HEADER.size : total])
                del self._buffer[:total]
                out.append(self._decode_packed(tag, flags, body))
                continue
            if len(self._buffer) < _HEADER.size:
                break
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame:
                raise ValueError(
                    f"declared frame length {length} exceeds max_frame "
                    f"({self.max_frame}); stream is corrupt"
                )
            if len(self._buffer) < _HEADER.size + length:
                break
            body = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            out.append(self._decode_body(body))
        return out

    def decode(self, frame: bytes) -> object:
        """Decode exactly one complete frame (header + body)."""
        messages = self.feed(frame)
        if len(messages) != 1 or self._buffer:
            raise ValueError("decode() expects exactly one complete frame")
        return messages[0]

    def _decode_packed(
        self, tag: int, flags: int, body: bytes
    ) -> Tuple[object, Optional[dict]]:
        if flags & ~_FLAG_META:
            raise ValueError(
                f"unknown frame flags 0x{flags:02x}; stream is corrupt"
            )
        if tag == TAG_ACK:
            n, offset = read_uvarint(body, 0)
            if offset != len(body):
                raise ValueError("trailing bytes after packed ack frame")
            return {"type": ACK_TYPE, "n": n}, None
        if tag == TAG_JSON:
            return self._decode_body(body)
        message, offset = unpack_message(
            tag, body, bounds=self._decode_bound
        )
        meta: Optional[dict] = None
        if flags & _FLAG_META:
            size, offset = read_uvarint(body, offset)
            if size > self.max_meta:
                raise ValueError(
                    f"frame _meta sidecar of {size} bytes exceeds max_meta "
                    f"({self.max_meta})"
                )
            end = offset + size
            if end > len(body):
                raise ValueError("truncated _meta sidecar in packed frame")
            meta = json.loads(body[offset:end].decode("utf-8"))
            self._check_meta(meta)
            offset = end
        if offset != len(body):
            raise ValueError(
                f"{len(body) - offset} trailing bytes after packed frame "
                f"body; stream is corrupt"
            )
        return message, meta

    def _decode_body(self, body: bytes) -> Tuple[object, Optional[dict]]:
        data = json.loads(body.decode("utf-8"))
        kind = str(data.get("type", ""))
        if kind.startswith("__"):
            return data, None
        meta = data.pop("_meta", None)
        if meta is not None:
            self._check_meta(meta)
        if kind == "IntervalReport":
            self._decompress_interval(data["interval"])
        return message_from_dict(data), meta

    def _decompress_interval(self, data: dict) -> None:
        for slot, bound in enumerate(("lo", "hi")):
            obj = data[bound]
            if not isinstance(obj, dict):
                continue  # uncompressed peer
            n = int(data["n"])
            scheme, payload = obj["e"], obj["p"]
            if scheme == "sparse":
                ts = decode_sparse(payload, n)
            elif scheme == "differential":
                ts = decode_differential(payload, self._dec_ref[slot], n)
            else:
                ts = np.asarray(payload, dtype=np.int64)
            self._dec_ref[slot] = np.asarray(ts, dtype=np.int64)
            data[bound] = [int(v) for v in ts]
        data.pop("n", None)

    # ------------------------------------------------------------------
    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buffer)
