"""The wire protocol: length-prefixed JSON frames with per-channel
timestamp compression.

Frame layout (one frame per control message)::

    +-------------------+----------------------------------------+
    | 4 bytes, big-end. | UTF-8 JSON body, ``length`` bytes      |
    | unsigned length   | (repro.sim.serialize.message_to_dict)  |
    +-------------------+----------------------------------------+

Bodies are the stable JSON forms of the :mod:`repro.sim.messages`
dataclasses.  Frames whose ``type`` starts with ``__`` are *meta*
frames (connection handshake etc.) and stay plain dicts — the transport
consumes them before messages reach a role.

Timestamp compression
---------------------
``IntervalReport`` bodies dominate wire volume, and their cost is the
two length-``n`` vector timestamps — the O(n) factor of the paper's
Section IV accounting.  A codec instance therefore carries per-channel
reference state: for each of ``lo``/``hi`` it remembers the previous
timestamp sent (or received) on this channel and lets
:func:`repro.clocks.encoding.best_encoding` pick the cheapest of
raw / sparse / differential for the next one.  The chosen scheme is
tagged on the wire (``{"e": "sparse", "p": [[i, v], …]}``), so the
decoder — whose reference state advances in lockstep, frame by frame —
inverts it exactly.

Because the references advance per frame, a codec pair is only coherent
over an *ordered, gap-free* frame stream: exactly what one TCP
connection provides.  Transports create a fresh codec per connection
(and re-encode any retransmitted message with the new codec), so a
reconnect can never desynchronize the references.
"""

from __future__ import annotations

import json
import struct
from collections import Counter
from typing import List, Optional, Tuple, Union

import numpy as np

from ..clocks.encoding import (
    best_encoding,
    decode_differential,
    decode_sparse,
    encode_differential,
    encode_sparse,
)
from ..sim.serialize import message_from_dict, message_to_dict

__all__ = ["FrameCodec", "HELLO_TYPE"]

#: Meta-frame type sent first on every outbound connection so the
#: receiver learns which node is talking (listeners see only an
#: ephemeral source port otherwise).
HELLO_TYPE = "__hello__"

_HEADER = struct.Struct(">I")


class FrameCodec:
    """Encoder/decoder for one direction of one connection.

    Parameters
    ----------
    include_parts:
        Ship aggregation provenance (``parts``) inside interval bodies.
        ``True`` (default) makes the socket runtime deliver exactly what
        the simulator's in-memory channels deliver — root alarms can
        unfold solutions down to concrete intervals and the span tracer
        parents alarms over reports.  ``False`` is the paper-faithful
        lean wire (bounds only; see ``payload_entries``).
    compress:
        Apply per-channel timestamp compression to ``IntervalReport``
        bounds.  Both ends of a channel must agree (transports build
        both codecs from one factory).
    max_frame:
        Hard bound on body size; oversized frames fail loudly on encode
        and poison the stream on decode (the transport drops the
        connection).
    max_meta:
        Hard bound on the serialized ``_meta`` sidecar.  The sidecar is
        a forward-compatible extension point — decoders tolerate keys
        they do not understand — so its size must be bounded
        independently of the body: an oversized (or non-object) sidecar
        poisons the frame exactly like an oversized body.
    """

    def __init__(
        self,
        *,
        include_parts: bool = True,
        compress: bool = True,
        max_frame: int = 8 * 1024 * 1024,
        max_meta: int = 64 * 1024,
    ) -> None:
        self.include_parts = include_parts
        self.compress = compress
        self.max_frame = max_frame
        self.max_meta = max_meta
        #: chosen-scheme counts (encoder side), for tests and benches
        self.encodings: Counter = Counter()
        self._enc_ref: List[Optional[np.ndarray]] = [None, None]  # lo, hi
        self._dec_ref: List[Optional[np.ndarray]] = [None, None]
        self._buffer = bytearray()

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    def encode(
        self, message: Union[object, dict], meta: Optional[dict] = None
    ) -> bytes:
        """One message (or meta dict) -> one framed byte string.

        ``meta`` is an optional JSON-safe sidecar dict carried in the
        frame body under ``"_meta"`` — transport-level annotations (the
        sender's span id, for cross-node trace stitching) that never
        touch the message dataclass itself.  The decoder hands it back
        via :meth:`feed_meta`."""
        if isinstance(message, dict):
            if not str(message.get("type", "")).startswith("__"):
                raise ValueError("dict frames are reserved for __meta__ types")
            if meta is not None:
                raise ValueError("meta frames cannot carry a _meta sidecar")
            data = message
        else:
            data = message_to_dict(message, include_parts=self.include_parts)
            if self.compress and data["type"] == "IntervalReport":
                self._compress_interval(data["interval"])
            if meta is not None:
                self._check_meta(meta)
                data["_meta"] = meta
        body = json.dumps(data, separators=(",", ":")).encode("utf-8")
        if len(body) > self.max_frame:
            raise ValueError(
                f"frame body of {len(body)} bytes exceeds max_frame "
                f"({self.max_frame})"
            )
        return _HEADER.pack(len(body)) + body

    def _check_meta(self, meta) -> None:
        """Validate a ``_meta`` sidecar on either side of the wire.

        Only the *shape* (a JSON object) and *size* are checked — never
        the keys, so newer peers may attach sidecar fields older peers
        simply ignore."""
        if not isinstance(meta, dict):
            raise ValueError(
                f"frame _meta sidecar must be a JSON object, got "
                f"{type(meta).__name__}"
            )
        size = len(json.dumps(meta, separators=(",", ":")).encode("utf-8"))
        if size > self.max_meta:
            raise ValueError(
                f"frame _meta sidecar of {size} bytes exceeds max_meta "
                f"({self.max_meta})"
            )

    def _compress_interval(self, data: dict) -> None:
        """Replace the top-level ``lo``/``hi`` lists with tagged encoded
        payloads, advancing the encoder references.  Nested ``parts``
        stay raw: provenance is bulky but rare, and keeping the
        reference chain tied to the head timestamps keeps both ends'
        state trivially in lockstep."""
        data["n"] = len(data["lo"])
        for slot, bound in enumerate(("lo", "hi")):
            ts = np.asarray(data[bound], dtype=np.int64)
            reference = self._enc_ref[slot]
            if reference is not None and reference.shape != ts.shape:
                reference = None
            name, _ = best_encoding(ts, reference)
            if name == "sparse":
                payload, _ = encode_sparse(ts)
            elif name == "differential":
                payload, _ = encode_differential(ts, reference)
            else:
                payload = data[bound]
            self.encodings[name] += 1
            data[bound] = {"e": name, "p": payload}
            self._enc_ref[slot] = ts

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def feed(self, data: bytes) -> List[object]:
        """Buffer raw socket bytes; return every message that became
        complete (meta frames come back as plain dicts).  Frame sidecars
        are discarded — use :meth:`feed_meta` to keep them."""
        return [message for message, _ in self.feed_meta(data)]

    def feed_meta(self, data: bytes) -> List[Tuple[object, Optional[dict]]]:
        """Like :meth:`feed`, but each message comes back with the frame
        ``_meta`` sidecar (or ``None``) it was encoded with."""
        self._buffer.extend(data)
        out: List[Tuple[object, Optional[dict]]] = []
        while len(self._buffer) >= _HEADER.size:
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame:
                raise ValueError(
                    f"declared frame length {length} exceeds max_frame "
                    f"({self.max_frame}); stream is corrupt"
                )
            if len(self._buffer) < _HEADER.size + length:
                break
            body = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            out.append(self._decode_body(body))
        return out

    def decode(self, frame: bytes) -> object:
        """Decode exactly one complete frame (header + body)."""
        messages = self.feed(frame)
        if len(messages) != 1 or self._buffer:
            raise ValueError("decode() expects exactly one complete frame")
        return messages[0]

    def _decode_body(self, body: bytes) -> Tuple[object, Optional[dict]]:
        data = json.loads(body.decode("utf-8"))
        kind = str(data.get("type", ""))
        if kind.startswith("__"):
            return data, None
        meta = data.pop("_meta", None)
        if meta is not None:
            self._check_meta(meta)
        if kind == "IntervalReport":
            self._decompress_interval(data["interval"])
        return message_from_dict(data), meta

    def _decompress_interval(self, data: dict) -> None:
        for slot, bound in enumerate(("lo", "hi")):
            obj = data[bound]
            if not isinstance(obj, dict):
                continue  # uncompressed peer
            n = int(data["n"])
            scheme, payload = obj["e"], obj["p"]
            if scheme == "sparse":
                ts = decode_sparse(payload, n)
            elif scheme == "differential":
                ts = decode_differential(payload, self._dec_ref[slot], n)
            else:
                ts = np.asarray(payload, dtype=np.int64)
            self._dec_ref[slot] = np.asarray(ts, dtype=np.int64)
            data[bound] = [int(v) for v in ts]
        data.pop("n", None)

    # ------------------------------------------------------------------
    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buffer)
