"""Wall-clock stand-in for the :class:`~repro.sim.Simulator` surface.

The detection stack never imports the simulation kernel's event loop
directly — roles, heartbeat monitors and the repair coordinator only
touch a narrow surface of their ``sim`` handle: ``now``, ``schedule``,
``schedule_at``, ``rng``, ``emit``, ``log`` and ``telemetry``.
:class:`AsyncClock` implements exactly that surface against the running
asyncio loop, so the same classes run unmodified on a real network:

* ``now`` is wall time in seconds since the clock started (monotonic,
  from ``loop.time()``), so timeouts and latency histograms read in
  real seconds;
* ``schedule`` is ``loop.call_later`` behind the same
  cancel-handle contract as :class:`~repro.sim.kernel.ScheduledEvent`;
* ``rng`` derives the same named deterministic streams as the
  simulator's int-seed path, so e.g. heartbeat tick phases stay
  reproducible given a cluster seed;
* ``emit``/``telemetry`` feed the ordinary :mod:`repro.obs` pipeline —
  one :class:`~repro.obs.Telemetry` can be shared across every node of
  an in-process cluster, which is what parents report/alarm spans
  across node boundaries.
"""

from __future__ import annotations

import asyncio
import zlib
from typing import Callable, Dict, Optional

import numpy as np

from ..obs.telemetry import Telemetry
from ..sim.eventlog import EventLog

__all__ = ["AsyncClock", "ClockHandle"]


class ClockHandle:
    """Cancel-handle for a scheduled callback (``ScheduledEvent`` shape)."""

    __slots__ = ("_handle", "cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self.cancelled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._handle.cancel()


class AsyncClock:
    """The ``sim`` handle of the socket runtime.

    The clock binds to the running loop lazily on first use, so it can
    be constructed (and handed to roles at bind time) before
    ``asyncio.run`` starts.  ``now`` is ``0.0`` until then.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
        log: Optional[EventLog] = None,
        log_capacity: Optional[int] = 65536,
    ) -> None:
        self.seed = seed
        self.telemetry = telemetry or Telemetry()
        self.log = log or EventLog(capacity=log_capacity)
        self._rngs: Dict[str, np.random.Generator] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._origin: Optional[float] = None

    # ------------------------------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
            self._origin = self._loop.time()
        return self._loop

    @property
    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._origin

    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """Named deterministic stream — same derivation as the
        simulator's legacy int-seed path, so a (seed, name) pair yields
        the same stream whether the stack runs simulated or networked."""
        gen = self._rngs.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, key]))
            self._rngs[name] = gen
        return gen

    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> ClockHandle:
        """Run *action* ``delay`` wall-seconds from now."""
        loop = self._ensure_loop()
        return ClockHandle(loop.call_later(max(0.0, delay), action))

    def schedule_at(self, time: float, action: Callable[[], None]) -> ClockHandle:
        """Run *action* at clock time *time* (seconds since start)."""
        return self.schedule(time - self.now, action)

    # ------------------------------------------------------------------
    def emit(self, kind: str, node=None, **fields) -> None:
        self.log.emit(self.now, kind, node, **fields)
