"""Wall-clock stand-in for the :class:`~repro.sim.Simulator` surface.

The detection stack never imports the simulation kernel's event loop
directly — roles, heartbeat monitors and the repair coordinator only
touch a narrow surface of their ``sim`` handle: ``now``, ``schedule``,
``schedule_at``, ``rng``, ``emit``, ``log`` and ``telemetry``.
:class:`AsyncClock` implements exactly that surface against the running
asyncio loop, so the same classes run unmodified on a real network:

* ``now`` is wall time in seconds since the clock started (monotonic,
  from ``loop.time()``), so timeouts and latency histograms read in
  real seconds;
* ``schedule`` is ``loop.call_later`` behind the same
  cancel-handle contract as :class:`~repro.sim.kernel.ScheduledEvent`;
* ``rng`` derives the same named deterministic streams as the
  simulator's int-seed path, so e.g. heartbeat tick phases stay
  reproducible given a cluster seed;
* ``emit``/``telemetry`` feed the ordinary :mod:`repro.obs` pipeline.

A clock can be shared whole (one ``Telemetry`` for every node — fine
for unit tests) or fronted by per-node :class:`ClockScope` views: same
time base, timers and rng streams, but a private registry, span tracker
and event log per node.  Scoped telemetry is what a *real* deployment
looks like — no process can read another's memory — and is what the
cluster observability plane (:mod:`repro.obs.cluster`) scrapes and
merges back into one cross-node view.
"""

from __future__ import annotations

import asyncio
import zlib
from typing import Callable, Dict, Optional

import numpy as np

from ..obs.telemetry import Telemetry
from ..sim.eventlog import EventLog

__all__ = ["AsyncClock", "ClockScope", "ClockHandle"]


class ClockHandle:
    """Cancel-handle for a scheduled callback (``ScheduledEvent`` shape)."""

    __slots__ = ("_handle", "cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self.cancelled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._handle.cancel()


class AsyncClock:
    """The ``sim`` handle of the socket runtime.

    The clock binds to the running loop lazily on first use, so it can
    be constructed (and handed to roles at bind time) before
    ``asyncio.run`` starts.  ``now`` is ``0.0`` until then.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
        log: Optional[EventLog] = None,
        log_capacity: Optional[int] = 65536,
    ) -> None:
        self.seed = seed
        self.telemetry = telemetry or Telemetry()
        self.log = log or EventLog(capacity=log_capacity)
        self._rngs: Dict[str, np.random.Generator] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._origin: Optional[float] = None

    # ------------------------------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
            self._origin = self._loop.time()
        return self._loop

    @property
    def now(self) -> float:
        if self._loop is None:
            # Bind on first in-loop read, not just on first schedule():
            # bare transports (no runtime, no timers) still need real
            # elapsed time for congestion accounting.
            try:
                self._ensure_loop()
            except RuntimeError:
                return 0.0
        return self._loop.time() - self._origin

    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """Named deterministic stream — same derivation as the
        simulator's legacy int-seed path, so a (seed, name) pair yields
        the same stream whether the stack runs simulated or networked."""
        gen = self._rngs.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, key]))
            self._rngs[name] = gen
        return gen

    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> ClockHandle:
        """Run *action* ``delay`` wall-seconds from now."""
        loop = self._ensure_loop()
        return ClockHandle(loop.call_later(max(0.0, delay), action))

    def schedule_at(self, time: float, action: Callable[[], None]) -> ClockHandle:
        """Run *action* at clock time *time* (seconds since start)."""
        return self.schedule(time - self.now, action)

    # ------------------------------------------------------------------
    def emit(self, kind: str, node=None, **fields) -> None:
        self.log.emit(self.now, kind, node, **fields)

    # ------------------------------------------------------------------
    def scope(
        self,
        node: int,
        *,
        log_capacity: Optional[int] = 65536,
        sampler=None,
        span_capacity: Optional[int] = None,
    ) -> "ClockScope":
        """A per-node telemetry island over this clock (see
        :class:`ClockScope`).  ``sampler`` and ``span_capacity``
        configure the island's span tracker — the always-on deployment
        shape pairs head sampling with a bounded span ring."""
        return ClockScope(
            self,
            node,
            log_capacity=log_capacity,
            sampler=sampler,
            span_capacity=span_capacity,
        )


class ClockScope:
    """One node's private view of a shared :class:`AsyncClock`.

    Time, timers and named rng streams delegate to the parent clock (so
    heartbeat phases etc. stay exactly as deterministic as the shared
    path), but ``telemetry`` and ``log`` are the node's own — the
    telemetry island a separate OS process would have.  Events are also
    forwarded to the parent clock's log, so the cluster-wide event
    timeline stays whole for in-process consumers while each node's log
    holds exactly what that node could know about itself.
    """

    def __init__(
        self,
        parent: AsyncClock,
        node: int,
        *,
        log_capacity: Optional[int] = 65536,
        sampler=None,
        span_capacity: Optional[int] = None,
    ) -> None:
        self.parent = parent
        self.node = node
        self.seed = parent.seed
        self.telemetry = Telemetry(sampler=sampler, span_capacity=span_capacity)
        self.log = EventLog(capacity=log_capacity)

    # -- delegated surface ---------------------------------------------
    @property
    def now(self) -> float:
        return self.parent.now

    def rng(self, name: str) -> np.random.Generator:
        return self.parent.rng(name)

    def schedule(self, delay: float, action: Callable[[], None]) -> ClockHandle:
        return self.parent.schedule(delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> ClockHandle:
        return self.parent.schedule_at(time, action)

    # -- scoped surface ------------------------------------------------
    def emit(self, kind: str, node=None, **fields) -> None:
        now = self.now
        self.log.emit(now, kind, node, **fields)
        self.parent.log.emit(now, kind, node, **fields)
