"""``repro.net`` — the asyncio socket runtime.

Everything below :mod:`repro.detect` is transport-agnostic: a
:class:`~repro.detect.HierarchicalRole` only needs a host exposing
``pid``, ``send_control`` and a ``sim``-shaped clock/telemetry handle.
This package supplies real-network implementations of those surfaces,
so the *unmodified* detection, fault and repair machinery runs over
length-prefixed TCP frames instead of the discrete-event simulator:

* :class:`AsyncClock` — wall-clock stand-in for the
  :class:`~repro.sim.Simulator` surface (``now`` / ``schedule`` /
  ``rng`` / ``emit`` / ``telemetry``) backed by the asyncio loop;
* :class:`FrameCodec` — the wire protocol: versioned binary frames
  (struct header + varint-packed bodies from
  :mod:`repro.sim.wirepack`, with a legacy length-prefixed JSON wire
  and a per-frame JSON escape hatch), per-channel timestamp
  compression via :func:`repro.clocks.encoding.best_encoding`;
* :class:`TcpTransport` / :class:`LoopbackTransport` — the
  :class:`Transport` implementations (sockets, and an in-process hub so
  unit tests need no ports);
* :class:`NodeRuntime` — one tree node: a role host plus interval
  ingestion and heartbeat wiring;
* :class:`ClusterSpec` / :class:`LocalCluster` — an n-node localhost
  cluster, also behind the ``repro-cluster`` CLI.

See ``docs/networking.md`` for the architecture and wire format.
"""

from .clock import AsyncClock, ClockScope
from .codec import ACK_TYPE, CODEC_VERSION, HELLO_TYPE, WIRE_FORMATS, FrameCodec
from .transport import LoopbackHub, LoopbackTransport, TcpTransport, Transport
from .runtime import NodeRuntime
from .cluster import ClusterSpec, LocalCluster
from .script import simulation_script, solution_signatures

__all__ = [
    "AsyncClock",
    "ClockScope",
    "FrameCodec",
    "ACK_TYPE",
    "HELLO_TYPE",
    "CODEC_VERSION",
    "WIRE_FORMATS",
    "Transport",
    "TcpTransport",
    "LoopbackTransport",
    "LoopbackHub",
    "NodeRuntime",
    "ClusterSpec",
    "LocalCluster",
    "simulation_script",
    "solution_signatures",
]
