"""Interval scripts: replaying a simulated workload over real sockets.

The equivalence story of the socket runtime rests on a confluence
property of the detection core (checked empirically by the parallel
engine's tests): for a fixed set of per-process interval streams, the
repeated-detection solution *set* is identical under **any** queue
interleaving that preserves per-source order.  So to prove the socket
stack faithful we do not need to reproduce the simulator's timing —
only its per-node interval sequences:

1. run the ordinary simulator workload once (:func:`simulation_script`),
2. extract each node's local-interval stream from the execution trace,
3. replay those streams through a live cluster, in per-node order,
4. compare ordered solution signatures (:func:`solution_signatures`).

Identical signatures mean the network stack — codec, transport, reorder
buffers, asyncio scheduling — introduced no detection-visible
divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..detect.roles import DetectionRecord
from ..experiments.harness import run_hierarchical
from ..intervals import Interval
from ..topology.spanning_tree import SpanningTree
from ..workload.generator import EpochConfig

__all__ = ["IntervalScript", "simulation_script", "solution_signatures"]


@dataclass
class IntervalScript:
    """Per-node interval streams plus the simulator's reference answer."""

    tree: SpanningTree
    seed: int
    #: node -> that node's local intervals, in production (seq) order
    streams: Dict[int, List[Interval]] = field(default_factory=dict)
    #: node -> close time of each interval in the simulator (same order)
    close_times: Dict[int, List[float]] = field(default_factory=dict)
    #: the simulator run's detections, in announcement order
    reference: List[DetectionRecord] = field(default_factory=list)

    @property
    def total_intervals(self) -> int:
        return sum(len(stream) for stream in self.streams.values())


def simulation_script(
    tree: SpanningTree,
    *,
    seed: int = 1,
    epochs: int = 4,
    sync_prob: float = 1.0,
    config: Optional[EpochConfig] = None,
) -> IntervalScript:
    """Run the epoch workload in the simulator and capture per-node
    interval streams plus the reference detections.

    The default ``sync_prob=1.0`` makes every epoch a global
    occurrence, so detections keep coming even after a subtree is
    killed — which is what the kill tests need to observe.  Rates < 1
    mix in epochs whose intervals never join any solution; sampled
    clusters use that to exercise real head drops (an always-matching
    workload promotes every span via trace adoption).
    """
    config = config or EpochConfig(epochs=epochs, sync_prob=sync_prob)
    result = run_hierarchical(tree, seed=seed, config=config)
    script = IntervalScript(tree=tree, seed=seed, reference=list(result.detections))
    for pid, intervals in sorted(result.trace.all_intervals().items()):
        ordered = sorted(intervals, key=lambda iv: iv.seq)
        script.streams[pid] = ordered
        script.close_times[pid] = [
            result.trace.interval_close_time(iv) for iv in ordered
        ]
    return script


def solution_signatures(detections: List[DetectionRecord]) -> List[Tuple]:
    """Order-independent-of-wall-time, content-complete signatures.

    Each detection collapses to ``(index, sorted head keys)`` — the
    solution's position in the repeated-detection sequence plus the
    identity of every queue head in it.  Lists compare equal iff the two
    runs announced the same solutions in the same detection order.
    """
    ordered = sorted(detections, key=lambda d: d.solution.index)
    return [
        (
            d.solution.index,
            tuple(sorted((k, iv.key()) for k, iv in d.solution.heads.items())),
        )
        for d in ordered
    ]
