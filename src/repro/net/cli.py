"""``repro-cluster`` — run, poke and observe localhost detection clusters.

Subcommands:

* ``run`` — build an n-node tree, launch every node on its own TCP (or
  loopback) transport inside one process, replay a simulator-derived
  interval script and wait for live ``Definitely(Φ)`` detections.  With
  ``--kill-node`` it additionally crash-stops a node mid-run and only
  exits 0 if the tree repaired itself *and* detection continued over
  the survivors — the paper's fault-tolerance claim, demonstrated on
  real sockets (this is what CI's ``net-smoke`` job runs).
* ``status`` — query a running cluster's admin endpoint.
* ``kill-node`` — crash a node in a running cluster via its admin
  endpoint.
* ``watch`` — scrape a running cluster's per-node telemetry islands
  through the admin endpoint, merge + trace-stitch them
  (:mod:`repro.obs.cluster`) and print the live cluster status table
  (per-node alarms/reports, realized α by level, reconnects, outbox
  depths); ``--interval`` re-polls until interrupted.
* ``profile`` — fetch a running cluster's continuous-profiler state
  (armed by ``run --profile``): the JSON summary, or ``--collapsed``
  flamegraph stacks ready for speedscope / ``flamegraph.pl``.
* ``postmortem`` — reconstruct the crash → repair → recovery timeline
  from a directory of flight-recorder snapshots
  (:mod:`repro.obs.flight`), as written by ``run --flight-dir``.

Exports mirror ``repro-trace``: ``--prom`` / ``--jsonl`` / ``--chrome``
write the *aggregated* cluster telemetry — per-node registries merged,
span trees stitched across TCP hops — so all ``repro_net_*`` socket
metrics appear next to the ordinary detection metrics and alarm traces
read end-to-end.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description=(
            "Run the hierarchical Definitely(Φ) detector as a localhost "
            "socket cluster (one asyncio node per tree vertex)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="launch a cluster and wait for detections")
    shape = run.add_argument_group("cluster shape")
    shape.add_argument("--nodes", type=int, default=7, help="tree size (default 7)")
    shape.add_argument("--degree", type=int, default=2, help="tree fan-out (default 2)")
    shape.add_argument("--seed", type=int, default=1, help="master RNG seed")
    shape.add_argument(
        "--transport",
        choices=("tcp", "loopback"),
        default="tcp",
        help="real sockets, or the in-process loopback hub",
    )
    shape.add_argument(
        "--wire",
        choices=("binary", "json"),
        default="binary",
        help="frame encoding: packed binary (default) or the legacy JSON wire",
    )
    shape.add_argument(
        "--epochs", type=int, default=4, help="reference-workload epochs (default 4)"
    )
    shape.add_argument(
        "--sync-prob",
        type=float,
        default=1.0,
        help="probability an epoch is a global occurrence (default 1.0; "
        "rates < 1 mix in intervals that never join a solution)",
    )
    shape.add_argument(
        "--interval-spacing",
        type=float,
        default=0.02,
        help="wall seconds between a node's successive interval offers",
    )
    load = run.add_argument_group("traffic plane (repro.load)")
    load.add_argument(
        "--load",
        choices=("open", "closed"),
        default=None,
        help="drive offers through the load plane — open (rate-driven) or "
        "closed (virtual users) — instead of the fixed-spacing replay",
    )
    load.add_argument(
        "--load-rate",
        type=float,
        default=200.0,
        metavar="PER_S",
        help="open loop: offered load in offers/second (default 200)",
    )
    load.add_argument(
        "--load-arrival",
        choices=("poisson", "uniform", "bursty"),
        default="poisson",
        help="open loop: interarrival model (default poisson)",
    )
    load.add_argument(
        "--load-users",
        type=int,
        default=8,
        help="closed loop: virtual user count (default 8)",
    )
    load.add_argument(
        "--load-think",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="closed loop: mean think time between offers (default 0.05)",
    )
    load.add_argument(
        "--load-offers",
        type=int,
        default=200,
        help="total offers to issue (default 200)",
    )
    load.add_argument(
        "--load-zipf",
        type=float,
        default=1.1,
        metavar="S",
        help="popularity skew exponent (0 = uniform; default 1.1)",
    )
    load.add_argument(
        "--load-dispatch",
        choices=("round_robin", "least_outstanding", "weighted", "affinity"),
        default="round_robin",
        help="dispatch policy routing offers to nodes (default round_robin)",
    )
    load.add_argument(
        "--load-policy",
        choices=("shed", "defer"),
        default="shed",
        help="what admission does at saturation (default shed)",
    )
    load.add_argument(
        "--load-max-outstanding",
        type=int,
        default=64,
        metavar="N",
        help="admission high watermark on outstanding offers (default 64; "
        "must be at least the node count)",
    )
    load.add_argument(
        "--load-pending-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="abandon admitted offers undetected after this long (default 5)",
    )
    stop = run.add_argument_group("stopping conditions")
    stop.add_argument(
        "--duration", type=float, default=None, help="run for this many wall seconds"
    )
    stop.add_argument(
        "--until-detections",
        type=int,
        default=1,
        help="wait for at least this many detections (default 1)",
    )
    stop.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="hard wall-clock bound on each wait (default 60s)",
    )
    fault = run.add_argument_group("fault injection")
    fault.add_argument(
        "--kill-node",
        type=int,
        default=None,
        metavar="PID",
        help="crash-stop PID mid-run and require repair + continued detection",
    )
    fault.add_argument(
        "--kill-after-detections",
        type=int,
        default=1,
        help="inject the kill once this many detections have fired (default 1)",
    )
    obs = run.add_argument_group("observability")
    obs.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="head-sample span traces at this rate per node (default 1.0: keep all)",
    )
    obs.add_argument(
        "--span-capacity",
        type=int,
        default=None,
        metavar="ROWS",
        help="bound each node's span table to a ring of ROWS (default: unbounded)",
    )
    obs.add_argument(
        "--profile",
        action="store_true",
        help="run a continuous stack-sampling profiler over the cluster loop",
    )
    obs.add_argument(
        "--profile-interval",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="seconds between profiler samples (default 0.005)",
    )
    obs.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="arm flight recorders; crash/repair/SLO snapshots land here",
    )
    obs.add_argument(
        "--flight-capacity",
        type=int,
        default=256,
        help="flight-recorder ring size (default 256)",
    )
    obs.add_argument(
        "--slo-latency-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="SLO: breach when any node's detection-latency p99 exceeds this",
    )
    obs.add_argument(
        "--slo-repair-duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="SLO: breach when a repair takes longer than this",
    )
    obs.add_argument(
        "--slo-stranded-rate",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "SLO: breach when stranded epochs exceed this fraction of "
            "admitted epochs (needs --load; see the epoch ledger docs)"
        ),
    )
    obs.add_argument(
        "--slo-outbox-depth",
        type=int,
        default=None,
        metavar="MESSAGES",
        help="SLO: breach when any peer outbox exceeds this depth",
    )
    out = run.add_argument_group("exports")
    out.add_argument("--admin-port", type=int, default=None, help="serve the admin endpoint")
    out.add_argument("--prom", metavar="PATH", help="write a Prometheus text exposition")
    out.add_argument("--jsonl", metavar="PATH", help="write the event log as JSON lines")
    out.add_argument(
        "--chrome", metavar="PATH", help="write the stitched span trace as Chrome trace JSON"
    )
    out.add_argument(
        "--summary-json", metavar="PATH", help="write the run summary as JSON (default: stdout)"
    )

    status = sub.add_parser("status", help="query a running cluster")
    kill = sub.add_parser("kill-node", help="crash a node in a running cluster")
    watch = sub.add_parser(
        "watch", help="scrape + merge a running cluster's telemetry"
    )
    profile = sub.add_parser(
        "profile", help="fetch a running cluster's continuous-profiler state"
    )
    for sp in (status, kill, watch, profile):
        sp.add_argument("--host", default="127.0.0.1")
        sp.add_argument("--admin-port", type=int, required=True)
    kill.add_argument("--node", type=int, required=True)
    profile.add_argument(
        "--collapsed",
        action="store_true",
        help="print collapsed flamegraph stacks instead of the JSON summary",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-poll every SECONDS until interrupted (default: one shot)",
    )
    watch.add_argument(
        "--prom", metavar="PATH", help="also write the merged Prometheus exposition"
    )
    watch.add_argument(
        "--epochs",
        action="store_true",
        help=(
            "also print the epoch ledger: accounting line, queue "
            "watermarks and per-epoch stranding attribution"
        ),
    )

    pm = sub.add_parser(
        "postmortem", help="reconstruct a timeline from flight snapshots"
    )
    pm.add_argument("directory", help="directory of flight-*.jsonl snapshots")
    pm.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    pm.add_argument(
        "--limit", type=int, default=40, help="max detections listed (default 40)"
    )

    return parser


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
async def _run_cluster(args) -> dict:
    from ..load import LoadSpec
    from ..monitor.spec import SLOSpec
    from .cluster import ClusterSpec, LocalCluster

    slo = SLOSpec(
        detection_latency_p99=args.slo_latency_p99,
        repair_duration=args.slo_repair_duration,
        outbox_depth=args.slo_outbox_depth,
        stranded_epoch_rate=args.slo_stranded_rate,
    )
    load_spec = None
    if args.load is not None:
        load_spec = LoadSpec(
            mode=args.load,
            rate=args.load_rate,
            arrival=args.load_arrival,
            users=args.load_users,
            think_time=args.load_think,
            total_offers=args.load_offers,
            zipf_s=args.load_zipf,
            dispatch=args.load_dispatch,
            policy=args.load_policy,
            max_outstanding=args.load_max_outstanding,
            pending_timeout=args.load_pending_timeout,
        )
    spec = ClusterSpec(
        nodes=args.nodes,
        degree=args.degree,
        seed=args.seed,
        transport=args.transport,
        wire=args.wire,
        epochs=args.epochs,
        sync_prob=args.sync_prob,
        interval_spacing=args.interval_spacing,
        admin_port=args.admin_port,
        flight_dir=args.flight_dir,
        flight_capacity=args.flight_capacity,
        slo=slo if slo.enabled else None,
        sample_rate=args.sample_rate,
        span_capacity=args.span_capacity,
        profile=args.profile,
        profile_interval=args.profile_interval,
        load=load_spec,
    )
    cluster = LocalCluster(spec)
    summary: dict = {"spec": {"nodes": spec.nodes, "degree": spec.degree,
                              "seed": spec.seed, "transport": spec.transport,
                              "wire": spec.wire}}
    try:
        await cluster.start()
        await cluster.run(
            duration=args.duration,
            # With a load session, "done" is the session draining (every
            # offer issued and resolved), not a fixed detection count.
            until_detections=None if load_spec else args.until_detections,
            until_load_drained=load_spec is not None,
            timeout=args.timeout,
        )
        summary["detections_before_kill"] = len(cluster.detections)

        if args.kill_node is not None:
            killed = args.kill_node
            if killed not in cluster.runtimes:
                raise SystemExit(f"--kill-node: unknown node {killed}")
            await cluster.run(
                until_detections=args.kill_after_detections, timeout=args.timeout
            )
            before = len(cluster.detections)
            cluster.kill_node(killed)
            deadline = cluster.clock.now + args.timeout
            # Wait for a repair plan against the killed node, then for a
            # detection announced *after* the kill that excludes it.
            while killed not in cluster.coordinator.plans:
                if cluster.clock.now > deadline:
                    raise TimeoutError(f"no repair of node {killed} within timeout")
                await asyncio.sleep(0.01)
            while True:
                fresh = cluster.detections[before:]
                if any(killed not in d.members for d in fresh):
                    break
                if cluster.clock.now > deadline:
                    raise TimeoutError(
                        f"no post-kill detection excluding node {killed} within timeout"
                    )
                await asyncio.sleep(0.01)
            summary["killed"] = killed
            summary["repaired"] = True
            summary["detections_after_kill"] = len(cluster.detections) - before
    finally:
        await cluster.stop()

    view = cluster.view()
    registry = view.registry
    frames = registry.get("repro_net_frames_total")
    summary.update(
        detections=len(cluster.detections),
        solutions=[sorted(d.members) for d in cluster.detections[:16]],
        frames_total=int(sum(frames.values())) if frames else 0,
        reconnects=int(sum(registry.get("repro_net_reconnects_total").values()))
        if registry.get("repro_net_reconnects_total")
        else 0,
        false_suspicions=len(cluster.log.of_kind("false_suspicion")),
        cross_node_alarms=len(view.cross_node_alarms()),
        stitched_hops=view.stitched_hops,
        alpha_by_level={
            str(level): round(value, 4)
            for level, value in sorted(view.alpha_by_level().items())
        },
        slo_breaches=len(cluster.log.of_kind("slo_breach")),
        uptime=round(cluster.clock.now, 3),
        wire=cluster.wire_summary(),
    )
    if cluster.load_session is not None:
        load_block = cluster.load_summary()
        if args.kill_node is None:
            # Fault-free runs must detect exactly what the centralized
            # replay of the admitted subset says — shedding included.
            load_block["reference_match"] = cluster.load_session.reference_match(
                cluster.detections
            )
        summary["load"] = load_block
    # Sampling accounting + per-alarm trace completeness, so a sampled
    # run can be asserted on ("the kill's alarm still explains down to
    # leaf intervals") without re-scraping.
    span_stats = [
        scope.telemetry.spans.stats()
        for _, scope in sorted(cluster.scopes.items())
    ]
    recorded = sum(s["recorded"] for s in span_stats)
    exported = sum(s["materialized"] for s in span_stats)
    summary["sample_rate"] = spec.sample_rate
    summary["spans_recorded"] = recorded
    summary["spans_exported"] = exported
    summary["sampled_fraction"] = (
        round(exported / recorded, 4) if recorded else 1.0
    )
    summary["alarm_leaf_intervals"] = [
        sum(1 for _, s in view.spans.walk(alarm) if s.name == "interval")
        for alarm in view.cross_node_alarms()[:16]
    ]
    if cluster.profiler is not None:
        summary["profiler"] = {
            "samples": cluster.profiler.samples,
            "unique_stacks": len(cluster.profiler.stacks),
            "interval": cluster.profiler.interval,
        }
    if args.flight_dir:
        summary["flight_snapshots"] = sum(
            len(recorder.snapshots)
            for recorder in cluster.flight_recorders.values()
        )

    if args.prom:
        from ..obs.export import prometheus_text

        with open(args.prom, "w", encoding="utf-8") as fp:
            fp.write(prometheus_text(registry))
    if args.jsonl:
        from ..obs.export import eventlog_to_jsonl

        eventlog_to_jsonl(cluster.log, args.jsonl)
    if args.chrome:
        from ..obs.export import write_chrome_trace

        write_chrome_trace(view.spans, args.chrome, time_base="wall")
    return summary


def _cmd_run(args) -> int:
    try:
        summary = asyncio.run(_run_cluster(args))
    except TimeoutError as exc:
        print(f"repro-cluster: {exc}", file=sys.stderr)
        return 1
    text = json.dumps(summary, indent=2, sort_keys=True)
    if args.summary_json:
        with open(args.summary_json, "w", encoding="utf-8") as fp:
            fp.write(text + "\n")
    print(text)
    return 0


# ----------------------------------------------------------------------
# admin clients
# ----------------------------------------------------------------------
async def _admin_request(host: str, port: int, request: dict) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _cmd_admin(args, request: dict) -> int:
    try:
        response = asyncio.run(_admin_request(args.host, args.admin_port, request))
    except (ConnectionError, OSError) as exc:
        print(f"repro-cluster: cannot reach admin endpoint: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


# ----------------------------------------------------------------------
# observability surfaces
# ----------------------------------------------------------------------
def _watch_once(args) -> int:
    from ..obs.cluster import ClusterScraper, TelemetryAggregator

    scraper = ClusterScraper(args.host, args.admin_port)
    try:
        scrape = scraper.scrape_sync()
    except (ConnectionError, OSError) as exc:
        print(f"repro-cluster: cannot reach admin endpoint: {exc}", file=sys.stderr)
        return 1
    view = TelemetryAggregator().fold(scrape)
    print(view.status_table())
    if getattr(args, "epochs", False):
        print()
        print(view.epoch_table())
    if args.prom:
        from ..obs.export import prometheus_text

        with open(args.prom, "w", encoding="utf-8") as fp:
            fp.write(prometheus_text(view.registry))
    return 0


def _cmd_watch(args) -> int:
    import time

    if args.interval is None:
        return _watch_once(args)
    try:
        while True:
            code = _watch_once(args)
            if code != 0:
                return code
            print()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_profile(args) -> int:
    try:
        response = asyncio.run(
            _admin_request(args.host, args.admin_port, {"cmd": "profile"})
        )
    except (ConnectionError, OSError) as exc:
        print(f"repro-cluster: cannot reach admin endpoint: {exc}", file=sys.stderr)
        return 1
    if not response.get("ok"):
        print(json.dumps(response, indent=2, sort_keys=True))
        return 1
    profile = response.get("profile")
    if profile is None:
        print(
            "repro-cluster: cluster is not profiling "
            f"(launch with --profile; available={response.get('available')})",
            file=sys.stderr,
        )
        return 1
    if args.collapsed:
        for stack, count in sorted(
            (profile.get("stacks") or {}).items(), key=lambda kv: (-kv[1], kv[0])
        ):
            print(f"{stack} {count}")
        return 0
    print(json.dumps({k: v for k, v in profile.items() if k != "stacks"},
                     indent=2, sort_keys=True))
    return 0


def _cmd_postmortem(args) -> int:
    from ..obs.flight import postmortem, render_postmortem

    try:
        report = postmortem(args.directory)
    except (OSError, ValueError) as exc:
        print(f"repro-cluster: cannot load snapshots: {exc}", file=sys.stderr)
        return 1
    if not report["snapshots"]:
        print(
            f"repro-cluster: no flight-*.jsonl snapshots in {args.directory}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_postmortem(report, limit=args.limit))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "status":
        return _cmd_admin(args, {"cmd": "status"})
    if args.command == "kill-node":
        return _cmd_admin(args, {"cmd": "kill-node", "node": args.node})
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "postmortem":
        return _cmd_postmortem(args)
    raise SystemExit(2)


if __name__ == "__main__":
    raise SystemExit(main())
