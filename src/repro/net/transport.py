"""Transports: how framed control messages move between node runtimes.

Two implementations of one :class:`Transport` surface:

* :class:`LoopbackTransport` — an in-process hub.  Messages still go
  through the full encode → bytes → decode path (so codec bugs cannot
  hide), but delivery is a ``loop.call_soon``; unit and equivalence
  tests need no ports, no listeners, no reconnect races.
* :class:`TcpTransport` — real sockets.  Each node runs one asyncio
  server; each directed peer link is an outbound connection owned by a
  writer task with a bounded outbox, capped-exponential-backoff
  redials, and head-retransmit on connection loss (at-least-once — the
  receiving role's :class:`~repro.intervals.queues.ReorderBuffer`
  already rejects duplicates by ``transport_seq``, which the runtime
  turns into a counted, non-fatal event).

Backpressure is explicit: every link's outbox is bounded.  Crossing the
high watermark flips the link to a "congested" state (gauge + event);
hitting ``max_outbox`` drops the *newest* message and counts it under
``repro_net_outbox_dropped_total`` — detection stays correct because
interval reports are retried end-to-end by sequence-numbered
retransmission at the role layer's reorder semantics, and because a
drop here models exactly the lossy-channel case the paper's detector
already survives.

The sim :class:`~repro.sim.network.Network` registers
``repro_net_sent_total`` etc. with different labels, so the socket
metrics use their own distinct names (``repro_net_bytes_sent_total``,
``repro_net_frames_total``, …) and both stacks can share one registry.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from .codec import ACK_TYPE, CODEC_VERSION, HELLO_TYPE, FrameCodec

__all__ = [
    "Transport",
    "LoopbackHub",
    "LoopbackTransport",
    "TcpTransport",
    "SEND_LATENCY_BUCKETS",
    "ACK_TYPE",
]

#: Wall-clock send-latency buckets (seconds): localhost frames land in
#: sub-millisecond territory; the tail covers backoff-redial stalls.
SEND_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, float("inf"),
)

#: Inbound dispatch callback.  Transports call receivers as
#: ``(src, message, meta)`` where ``meta`` is the frame's optional
#: ``_meta`` sidecar; two-argument callables are adapted automatically
#: (:func:`_adapt_receiver`), so simple ``lambda src, msg: …`` receivers
#: keep working.
Receiver = Callable[..., None]


def _adapt_receiver(receiver: Receiver) -> Callable[[int, object, Optional[dict]], None]:
    """Wrap a 2-arg receiver so transports can always pass the frame
    meta sidecar as a third argument."""
    try:
        parameters = inspect.signature(receiver).parameters.values()
    except (TypeError, ValueError):  # builtins, C callables: assume modern
        return receiver
    if any(p.kind == p.VAR_POSITIONAL for p in parameters):
        return receiver
    positional = [
        p for p in parameters if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if len(positional) >= 3:
        return receiver
    return lambda src, message, meta=None: receiver(src, message)


class Transport(Protocol):
    """What a :class:`~repro.net.runtime.NodeRuntime` needs from its
    message plane."""

    node_id: int

    def set_receiver(self, receiver: Receiver) -> None:
        """Install the inbound dispatch callback ``(src, message[, meta])``."""

    def send(self, dst: int, message: object, meta: Optional[dict] = None) -> None:
        """Enqueue *message* for *dst* (non-blocking, fire-and-forget).
        ``meta`` is an optional JSON-safe frame sidecar delivered to the
        peer's receiver alongside the message."""

    async def start(self) -> None:
        """Bring the transport up (bind listeners, join the hub)."""

    async def stop(self) -> None:
        """Tear everything down; no callbacks fire afterwards."""

    async def drain(self) -> None:
        """Wait until queued outbound traffic is flushed."""

    def drop_peer(self, peer: int) -> None:
        """Forget *peer*: discard its outbox and stop redialling it."""


class _Instruments:
    """The socket-plane metric family, shared by both transports.

    ``clock`` may be a whole :class:`AsyncClock` or a per-node
    :class:`~repro.net.clock.ClockScope` — metrics land in whichever
    registry that handle owns."""

    def __init__(self, clock) -> None:
        registry = clock.telemetry.registry
        self.bytes_sent = registry.counter_vec(
            "repro_net_bytes_sent_total",
            "Socket-plane bytes written, per node.",
            ("node",),
        )
        self.bytes_received = registry.counter_vec(
            "repro_net_bytes_received_total",
            "Socket-plane bytes read, per node.",
            ("node",),
        )
        self.frames = registry.counter_vec(
            "repro_net_frames_total",
            "Frames moved on the socket plane.",
            ("node", "direction", "type"),
        )
        self.reconnects = registry.counter_vec(
            "repro_net_reconnects_total",
            "Peer-link (re)connections established.",
            ("node",),
        )
        self.dropped = registry.counter_vec(
            "repro_net_outbox_dropped_total",
            "Outbound messages dropped by the bounded outbox.",
            ("node", "reason"),
        )
        self.outbox_depth = clock.telemetry.registry.gauge_vec(
            "repro_net_outbox_depth",
            "Messages waiting in a peer link's outbox.",
            ("node", "peer"),
        )
        self.send_latency = registry.histogram(
            "repro_net_send_latency_seconds",
            "Wall seconds from enqueue to successful socket write.",
            SEND_LATENCY_BUCKETS,
        )
        self.bytes_by_type = registry.counter_vec(
            "repro_net_bytes_total",
            "Socket-plane bytes written, per node and frame type.",
            ("node", "type"),
        )
        self.acks = registry.counter_vec(
            "repro_net_acks_total",
            "Cumulative ack frames written by inbound handlers.",
            ("node",),
        )
        self.congested_seconds = registry.counter_vec(
            "repro_net_congested_seconds_total",
            "Wall seconds a peer link spent above its congestion "
            "watermark (accumulated on each uncongest edge and at "
            "link teardown).",
            ("node", "peer"),
        )
        # Per-frame accounting runs once per message on the wire, so
        # label keys are resolved once and the bound handles cached.
        self._frame_handles: Dict[tuple, Callable[..., None]] = {}
        self._byte_handles: Dict[tuple, Callable[..., None]] = {}

    def _frame_handle(self, key: tuple) -> Callable[..., None]:
        handle = self._frame_handles.get(key)
        if handle is None:
            handle = self._frame_handles[key] = self.frames.handle(key)
        return handle

    def _byte_handle(self, vec, node: int, direction: str) -> Callable[..., None]:
        cache_key = (node, direction)
        handle = self._byte_handles.get(cache_key)
        if handle is None:
            handle = self._byte_handles[cache_key] = vec.handle(node)
        return handle

    def sent(self, node: int, message: object, nbytes: int) -> None:
        self._byte_handle(self.bytes_sent, node, "out")(nbytes)
        kind = type(message).__name__
        self._frame_handle((node, "out", kind))()
        self._typed_byte_handle(node, kind)(nbytes)

    def _typed_byte_handle(self, node: int, kind: str) -> Callable[..., None]:
        cache_key = (node, "type", kind)
        handle = self._byte_handles.get(cache_key)
        if handle is None:
            handle = self._byte_handles[cache_key] = self.bytes_by_type.handle(
                (node, kind)
            )
        return handle

    def received(self, node: int, message: object, nbytes: int = 0) -> None:
        if nbytes:
            self._byte_handle(self.bytes_received, node, "in")(nbytes)
        self._frame_handle((node, "in", type(message).__name__))()


# ----------------------------------------------------------------------
# loopback
# ----------------------------------------------------------------------
class LoopbackHub:
    """The shared "wire" of an in-process cluster: a registry of
    transports plus same-loop delivery."""

    def __init__(self) -> None:
        self.transports: Dict[int, "LoopbackTransport"] = {}

    def attach(self, transport: "LoopbackTransport") -> None:
        self.transports[transport.node_id] = transport

    def detach(self, node_id: int) -> None:
        self.transports.pop(node_id, None)


class LoopbackTransport:
    """In-process transport: full codec path, zero sockets.

    Each directed pair keeps its own encoder/decoder codec (mirroring
    one TCP connection per direction), so differential-timestamp
    references behave exactly as they would on the wire.
    """

    def __init__(
        self,
        node_id: int,
        hub: LoopbackHub,
        clock,
        *,
        codec_factory: Callable[[], FrameCodec] = FrameCodec,
        max_outbox: int = 4096,
        high_water: int = 1024,
        low_water: int = 256,
    ) -> None:
        if not 0 < low_water <= high_water <= max_outbox:
            raise ValueError(
                "watermarks must satisfy 0 < low_water <= high_water <= max_outbox"
            )
        self.node_id = node_id
        self.hub = hub
        self.clock = clock
        self.codec_factory = codec_factory
        #: Same bounded-outbox contract as :class:`TcpTransport` (same
        #: defaults, same events, same drop reason) over the per-tick
        #: flush buffer: a burst that outruns one loop tick crosses the
        #: high watermark, overflows drop at ``max_outbox``, and the
        #: tick's flush empties the buffer — which is at or below
        #: ``low_water``, the uncongest edge.
        self.max_outbox = max_outbox
        self.high_water = high_water
        self.low_water = low_water
        self.instruments = _Instruments(clock)
        self.receiver: Optional[Receiver] = None
        self._encoders: Dict[int, FrameCodec] = {}
        self._decoders: Dict[int, FrameCodec] = {}
        self._outbufs: Dict[int, bytearray] = {}
        self._depths: Dict[int, int] = {}
        self._congested_since: Dict[int, float] = {}
        self._flush_scheduled: set = set()
        self._running = False

    def set_receiver(self, receiver: Receiver) -> None:
        self.receiver = _adapt_receiver(receiver)

    async def start(self) -> None:
        self.hub.attach(self)
        self._running = True

    async def stop(self) -> None:
        self._running = False
        for dst in list(self._congested_since):
            self._uncongest(dst)
        self.hub.detach(self.node_id)

    async def drain(self) -> None:
        # Frames batch per destination and flush on the next loop tick;
        # yielding twice covers the flush callback plus its delivery.
        await asyncio.sleep(0)
        await asyncio.sleep(0)

    def drop_peer(self, peer: int) -> None:
        self._encoders.pop(peer, None)
        self._decoders.pop(peer, None)
        self._outbufs.pop(peer, None)
        self._depths.pop(peer, None)
        if peer in self._congested_since:
            self._uncongest(peer)

    def congested_peers(self) -> Tuple[int, ...]:
        """Peers whose flush buffer currently sits above high water."""
        return tuple(sorted(self._congested_since))

    def _uncongest(self, dst: int) -> None:
        since = self._congested_since.pop(dst)
        self.instruments.congested_seconds[(self.node_id, dst)] += max(
            0.0, self.clock.now - since
        )
        self.clock.emit("net_uncongested", node=self.node_id, peer=dst)

    def send(self, dst: int, message: object, meta: Optional[dict] = None) -> None:
        if not self._running:
            return
        peer = self.hub.transports.get(dst)
        if peer is None or not peer._running:
            self.instruments.dropped[(self.node_id, "peer-down")] += 1
            return
        depth = self._depths.get(dst, 0)
        if depth >= self.max_outbox:
            self.instruments.dropped[(self.node_id, "outbox-full")] += 1
            return
        codec = self._encoders.get(dst)
        if codec is None:
            codec = self._encoders[dst] = self.codec_factory()
        frame = codec.encode(message, meta)
        self.instruments.sent(self.node_id, message, len(frame))
        # Mirror the TCP writer's flush batching: frames accumulate per
        # destination and one callback per loop tick delivers the whole
        # batch through the decoder in a single feed.
        buffer = self._outbufs.get(dst)
        if buffer is None:
            buffer = self._outbufs[dst] = bytearray()
        buffer += frame
        depth += 1
        self._depths[dst] = depth
        self.instruments.outbox_depth[(self.node_id, dst)] = depth
        if depth >= self.high_water and dst not in self._congested_since:
            self._congested_since[dst] = self.clock.now
            self.clock.emit(
                "net_congested", node=self.node_id, peer=dst, depth=depth
            )
        if dst not in self._flush_scheduled:
            self._flush_scheduled.add(dst)
            asyncio.get_running_loop().call_soon(self._flush, dst)

    def _flush(self, dst: int) -> None:
        self._flush_scheduled.discard(dst)
        data = self._outbufs.pop(dst, None)
        self._depths[dst] = 0
        self.instruments.outbox_depth[(self.node_id, dst)] = 0
        if dst in self._congested_since:
            self._uncongest(dst)
        if not data or not self._running:
            return
        peer = self.hub.transports.get(dst)
        if peer is not None and peer._running:
            peer._deliver(self.node_id, bytes(data))

    def _deliver(self, src: int, data: bytes) -> None:
        if not self._running or self.receiver is None:
            return
        codec = self._decoders.get(src)
        if codec is None:
            codec = self._decoders[src] = self.codec_factory()
        nbytes = len(data)
        for message, meta in codec.feed_meta(data):
            self.instruments.received(self.node_id, message, nbytes)
            nbytes = 0  # count batch bytes once, frames per message
            self.receiver(src, message, meta)


# ----------------------------------------------------------------------
# tcp
# ----------------------------------------------------------------------
class _PeerLink:
    """One directed outbound connection: bounded outbox + writer task.

    The writer dials with capped exponential backoff (jittered from the
    owning node's deterministic rng stream), sends a hello meta-frame,
    then drains the outbox.  Messages are *encoded at write time* with
    the connection's fresh codec and removed from the outbox only when
    the receiver's cumulative ack covers them — a TCP write can succeed
    into the kernel buffer of an already-dead connection, so
    pop-on-write would silently lose the frame.  Everything unacked when
    a connection dies is re-encoded and retransmitted on the next one
    (at-least-once; the receiver's reorder buffer drops duplicates by
    ``transport_seq``).
    """

    def __init__(self, owner: "TcpTransport", peer: int, address: Tuple[str, int]):
        self.owner = owner
        self.peer = peer
        self.address = address
        self.pending: List[Tuple[float, object, Optional[dict]]] = []
        self.wake = asyncio.Event()
        self.congested = False
        self._congested_since: Optional[float] = None
        self.task: Optional[asyncio.Task] = None
        self.closing = False
        # Per-connection state: pending[:_sent] is written-but-unacked.
        self._sent = 0
        self._acked = 0

    # -- queueing ------------------------------------------------------
    def enqueue(self, message: object, meta: Optional[dict] = None) -> None:
        owner = self.owner
        if len(self.pending) >= owner.max_outbox:
            owner.instruments.dropped[(owner.node_id, "outbox-full")] += 1
            return
        self.pending.append((owner.clock.now, message, meta))
        depth = len(self.pending)
        owner.instruments.outbox_depth[(owner.node_id, self.peer)] = depth
        if depth >= owner.high_water and not self.congested:
            self.congested = True
            self._congested_since = owner.clock.now
            owner.clock.emit(
                "net_congested", node=owner.node_id, peer=self.peer, depth=depth
            )
        self.wake.set()

    def _settle_congestion(self) -> None:
        """Fold the current congestion episode into the per-link
        ``repro_net_congested_seconds_total`` counter."""
        owner = self.owner
        if self._congested_since is not None:
            owner.instruments.congested_seconds[(owner.node_id, self.peer)] += max(
                0.0, owner.clock.now - self._congested_since
            )
            self._congested_since = None

    def _after_pop(self) -> None:
        owner = self.owner
        depth = len(self.pending)
        owner.instruments.outbox_depth[(owner.node_id, self.peer)] = depth
        if self.congested and depth <= owner.low_water:
            self.congested = False
            self._settle_congestion()
            owner.clock.emit("net_uncongested", node=owner.node_id, peer=self.peer)

    # -- writer task ---------------------------------------------------
    async def run(self) -> None:
        owner = self.owner
        backoff = owner.backoff_base
        rng = owner.clock.rng(f"net-backoff-{owner.node_id}")
        while not self.closing:
            try:
                reader, writer = await asyncio.open_connection(*self.address)
            except OSError:
                await asyncio.sleep(backoff * (1.0 + float(rng.random())))
                backoff = min(backoff * 2.0, owner.backoff_cap)
                continue
            backoff = owner.backoff_base
            owner.instruments.reconnects[owner.node_id] += 1
            codec = owner.codec_factory()
            self._sent = 0
            self._acked = 0
            pump = ack_loop = None
            try:
                writer.write(
                    codec.encode(
                        {
                            "type": HELLO_TYPE,
                            "node": owner.node_id,
                            "wire": codec.wire,
                            "codec": CODEC_VERSION,
                        }
                    )
                )
                await writer.drain()
                # The pump writes, the ack loop confirms (and doubles as
                # the connection-death detector via read EOF).  Either
                # one finishing means this connection is over.
                pump = asyncio.ensure_future(self._pump(writer, codec))
                ack_loop = asyncio.ensure_future(self._read_acks(reader))
                await asyncio.wait(
                    {pump, ack_loop}, return_when=asyncio.FIRST_COMPLETED
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                pass
            finally:
                for task in (pump, ack_loop):
                    if task is not None:
                        task.cancel()
                await asyncio.gather(
                    *(t for t in (pump, ack_loop) if t is not None),
                    return_exceptions=True,
                )
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError, asyncio.CancelledError):
                    pass
            if not self.closing:
                owner.clock.emit(
                    "net_connection_lost", node=owner.node_id, peer=self.peer
                )

    async def _pump(self, writer: asyncio.StreamWriter, codec: FrameCodec) -> None:
        """Encode pending messages in batches and flush each batch with
        a single write + drain: per-frame syscall cost amortizes over up
        to ``flush_frames`` frames (or ``flush_bytes`` bytes) without
        changing the ordered stream the codec references require."""
        owner = self.owner
        while not self.closing:
            if self._sent >= len(self.pending):
                self.wake.clear()
                if self._sent < len(self.pending):
                    continue
                await self.wake.wait()
                continue
            batch: List[bytes] = []
            messages: List[object] = []
            size = 0
            while (
                self._sent + len(batch) < len(self.pending)
                and len(batch) < owner.flush_frames
                and size < owner.flush_bytes
            ):
                _, message, meta = self.pending[self._sent + len(batch)]
                frame = codec.encode(message, meta)
                batch.append(frame)
                messages.append(message)
                size += len(frame)
            writer.write(b"".join(batch))
            await writer.drain()
            self._sent += len(batch)
            for message, frame in zip(messages, batch):
                owner.instruments.sent(owner.node_id, message, len(frame))

    async def _read_acks(self, reader: asyncio.StreamReader) -> None:
        owner = self.owner
        codec = owner.codec_factory()
        while not self.closing:
            data = await reader.read(65536)
            if not data:
                return  # EOF: the peer (or its listener) went away
            for meta in codec.feed(data):
                if not (isinstance(meta, dict) and meta.get("type") == ACK_TYPE):
                    continue
                target = int(meta["n"])
                while self._acked < target and self._sent > 0 and self.pending:
                    enqueued_at, _, _ = self.pending.pop(0)
                    self._acked += 1
                    self._sent -= 1
                    owner.instruments.send_latency.observe(
                        owner.clock.now - enqueued_at
                    )
                    self._after_pop()

    def close(self) -> None:
        self.closing = True
        self._settle_congestion()
        self.wake.set()
        if self.task is not None:
            self.task.cancel()


class TcpTransport:
    """Real-socket transport: one listener per node, one outbound link
    per peer.

    Startup is two-phase so a cluster can bind every listener on an
    ephemeral port first (``await start()``; read ``.address``) and
    wire the peer map afterwards (:meth:`set_peers`).
    """

    def __init__(
        self,
        node_id: int,
        clock,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        codec_factory: Callable[[], FrameCodec] = FrameCodec,
        max_outbox: int = 4096,
        high_water: int = 1024,
        low_water: int = 256,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        ack_every: int = 64,
        ack_delay: float = 0.002,
        flush_frames: int = 128,
        flush_bytes: int = 64 * 1024,
    ) -> None:
        if not 0 < low_water <= high_water <= max_outbox:
            raise ValueError(
                "watermarks must satisfy 0 < low_water <= high_water <= max_outbox"
            )
        if ack_every < 1 or flush_frames < 1 or flush_bytes < 1:
            raise ValueError("ack_every, flush_frames and flush_bytes must be >= 1")
        self.node_id = node_id
        self.clock = clock
        self.host = host
        self.port = port
        self.codec_factory = codec_factory
        self.max_outbox = max_outbox
        self.high_water = high_water
        self.low_water = low_water
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Coalesced-ack policy: an inbound connection acks after every
        #: ``ack_every`` message frames, or ``ack_delay`` seconds after
        #: the first unacked frame, whichever comes first (plus a final
        #: ack at connection teardown) — instead of one ack per read.
        self.ack_every = ack_every
        self.ack_delay = ack_delay
        #: Writer flush batching: cap on frames / bytes coalesced into a
        #: single socket write.
        self.flush_frames = flush_frames
        self.flush_bytes = flush_bytes
        #: Peer node id -> ``{"node", "wire", "codec"}`` from the last
        #: ``__hello__`` received on an inbound connection (older peers
        #: that do not advertise default to the legacy JSON wire).
        self.negotiated: Dict[int, Dict[str, object]] = {}
        self.instruments = _Instruments(clock)
        self.receiver: Optional[Receiver] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._links: Dict[int, _PeerLink] = {}
        self._inbound: List[asyncio.Task] = []
        self._running = False

    # ------------------------------------------------------------------
    def set_receiver(self, receiver: Receiver) -> None:
        self.receiver = _adapt_receiver(receiver)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound listen address (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("transport not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_inbound, host=self.host, port=self.port
        )
        self._running = True

    def set_peers(self, addresses: Dict[int, Tuple[str, int]]) -> None:
        """Install the peer map and start one writer task per peer."""
        loop = asyncio.get_running_loop()
        for peer, address in sorted(addresses.items()):
            if peer == self.node_id or peer in self._links:
                continue
            link = _PeerLink(self, peer, address)
            link.task = loop.create_task(link.run())
            self._links[peer] = link

    async def stop(self) -> None:
        self._running = False
        for link in self._links.values():
            link.close()
        tasks = [link.task for link in self._links.values() if link.task]
        self._links.clear()
        for task in self._inbound:
            task.cancel()
        await asyncio.gather(*tasks, *self._inbound, return_exceptions=True)
        self._inbound.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, *, poll: float = 0.005) -> None:
        while any(link.pending for link in self._links.values()):
            await asyncio.sleep(poll)

    def drop_peer(self, peer: int) -> None:
        link = self._links.pop(peer, None)
        if link is not None:
            link.close()

    def congested_peers(self) -> Tuple[int, ...]:
        """Peers whose outbound link currently sits above its high
        watermark — the snapshot the traffic plane's admission gate
        probes before pushing more offers at this node."""
        return tuple(
            sorted(peer for peer, link in self._links.items() if link.congested)
        )

    # ------------------------------------------------------------------
    def send(self, dst: int, message: object, meta: Optional[dict] = None) -> None:
        if not self._running:
            return
        link = self._links.get(dst)
        if link is None:
            self.instruments.dropped[(self.node_id, "no-route")] += 1
            return
        link.enqueue(message, meta)

    # ------------------------------------------------------------------
    async def _handle_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inbound.append(task)
        codec = self.codec_factory()
        ack_codec = self.codec_factory()
        src: Optional[int] = None
        received = 0  # message frames on this connection, acked cumulatively
        acked = 0  # highest cumulative count already acked
        ack_timer: Optional[asyncio.TimerHandle] = None
        loop = asyncio.get_running_loop()

        def flush_ack() -> None:
            """Write one cumulative ack covering every unacked frame.
            Runs inline (threshold crossings, teardown) and from the
            delayed-ack timer."""
            nonlocal acked, ack_timer
            if ack_timer is not None:
                ack_timer.cancel()
                ack_timer = None
            if received <= acked or writer.is_closing():
                return
            frame = ack_codec.encode({"type": ACK_TYPE, "n": received})
            writer.write(frame)
            acked = received
            self.instruments.acks[self.node_id] += 1
            self.instruments._typed_byte_handle(self.node_id, ACK_TYPE)(len(frame))

        try:
            while self._running:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                self.instruments.bytes_received[self.node_id] += len(chunk)
                for message, meta in codec.feed_meta(chunk):
                    if isinstance(message, dict):
                        if message.get("type") == HELLO_TYPE:
                            src = int(message["node"])
                            self.negotiated[src] = {
                                "node": src,
                                "wire": str(message.get("wire", "json")),
                                "codec": int(message.get("codec", 0)),
                            }
                        continue
                    if src is None:
                        # Peer skipped the handshake; nothing sane to do.
                        self.clock.emit("net_anonymous_frame", node=self.node_id)
                        continue
                    received += 1
                    self.instruments.received(self.node_id, message)
                    if self.receiver is not None:
                        try:
                            self.receiver(src, message, meta)
                        except Exception as exc:  # noqa: BLE001 — keep the link up
                            self.clock.emit(
                                "net_receiver_error",
                                node=self.node_id,
                                src=src,
                                error=repr(exc),
                            )
                # Coalesced acks: one cumulative ack per ack_every
                # frames, else a delayed ack so a quiet stream still
                # confirms within ack_delay seconds.
                if received - acked >= self.ack_every:
                    flush_ack()
                    await writer.drain()
                elif received > acked and ack_timer is None:
                    ack_timer = loop.call_later(self.ack_delay, flush_ack)
        except (ConnectionError, OSError, ValueError, asyncio.CancelledError):
            pass
        finally:
            if ack_timer is not None:
                ack_timer.cancel()
            try:
                flush_ack()
                await writer.drain()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            if task is not None and task in self._inbound:
                self._inbound.remove(task)
