"""Communication-graph generators.

The paper targets large-scale, multi-hop networks — WSNs and modular
robotics — where the topology is far from a complete graph
(Section II-A).  These generators cover the configurations the
experiments and examples use; all return :class:`networkx.Graph` with
integer node labels ``0 … n-1`` and are deterministic given a seed.
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx
import numpy as np

__all__ = [
    "complete_topology",
    "grid_topology",
    "random_geometric_topology",
    "small_world_topology",
    "scale_free_topology",
    "tree_with_chords",
]


def complete_topology(n: int) -> nx.Graph:
    """All-pairs links — the classic (small) distributed-system model."""
    return nx.complete_graph(n)


def grid_topology(rows: int, cols: int) -> nx.Graph:
    """A ``rows × cols`` mesh, relabelled to integers row-major."""
    g = nx.grid_2d_graph(rows, cols)
    mapping = {(r, c): r * cols + c for r in range(rows) for c in range(cols)}
    return nx.relabel_nodes(g, mapping)


def random_geometric_topology(
    n: int, radius: Optional[float] = None, seed: int = 0
) -> nx.Graph:
    """A connected random geometric graph — the standard WSN model.

    Nodes are placed uniformly in the unit square and linked when
    within *radius*.  The default radius ``sqrt(2 log n / n)`` is just
    above the connectivity threshold; the radius is grown geometrically
    until the sample is connected, so the function always returns a
    connected graph.
    """
    if n == 1:
        g = nx.Graph()
        g.add_node(0)
        return g
    if radius is None:
        radius = math.sqrt(2.0 * math.log(max(n, 2)) / n)
    rng = np.random.default_rng(seed)
    pos = {i: (float(x), float(y)) for i, (x, y) in enumerate(rng.random((n, 2)))}
    r = radius
    for _ in range(32):
        g = nx.random_geometric_graph(n, r, pos=pos)
        if nx.is_connected(g):
            return g
        r *= 1.25
    raise RuntimeError("could not produce a connected geometric graph")


def small_world_topology(n: int, k: int = 4, rewire: float = 0.1, seed: int = 0) -> nx.Graph:
    """A connected Watts–Strogatz small-world graph.

    Models overlay/mesh networks with mostly-local links plus a few
    long-range shortcuts — a good stress case for tree repair, since
    shortcuts give orphan subtrees non-obvious reattachment points.
    """
    if n <= k:
        return complete_topology(n)
    return nx.connected_watts_strogatz_graph(n, k, rewire, tries=200, seed=seed)


def scale_free_topology(n: int, m: int = 2, seed: int = 0) -> nx.Graph:
    """A Barabási–Albert preferential-attachment graph (connected).

    Hub-heavy topologies make the BFS spanning tree shallow but
    high-degree — the regime where the hierarchical algorithm's ``d²``
    time factor is most visible against ``n``.
    """
    if n <= m:
        return complete_topology(n)
    return nx.barabasi_albert_graph(n, m, seed=seed)


def tree_with_chords(tree_graph: nx.Graph, extra_edges: int, seed: int = 0) -> nx.Graph:
    """Add *extra_edges* random chords to a tree's edge set.

    Failure experiments need the underlying graph to be denser than the
    spanning tree, otherwise a crash partitions the network and orphan
    subtrees cannot reattach (Section III-F assumes a surviving
    neighbour exists).
    """
    g = tree_graph.copy()
    nodes = sorted(g.nodes)
    rng = np.random.default_rng(seed)
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 100 * max(extra_edges, 1):
        u, v = rng.choice(nodes, size=2, replace=False)
        attempts += 1
        u, v = int(u), int(v)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    return g
