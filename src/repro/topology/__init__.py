"""Communication graphs, spanning trees and tree repair."""

from .graphs import (
    complete_topology,
    grid_topology,
    random_geometric_topology,
    scale_free_topology,
    small_world_topology,
    tree_with_chords,
)
from .protocol import TreeBuilder, TreeBuildMessage
from .repair import Attachment, RepairPlan, apply_repair, plan_repair
from .spanning_tree import SpanningTree, regular_tree_size

__all__ = [
    "Attachment",
    "RepairPlan",
    "SpanningTree",
    "TreeBuildMessage",
    "TreeBuilder",
    "apply_repair",
    "complete_topology",
    "grid_topology",
    "plan_repair",
    "random_geometric_topology",
    "regular_tree_size",
    "scale_free_topology",
    "small_world_topology",
    "tree_with_chords",
]
