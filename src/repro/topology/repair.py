"""Spanning-tree repair after a crash (Section III-F).

When ``P_i`` fails, its parent drops the corresponding queue, and every
subtree rooted at a child of ``P_i`` must "reconnect itself to the
system-wide spanning tree by establishing a link between a node in the
subtree and its neighbor which is still in the spanning tree".

:func:`plan_repair` computes that reconnection deterministically from
the underlying communication graph:

* if the failed node was the root, the orphan subtree whose root has
  the smallest id is promoted to be the new global root;
* each remaining orphan subtree scans its members for graph-neighbours
  inside the already-connected component, preferring the attachment
  point of smallest tree depth (keeping the tree shallow), then
  smallest ids for determinism;
* if the attachment edge leaves from an interior node of the orphan
  subtree, the subtree is re-rooted there first (the flipped edges are
  reported so detector queues along them can be reset);
* subtrees with no surviving link are *partitioned*: they keep running
  as independent detection domains rooted at the orphan — the
  hierarchical algorithm degrades to monitoring each partition's
  partial predicate, which is precisely the fault-tolerance property
  the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from .spanning_tree import SpanningTree

__all__ = ["Attachment", "RepairPlan", "plan_repair", "apply_repair"]


@dataclass(frozen=True)
class Attachment:
    """One orphan subtree's reconnection."""

    orphan: int  # former child of the failed node (old subtree root)
    subtree_root: int  # root after any re-rooting (== orphan if none)
    new_parent: int  # surviving node adopting the subtree
    flipped_edges: Tuple[Tuple[int, int], ...] = ()  # (former_parent, former_child)


@dataclass
class RepairPlan:
    """The outcome of repairing one failure."""

    failed: int
    old_parent: Optional[int]  # surviving parent that lost a child (None if root)
    new_root: Optional[int]  # promoted root when the failed node was the root
    attachments: List[Attachment] = field(default_factory=list)
    partitioned: List[int] = field(default_factory=list)  # orphan roots left detached


def plan_repair(
    tree: SpanningTree, graph: nx.Graph, failed: int
) -> Tuple[SpanningTree, RepairPlan]:
    """Compute the post-failure tree and the repair actions.

    The input *tree* is not modified; a repaired copy is returned along
    with the plan describing which roles must rewire.  *graph* is the
    underlying communication graph (it must contain the tree's edges).
    """
    if failed not in tree.parent:
        raise ValueError(f"{failed} is not in the tree")
    new_tree = SpanningTree(tree.root, dict(tree.parent))
    old_parent = new_tree.parent_of(failed)
    was_root = old_parent is None
    orphans = new_tree.remove_node(failed)
    plan = RepairPlan(failed=failed, old_parent=old_parent, new_root=None)

    connected: set = set()
    if was_root:
        if not orphans:
            # The whole (single-node) tree died.
            return new_tree, plan
        new_root = min(orphans)
        new_tree.set_root(new_root)
        plan.new_root = new_root
        orphans = [o for o in orphans if o != new_root]
        connected = set(new_tree.subtree_nodes(new_root))
    else:
        connected = set(new_tree.subtree_nodes(new_tree.root))

    # Deterministic order: smallest orphan id first.
    pending = sorted(orphans)
    progress = True
    while pending and progress:
        progress = False
        still_pending = []
        for orphan in pending:
            members = new_tree.subtree_nodes(orphan)
            best: Optional[Tuple[int, int, int, int]] = None  # (depth, parent, member)
            for member in members:
                for nb in graph.neighbors(member):
                    if nb in connected and nb != failed:
                        cand = (new_tree.depth(nb), nb, member)
                        if best is None or cand < best:
                            best = cand
            if best is None:
                still_pending.append(orphan)
                continue
            _, new_parent, attach_via = best
            flipped: Tuple[Tuple[int, int], ...] = ()
            subtree_root = orphan
            if attach_via != orphan:
                flipped = tuple(new_tree.reroot_subtree(orphan, attach_via))
                subtree_root = attach_via
            new_tree.attach(subtree_root, new_parent)
            connected.update(members)
            plan.attachments.append(
                Attachment(
                    orphan=orphan,
                    subtree_root=subtree_root,
                    new_parent=new_parent,
                    flipped_edges=flipped,
                )
            )
            progress = True
        pending = still_pending

    plan.partitioned = pending
    return new_tree, plan


def apply_repair(tree: SpanningTree, graph: nx.Graph, failed: int) -> RepairPlan:
    """In-place variant used by the simulation's repair oracle."""
    new_tree, plan = plan_repair(tree, graph, failed)
    tree.root = new_tree.root
    tree.parent = new_tree.parent
    tree._children = new_tree._children  # noqa: SLF001 - same class
    return plan
