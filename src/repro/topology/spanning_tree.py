"""Spanning trees — the detection hierarchy.

The paper assumes "a pre-constructed spanning tree in the system"
(Section III-A).  This module provides the tree abstraction the
detectors and experiments run on:

* regular ``(d, h)`` trees matching the complexity analysis of
  Section IV, where level 1 is the leaves and level ``h`` the root, so
  level ``i`` holds ``d^(h-i)`` nodes and ``n = (d^h - 1)/(d - 1)``
  (the paper approximates ``n = d^h``);
* BFS spanning trees over arbitrary connected communication graphs
  (the WSN case).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional

import networkx as nx

__all__ = ["SpanningTree", "regular_tree_size"]


def regular_tree_size(d: int, h: int) -> int:
    """Number of nodes in a complete ``d``-ary tree with ``h`` levels."""
    if d < 1 or h < 1:
        raise ValueError("need d >= 1 and h >= 1")
    if d == 1:
        return h
    return (d**h - 1) // (d - 1)


class SpanningTree:
    """A rooted spanning tree given by a parent map.

    The structure is mutable only through :meth:`detach_subtree` /
    :meth:`attach` / :meth:`remove_leaf_or_promote` — the operations
    tree repair needs — so invariants are re-checked at mutation sites
    rather than everywhere.
    """

    def __init__(self, root: int, parent: Dict[int, Optional[int]]) -> None:
        if parent.get(root, "missing") is not None:
            raise ValueError("root must map to None in the parent dict")
        self.root = root
        self.parent: Dict[int, Optional[int]] = dict(parent)
        self._children: Dict[int, List[int]] = {node: [] for node in parent}
        for node, par in parent.items():
            if par is not None:
                if par not in parent:
                    raise ValueError(f"parent {par} of {node} is not a tree node")
                self._children[par].append(node)
        for kids in self._children.values():
            kids.sort()
        self._validate()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def regular(cls, d: int, h: int) -> "SpanningTree":
        """Complete ``d``-ary tree with ``h`` levels, root ``0``, nodes
        numbered breadth-first."""
        n = regular_tree_size(d, h)
        parent: Dict[int, Optional[int]] = {0: None}
        if d == 1:
            for i in range(1, n):
                parent[i] = i - 1
        else:
            for i in range(1, n):
                parent[i] = (i - 1) // d
        return cls(0, parent)

    @classmethod
    def bfs(cls, graph: nx.Graph, root: int = 0) -> "SpanningTree":
        """Breadth-first spanning tree of a connected graph.

        BFS minimizes depth, which minimizes the height term in both
        message-complexity formulas — a reasonable default for a
        monitoring overlay.
        """
        if root not in graph:
            raise ValueError(f"root {root} not in graph")
        parent: Dict[int, Optional[int]] = {root: None}
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in sorted(graph.neighbors(u)):
                if v not in parent:
                    parent[v] = u
                    queue.append(v)
        if len(parent) != graph.number_of_nodes():
            raise ValueError("graph is not connected")
        return cls(root, parent)

    @classmethod
    def bfs_bounded(cls, graph: nx.Graph, root: int = 0, max_degree: int = 3) -> "SpanningTree":
        """BFS spanning tree with a per-node children bound.

        Section IV's complexity trades the tree degree ``d`` against its
        height ``h`` (messages ~ ``d^(h-1)``, per-node time ~ ``d²``).
        Plain BFS can produce hubs with huge fan-in (hurting the ``d²``
        term); this constructor caps adoptions per node, letting later
        frontier nodes adopt the remainder.  Nodes that no in-capacity
        frontier node can reach are attached to their earliest-visited
        neighbour regardless of the cap (connectivity beats the bound).
        """
        if root not in graph:
            raise ValueError(f"root {root} not in graph")
        if max_degree < 1:
            raise ValueError("max_degree must be >= 1")
        parent: Dict[int, Optional[int]] = {root: None}
        child_count: Dict[int, int] = {root: 0}
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in sorted(graph.neighbors(u)):
                if v in parent or child_count[u] >= max_degree:
                    continue
                parent[v] = u
                child_count[v] = 0
                child_count[u] += 1
                queue.append(v)
        # Connectivity fallback for nodes every candidate parent was too
        # full to adopt: attach to any visited neighbour, ignoring the cap.
        remaining = deque(
            sorted(v for v in graph.nodes if v not in parent)
        )
        stall = 0
        while remaining and stall <= len(remaining):
            v = remaining.popleft()
            adopter = next(
                (u for u in sorted(graph.neighbors(v)) if u in parent), None
            )
            if adopter is None:
                remaining.append(v)
                stall += 1
                continue
            parent[v] = adopter
            child_count[v] = 0
            stall = 0
        if len(parent) != graph.number_of_nodes():
            raise ValueError("graph is not connected")
        return cls(root, parent)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[int]:
        return sorted(self.parent)

    @property
    def n(self) -> int:
        return len(self.parent)

    def children(self, node: int) -> List[int]:
        return list(self._children[node])

    def parent_of(self, node: int) -> Optional[int]:
        return self.parent[node]

    def is_leaf(self, node: int) -> bool:
        return not self._children[node]

    def leaves(self) -> List[int]:
        return [node for node in self.nodes if self.is_leaf(node)]

    def depth(self, node: int) -> int:
        d = 0
        cur = node
        while self.parent[cur] is not None:
            cur = self.parent[cur]
            d += 1
        return d

    @property
    def height(self) -> int:
        """Number of levels (paper's ``h``): max depth + 1."""
        return max(self.depth(node) for node in self.nodes) + 1

    def level(self, node: int) -> int:
        """Paper's level numbering: leaves of a complete tree are
        level 1, the root is level ``h``."""
        return self.height - self.depth(node)

    @property
    def degree(self) -> int:
        """Paper's ``d``: maximum number of children of any node."""
        return max((len(kids) for kids in self._children.values()), default=0)

    def path_to_root(self, node: int) -> List[int]:
        """``[node, …, root]`` along tree edges."""
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def subtree_nodes(self, node: int) -> List[int]:
        out = []
        stack = [node]
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(self._children[u])
        return sorted(out)

    def iter_bfs(self) -> Iterator[int]:
        queue = deque([self.root])
        while queue:
            u = queue.popleft()
            yield u
            queue.extend(self._children[u])

    def as_graph(self) -> nx.Graph:
        """The tree's edge set as an undirected graph (a valid, minimal
        communication topology)."""
        g = nx.Graph()
        g.add_nodes_from(self.parent)
        g.add_edges_from(
            (node, par) for node, par in self.parent.items() if par is not None
        )
        return g

    # ------------------------------------------------------------------
    # mutation (tree repair)
    # ------------------------------------------------------------------
    def remove_node(self, node: int) -> List[int]:
        """Remove *node*; return its (now orphaned) former children.

        The orphans' subtrees stay internally intact but are detached
        from the tree until re-attached.  Removing the root leaves
        every former child orphaned; the caller picks a new root.
        """
        orphans = self.children(node)
        par = self.parent[node]
        if par is not None:
            self._children[par].remove(node)
        del self.parent[node]
        del self._children[node]
        for orphan in orphans:
            self.parent[orphan] = None
        return orphans

    def attach(self, child: int, new_parent: int) -> None:
        """Attach detached subtree root *child* below *new_parent*."""
        if self.parent.get(child, "missing") is not None:
            raise ValueError(f"{child} is not a detached subtree root")
        if new_parent not in self.parent:
            raise ValueError(f"{new_parent} is not in the tree")
        if new_parent in self.subtree_nodes(child):
            raise ValueError("attachment would create a cycle")
        self.parent[child] = new_parent
        self._children[new_parent].append(child)
        self._children[new_parent].sort()

    def add_leaf(self, node: int, parent: int) -> None:
        """Add *node* (not currently in the tree) as a leaf under
        *parent* — used when a recovered process rejoins."""
        if node in self.parent:
            raise ValueError(f"{node} is already in the tree")
        if parent not in self.parent:
            raise ValueError(f"{parent} is not in the tree")
        self.parent[node] = parent
        self._children[node] = []
        self._children[parent].append(node)
        self._children[parent].sort()

    def set_root(self, node: int) -> None:
        """Declare detached node *node* the (new) root."""
        if self.parent.get(node, "missing") is not None:
            raise ValueError(f"{node} is not detached")
        self.root = node

    def reroot_subtree(self, old_root: int, new_root: int) -> List[tuple]:
        """Re-root the detached subtree of *old_root* at *new_root*.

        Reverses parent/child pointers along the path between them and
        returns the list of ``(former_parent, former_child)`` edges that
        flipped — the fault layer uses it to reset the affected
        detectors' queues.
        """
        if self.parent.get(old_root, "missing") is not None:
            raise ValueError(f"{old_root} is not a detached subtree root")
        if new_root not in self.subtree_nodes(old_root):
            raise ValueError(f"{new_root} is not in {old_root}'s subtree")
        # path new_root -> old_root via parent pointers
        path = [new_root]
        while path[-1] != old_root:
            path.append(self.parent[path[-1]])
        flipped = []
        for child, par in zip(path, path[1:]):
            # reverse the edge: par becomes child of child
            self._children[par].remove(child)
            self._children[child].append(par)
            self._children[child].sort()
            self.parent[par] = child
            flipped.append((par, child))
        self.parent[new_root] = None
        return flipped

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        seen = set()
        for node in self.parent:
            cur = node
            hops = 0
            while self.parent[cur] is not None:
                cur = self.parent[cur]
                hops += 1
                if hops > len(self.parent):
                    raise ValueError("cycle in parent map")
            if cur != self.root:
                raise ValueError(f"node {node} does not reach the root")
            seen.add(node)
        if self.root not in seen:
            raise ValueError("root missing")
