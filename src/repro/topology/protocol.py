"""Distributed spanning-tree construction — the assumed substrate, built.

The paper "assumes a spanning tree is already constructed in the
network" (Section III-A).  This module removes that assumption for the
simulation: :class:`TreeBuilder` runs the classic asynchronous
flooding/BFS construction over the real (non-FIFO, delayed) network:

1. the designated root floods ``JOIN(depth=0)`` to its graph neighbours;
2. a node adopts the sender of the *first* ``JOIN`` it receives as its
   parent and floods ``JOIN(depth+1)`` onward; later ``JOIN``s are
   answered ``DECLINED``;
3. every flooded neighbour eventually answers with exactly one verdict:
   ``DECLINED`` (it joined through someone else) or ``DONE`` (it was
   adopted *and* its whole subtree is complete);
4. once all verdicts are in, the node sends its own ``DONE`` to its
   parent; the root's last verdict completes the tree.

A single verdict message per edge-direction makes the protocol immune
to the non-FIFO channels: with a separate "adopted" acknowledgement, a
fast subtree's completion could overtake the adoption notice and
deadlock the parent (a bug our first version had — caught by the
cycle-graph test, kept as a regression case).

Because message delays are random, the result is a *race-order* BFS
tree: correct (spanning, cycle-free, edges ⊆ graph edges) but not
necessarily minimum-depth — exactly what a real deployment would get.
The detection layer runs unchanged on top; tests verify the built tree
is always valid and that detection over it matches the oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

import networkx as nx

from ..sim.kernel import Simulator
from ..sim.network import Network
from .spanning_tree import SpanningTree

__all__ = ["TreeBuildMessage", "TreeBuilder"]


@dataclass(frozen=True)
class TreeBuildMessage:
    kind: str  # "join" | "declined" | "done"
    depth: int = 0


class _BuilderNode:
    """Per-node protocol state."""

    def __init__(self, pid: int, builder: "TreeBuilder") -> None:
        self.pid = pid
        self.builder = builder
        self.parent: Optional[int] = None
        self.joined = pid == builder.root
        self.depth = 0 if self.joined else -1
        self.children: List[int] = []
        self.awaiting: Set[int] = set()  # flooded neighbours, verdict pending
        self.reported_done = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.pid == self.builder.root:
            self._flood()

    def _neighbours(self) -> List[int]:
        return sorted(self.builder.graph.neighbors(self.pid))

    def _send(self, dst: int, message: TreeBuildMessage) -> None:
        self.builder.network.send(self.pid, dst, message, plane="control")

    def _flood(self) -> None:
        targets = [nb for nb in self._neighbours() if nb != self.parent]
        self.awaiting = set(targets)
        for nb in targets:
            self._send(nb, TreeBuildMessage("join", self.depth))
        self._maybe_done()

    def on_message(self, src: int, message: TreeBuildMessage) -> None:
        if message.kind == "join":
            if self.joined:
                self._send(src, TreeBuildMessage("declined"))
            else:
                self.joined = True
                self.parent = src
                self.depth = message.depth + 1
                self._flood()
        elif message.kind == "declined":
            self.awaiting.discard(src)
            self._maybe_done()
        elif message.kind == "done":
            # The one verdict that both acknowledges adoption and
            # certifies the child's subtree is complete.
            self.children.append(src)
            self.awaiting.discard(src)
            self._maybe_done()

    def _maybe_done(self) -> None:
        """A node is done once every flooded neighbour delivered its
        verdict (each flooded edge yields exactly one DECLINED or DONE)."""
        if self.reported_done or not self.joined or self.awaiting:
            return
        self.reported_done = True
        if self.parent is not None:
            self._send(self.parent, TreeBuildMessage("done"))
        else:
            self.builder._complete()


class TreeBuilder:
    """Drives the construction; call :meth:`start`, run the simulator,
    then read :attr:`tree` (or pass ``on_complete``)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        graph: nx.Graph,
        *,
        root: int = 0,
        on_complete: Optional[Callable[[SpanningTree], None]] = None,
    ) -> None:
        if root not in graph:
            raise ValueError(f"root {root} not in graph")
        self.sim = sim
        self.network = network
        self.graph = graph
        self.root = root
        self.on_complete = on_complete
        self.tree: Optional[SpanningTree] = None
        self.completed_at: Optional[float] = None
        self._nodes: Dict[int, _BuilderNode] = {
            pid: _BuilderNode(pid, self) for pid in graph.nodes
        }

    def start(self) -> None:
        for pid in self._nodes:
            self.network.attach(pid, self._make_handler(pid))
        self._nodes[self.root].start()

    def _make_handler(self, pid: int):
        def handler(src: int, message: object, plane: str) -> None:
            if isinstance(message, TreeBuildMessage):
                self._nodes[pid].on_message(src, message)

        return handler

    def _complete(self) -> None:
        parent = {pid: node.parent for pid, node in self._nodes.items() if node.joined}
        self.tree = SpanningTree(self.root, parent)
        self.completed_at = self.sim.now
        self.sim.emit("tree_built", node=self.root,
                      n=self.tree.n, height=self.tree.height)
        if self.on_complete is not None:
            self.on_complete(self.tree)
