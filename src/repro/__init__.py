"""repro — fault-tolerant hierarchical detection of strong conjunctive
predicates.

A production-quality reproduction of *"A Fault-Tolerant Strong
Conjunctive Predicate Detection Algorithm for Large-Scale Networks"*
(Shen & Kshemkalyani, IPDPSW 2013): the hierarchical repeated
``Definitely(Φ)`` detector (Algorithm 1) with interval aggregation
``⊓`` and fault-tolerant tree repair, the centralized and one-shot
baselines it is compared against, a deterministic discrete-event
simulation substrate, offline ground-truth oracles, and the harness
regenerating the paper's Table I and Figures 4–5.

Quick start::

    from repro import SpanningTree, run_hierarchical

    tree = SpanningTree.regular(d=2, h=3)       # 7 nodes
    result = run_hierarchical(tree, seed=1)
    for record in result.detections:
        print(record.time, sorted(record.members))

See ``examples/`` for richer scenarios and ``DESIGN.md`` for the
architecture.
"""

from .analysis import (
    RunMetrics,
    centralized_messages,
    centralized_messages_paper_eq14,
    hierarchical_messages,
    table1_rows,
    tree_nodes,
)
from .clocks import Cut, Timestamp, VectorClock, freeze, join, meet, vc_less
from .detect import (
    CentralizedSinkCore,
    DetectionRecord,
    HierarchicalNodeCore,
    OneShotDefinitelyCore,
    PossiblyCore,
    RepeatedDetectionCore,
    Solution,
    holds_definitely,
    lattice_definitely,
    lattice_possibly,
    replay_centralized,
)
from .experiments import run_centralized, run_hierarchical, run_table1
from .intervals import Interval, aggregate, overlap, possibly
from .monitor import ConjunctivePredicate, DistributedMonitor
from .obs import (
    MetricsRegistry,
    SpanTracker,
    Telemetry,
    chrome_trace,
    eventlog_to_jsonl,
    prometheus_text,
)
from .sim import EventLog, ExecutionTrace, MonitoredProcess, Network, Simulator
from .topology import SpanningTree, plan_repair, random_geometric_topology
from .workload import (
    EpochConfig,
    ScriptedExecution,
    figure1_staggered_execution,
    figure2_execution,
    figure3_execution,
)

__version__ = "1.0.0"

__all__ = [
    "CentralizedSinkCore",
    "ConjunctivePredicate",
    "Cut",
    "DetectionRecord",
    "DistributedMonitor",
    "EpochConfig",
    "EventLog",
    "ExecutionTrace",
    "HierarchicalNodeCore",
    "Interval",
    "MetricsRegistry",
    "MonitoredProcess",
    "Network",
    "OneShotDefinitelyCore",
    "PossiblyCore",
    "RepeatedDetectionCore",
    "RunMetrics",
    "ScriptedExecution",
    "Simulator",
    "Solution",
    "SpanTracker",
    "SpanningTree",
    "Telemetry",
    "Timestamp",
    "VectorClock",
    "aggregate",
    "centralized_messages",
    "centralized_messages_paper_eq14",
    "chrome_trace",
    "eventlog_to_jsonl",
    "figure1_staggered_execution",
    "figure2_execution",
    "figure3_execution",
    "freeze",
    "hierarchical_messages",
    "holds_definitely",
    "join",
    "lattice_definitely",
    "lattice_possibly",
    "meet",
    "overlap",
    "plan_repair",
    "possibly",
    "prometheus_text",
    "random_geometric_topology",
    "replay_centralized",
    "run_centralized",
    "run_hierarchical",
    "run_table1",
    "table1_rows",
    "tree_nodes",
    "vc_less",
]
