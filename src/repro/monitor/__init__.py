"""User-facing monitoring façade: predicates over local variables,
alarms on every ``Definitely(Φ)`` satisfaction, crash-survivable."""

from .api import DistributedMonitor, VariableProcess
from .spec import ConjunctivePredicate, HeartbeatSpec, LocalClause, SLOSpec

__all__ = [
    "ConjunctivePredicate",
    "DistributedMonitor",
    "HeartbeatSpec",
    "LocalClause",
    "SLOSpec",
    "VariableProcess",
]
