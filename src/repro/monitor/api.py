"""The monitoring façade — the library's top-level user API.

:class:`DistributedMonitor` assembles the whole stack (simulator,
network, spanning tree, detector roles, heartbeats, repair) behind an
imperative scenario interface:

```python
from repro.monitor import ConjunctivePredicate, DistributedMonitor
from repro.topology import random_geometric_topology

graph = random_geometric_topology(20, seed=1)
monitor = DistributedMonitor(
    graph,
    ConjunctivePredicate.threshold(range(20), "temp", gt=30.0),
    seed=1,
)
monitor.on_alarm(lambda record: print("ALARM", sorted(record.members)))

for pid in range(20):
    monitor.at(5.0 + pid * 0.1, monitor.setter(pid, "temp", 35.0))
monitor.enable_gossip(rate=0.5)          # causality carrier
monitor.at(40.0, monitor.setter(0, "temp", 20.0))
monitor.run(until=120.0)
```

Every local variable update is an application event: the process's
clause is re-evaluated, predicate edges open/close intervals, and the
hierarchical detector raises an alarm for every satisfaction of
``Definitely(Φ)`` — repeatedly, and across node crashes
(:meth:`crash`).  ``Definitely`` needs causal overlap, so scenarios
must move *some* application messages; :meth:`enable_gossip` provides a
generic carrier, :meth:`send` a precise one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import networkx as nx

from ..detect.roles import DetectionRecord, HierarchicalRole
from ..fault.coordinator import RepairCoordinator
from ..fault.injector import FailureInjector
from ..sim.kernel import Simulator
from ..sim.network import DelayModel, Network, uniform_delay
from ..sim.process import MonitoredProcess
from ..sim.trace import ExecutionTrace
from ..topology.spanning_tree import SpanningTree
from .spec import ConjunctivePredicate, HeartbeatSpec

__all__ = ["VariableProcess", "DistributedMonitor"]


class VariableProcess(MonitoredProcess):
    """A monitored process holding named local variables.

    Every update is an internal application event; the local clause is
    re-evaluated and the predicate edge recorded on that same event, so
    intervals line up exactly with the variable history.
    """

    def __init__(self, pid, sim, network, trace, role, predicate: ConjunctivePredicate):
        super().__init__(pid, sim, network, trace, role)
        self.variables: Dict[str, object] = {}
        self.spec = predicate

    def _reevaluate(self) -> None:
        value = self.spec.evaluate(self.pid, self.variables)
        if value != self.predicate:
            self.set_predicate(value)
        else:
            self.internal_event()

    def set_variable(self, name: str, value: object) -> None:
        if not self.alive:
            return
        self.variables[name] = value
        self._reevaluate()

    def on_app_message(self, src, payload, ts) -> None:
        # Gossip may carry variable snapshots; scenarios can subclass
        # for richer application semantics.
        pass


class DistributedMonitor:
    """Continuous hierarchical ``Definitely(Φ)`` monitoring over a graph."""

    def __init__(
        self,
        graph: nx.Graph,
        predicate: ConjunctivePredicate,
        *,
        root: int = 0,
        seed: int = 0,
        delay_model: Optional[DelayModel] = None,
        heartbeat: Optional[tuple] = (5.0, 16.0),
    ) -> None:
        heartbeat = HeartbeatSpec.coerce(heartbeat)
        pids = sorted(graph.nodes)
        if predicate.processes != pids:
            raise ValueError(
                "predicate must define one clause per graph node "
                f"(got {predicate.processes}, graph has {pids})"
            )
        self.graph = graph
        self.predicate = predicate
        self.tree = SpanningTree.bfs(graph, root=root)
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, graph, delay_model or uniform_delay())
        self.trace = ExecutionTrace(len(pids))
        self.alarms: List[DetectionRecord] = []
        self._alarm_callbacks: List[Callable[[DetectionRecord], None]] = []
        self._group_callbacks: List[Callable[[int, object], None]] = []

        self.roles: Dict[int, HierarchicalRole] = {}
        self.coordinator = RepairCoordinator(
            self.sim, self.tree, graph, self.roles, is_alive=self.network.is_alive
        )
        for pid in self.tree.nodes:
            self.roles[pid] = HierarchicalRole(
                self.tree.parent_of(pid),
                self.tree.children(pid),
                heartbeat=heartbeat,
                coordinator=self.coordinator if heartbeat else None,
                on_detection=self._dispatch_alarm,
                on_subtree_solution=self._dispatch_group,
                level=self.tree.level(pid),
            )
        self.processes: Dict[int, VariableProcess] = {
            pid: VariableProcess(
                pid, self.sim, self.network, self.trace, self.roles[pid], predicate
            )
            for pid in self.tree.nodes
        }
        self.injector = FailureInjector(self.sim, self.processes)
        self._started = False

    # ------------------------------------------------------------------
    # scenario construction
    # ------------------------------------------------------------------
    def at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule *action* at absolute simulation time."""
        self.sim.schedule_at(time, action)

    def setter(self, pid: int, name: str, value) -> Callable[[], None]:
        """A scheduled-update thunk for :meth:`at`."""
        return lambda: self.processes[pid].set_variable(name, value)

    def set_variable(self, pid: int, name: str, value) -> None:
        """Immediate update (usable from inside scheduled actions)."""
        self.processes[pid].set_variable(name, value)

    def send(self, src: int, dst: int, payload: object = None) -> None:
        """One application message (a causality edge) between graph
        neighbours."""
        if self.processes[src].alive:
            self.processes[src].send_app(dst, payload)

    def enable_gossip(self, *, rate: float = 0.5, until: float = 1e9) -> None:
        """Periodic random neighbour-to-neighbour application messages —
        the generic causality carrier that lets intervals overlap
        observably."""
        rng = self.sim.rng("gossip")
        for pid in sorted(self.processes):
            neighbours = sorted(self.graph.neighbors(pid))
            if not neighbours:
                continue
            t = float(rng.exponential(1.0 / rate))
            while t < until:
                dst = int(rng.choice(neighbours))
                self.sim.schedule_at(
                    t,
                    lambda s=pid, d=dst: (
                        self.processes[s].alive
                        and self.network.is_alive(d)
                        and self.processes[s].send_app(d, "gossip")
                    ),
                )
                t += float(rng.exponential(1.0 / rate))

    def crash(self, time: float, pid: int) -> None:
        """Crash-stop *pid* at *time*; the hierarchy repairs itself and
        monitoring continues over the survivors."""
        self.injector.crash_at(time, pid)

    def rejoin(self, time: float, pid: int) -> None:
        """Recover a previously crashed *pid* at *time*: it rejoins the
        hierarchy as a leaf and the monitored predicate widens back."""
        from ..fault.rejoin import RejoinManager

        if not hasattr(self, "_rejoin_manager"):
            self._rejoin_manager = RejoinManager(self.coordinator, self.processes)
        self._rejoin_manager.schedule_rejoin(time, pid)

    @property
    def log(self):
        """The run's structured observability log
        (:class:`repro.sim.EventLog`)."""
        return self.sim.log

    @property
    def telemetry(self):
        """The run's telemetry handle (:class:`repro.obs.Telemetry`):
        the metrics registry and the causal span tracker, ready for the
        :mod:`repro.obs.export` exporters."""
        return self.sim.telemetry

    # ------------------------------------------------------------------
    # alarms
    # ------------------------------------------------------------------
    def on_alarm(self, callback: Callable[[DetectionRecord], None]) -> None:
        """Called on every detection announced by a (partition-)root."""
        self._alarm_callbacks.append(callback)

    def on_group_alarm(self, callback: Callable[[int, object], None]) -> None:
        """Called as ``callback(node, emission)`` for every subtree-level
        solution — the group-level monitoring of Section I."""
        self._group_callbacks.append(callback)

    def _dispatch_alarm(self, record: DetectionRecord) -> None:
        self.alarms.append(record)
        for callback in self._alarm_callbacks:
            callback(record)

    def _dispatch_group(self, pid: int, emission) -> None:
        for callback in self._group_callbacks:
            callback(pid, emission)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        if not self._started:
            for process in self.processes.values():
                process.start()
            self._started = True
        self.sim.run(until=until)

    @property
    def now(self) -> float:
        return self.sim.now
