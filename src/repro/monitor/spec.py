"""Predicate specifications for the monitoring façade.

A :class:`ConjunctivePredicate` is the user-level object the paper's
``Φ = φ_1 ∧ φ_2 ∧ … ∧ φ_n`` corresponds to: one boolean clause per
process, each a pure function of that process's local variables.  The
façade evaluates a process's clause after every local variable update
and drives the underlying interval machinery automatically.

Builders cover the common cases:

* :meth:`ConjunctivePredicate.threshold` — "every x_i > 30";
* :meth:`ConjunctivePredicate.equals` — "every mode_i == 'active'";
* :meth:`ConjunctivePredicate.uniform` — one callable for all;
* :meth:`ConjunctivePredicate.per_process` — heterogeneous clauses,
  e.g. the paper's Section I example ``x_i > 20 ∧ y_j < 45``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

__all__ = ["LocalClause", "ConjunctivePredicate", "HeartbeatSpec", "SLOSpec"]


@dataclass(frozen=True)
class HeartbeatSpec:
    """Validated liveness-protocol tunables (Section III-F).

    ``period`` is the heartbeat send interval; a peer silent for longer
    than the suspicion ``timeout`` is declared failed.  When ``timeout``
    is not given it is derived from ``loss_tolerance`` — the number of
    consecutive heartbeats that may be lost or late before suspicion —
    as ``period * (loss_tolerance + 0.2)``, the extra fifth of a period
    absorbing one-hop delivery jitter.  The defaults reproduce the
    historical ``(5.0, 16.0)`` tuple.

    Anywhere a ``(period, timeout)`` tuple is accepted
    (:class:`~repro.monitor.DistributedMonitor`,
    :class:`~repro.detect.HierarchicalRole`, the :mod:`repro.net`
    runtime) a spec can be passed instead; nonsensical values fail here,
    at construction, rather than as false suspicions mid-run.
    """

    period: float = 5.0
    loss_tolerance: int = 3
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not (isinstance(self.period, (int, float)) and math.isfinite(self.period)):
            raise ValueError(f"heartbeat period must be finite, got {self.period!r}")
        if self.period <= 0:
            raise ValueError(f"heartbeat period must be positive, got {self.period}")
        if not isinstance(self.loss_tolerance, int) or self.loss_tolerance < 1:
            raise ValueError(
                "loss_tolerance must be an integer >= 1 (at least one missed "
                f"heartbeat must be tolerated), got {self.loss_tolerance!r}"
            )
        if self.timeout is not None:
            if not math.isfinite(self.timeout):
                raise ValueError(f"timeout must be finite, got {self.timeout!r}")
            if self.timeout <= self.period:
                raise ValueError(
                    f"suspicion timeout ({self.timeout}) must exceed the "
                    f"heartbeat period ({self.period}): a live peer's next "
                    "beat cannot arrive inside a shorter window"
                )

    @property
    def resolved_timeout(self) -> float:
        if self.timeout is not None:
            return float(self.timeout)
        return self.period * (self.loss_tolerance + 0.2)

    def as_tuple(self) -> tuple:
        """The ``(period, timeout)`` form the heartbeat machinery runs on."""
        return (float(self.period), self.resolved_timeout)

    @classmethod
    def coerce(cls, value) -> Optional[tuple]:
        """Normalize ``None`` / ``(period, timeout)`` / spec to a tuple."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value.as_tuple()
        period, timeout = value
        return cls(period=float(period), timeout=float(timeout)).as_tuple()

@dataclass(frozen=True)
class SLOSpec:
    """Service-level thresholds the cluster observability plane watches.

    Each field is a breach threshold (``None`` disables that check):

    * ``detection_latency_p99`` — wall seconds; breached when any node's
      ``repro_detection_latency`` histogram p99 exceeds it;
    * ``repair_duration`` — wall seconds from a repair plan to its
      application (``repro_cluster_repair_duration_seconds``);
    * ``outbox_depth`` — messages; breached when any peer link's
      ``repro_net_outbox_depth`` gauge exceeds it (sustained
      backpressure: the socket plane cannot keep up with the detector);
    * ``stranded_epoch_rate`` — fraction in ``(0, 1]``; breached when
      the :class:`~repro.obs.epochs.StrandingWatchdog` sees stranded
      epochs exceed that fraction of admitted epochs (the goodput
      cliff: admitted work wasted because siblings were shed or a
      target died).

    A breach does not stop anything — it trips the flight recorder, so
    the window around the violation is persisted for postmortem
    analysis (see :mod:`repro.obs.flight`).
    """

    detection_latency_p99: Optional[float] = None
    repair_duration: Optional[float] = None
    outbox_depth: Optional[int] = None
    stranded_epoch_rate: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("detection_latency_p99", "repair_duration"):
            value = getattr(self, name)
            if value is not None:
                if not (isinstance(value, (int, float)) and math.isfinite(value)):
                    raise ValueError(f"{name} must be finite, got {value!r}")
                if value <= 0:
                    raise ValueError(f"{name} must be positive, got {value}")
        if self.outbox_depth is not None:
            if not isinstance(self.outbox_depth, int) or self.outbox_depth < 1:
                raise ValueError(
                    f"outbox_depth must be an integer >= 1, got {self.outbox_depth!r}"
                )
        if self.stranded_epoch_rate is not None:
            rate = self.stranded_epoch_rate
            if not (isinstance(rate, (int, float)) and math.isfinite(rate)):
                raise ValueError(f"stranded_epoch_rate must be finite, got {rate!r}")
            if not 0 < rate <= 1:
                raise ValueError(
                    "stranded_epoch_rate is a fraction of admitted epochs and "
                    f"must be in (0, 1], got {rate}"
                )

    @property
    def enabled(self) -> bool:
        """Whether any threshold is configured."""
        return any(
            getattr(self, name) is not None
            for name in (
                "detection_latency_p99",
                "repair_duration",
                "outbox_depth",
                "stranded_epoch_rate",
            )
        )

    def as_dict(self) -> dict:
        """JSON-safe form (run summaries, flight snapshot headers)."""
        return {
            "detection_latency_p99": self.detection_latency_p99,
            "repair_duration": self.repair_duration,
            "outbox_depth": self.outbox_depth,
            "stranded_epoch_rate": self.stranded_epoch_rate,
        }


#: A local clause: variables of one process -> bool.
LocalClause = Callable[[Mapping[str, object]], bool]


class ConjunctivePredicate:
    """A global conjunction of per-process local clauses."""

    def __init__(self, clauses: Dict[int, LocalClause], *, name: str = "phi") -> None:
        if not clauses:
            raise ValueError("a conjunctive predicate needs at least one clause")
        self.clauses = dict(clauses)
        self.name = name

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, processes, clause: LocalClause, *, name: str = "phi"):
        """The same clause at every process."""
        return cls({pid: clause for pid in processes}, name=name)

    @classmethod
    def threshold(
        cls,
        processes,
        variable: str,
        *,
        gt: Optional[float] = None,
        lt: Optional[float] = None,
        name: Optional[str] = None,
    ):
        """``variable > gt`` and/or ``variable < lt`` at every process.
        Missing variables evaluate to false (predicate not yet known)."""
        if gt is None and lt is None:
            raise ValueError("give at least one of gt/lt")

        def clause(variables: Mapping[str, object]) -> bool:
            value = variables.get(variable)
            if value is None:
                return False
            if gt is not None and not value > gt:
                return False
            if lt is not None and not value < lt:
                return False
            return True

        label = name or f"{variable}{'>' + str(gt) if gt is not None else ''}" + (
            f"<{lt}" if lt is not None else ""
        )
        return cls.uniform(processes, clause, name=label)

    @classmethod
    def equals(cls, processes, variable: str, value, *, name: Optional[str] = None):
        """``variable == value`` at every process."""
        return cls.uniform(
            processes,
            lambda variables: variables.get(variable) == value,
            name=name or f"{variable}=={value!r}",
        )

    @classmethod
    def per_process(cls, clauses: Dict[int, LocalClause], *, name: str = "phi"):
        """Explicit heterogeneous clauses (the general Section I form)."""
        return cls(clauses, name=name)

    # ------------------------------------------------------------------
    def evaluate(self, pid: int, variables: Mapping[str, object]) -> bool:
        clause = self.clauses.get(pid)
        if clause is None:
            raise KeyError(f"no clause for process {pid}")
        return bool(clause(variables))

    @property
    def processes(self):
        return sorted(self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConjunctivePredicate({self.name!r}, n={len(self.clauses)})"
