"""repro.load — the traffic plane.

Drives a detection cluster like a real fleet: open/closed-loop offer
generators with Zipf popularity skew, pluggable dispatch policies behind
a load balancer, and watermark+congestion admission control, all
accounted through ``repro_load_*`` metrics.  One
:class:`~repro.load.session.LoadSession` implementation runs against
both the live socket cluster (:mod:`repro.net.cluster` wires it) and the
virtual-time simulator (:mod:`repro.load.simload`), which is what makes
the BENCH_load saturation sweep deterministic and cheap.

This package deliberately imports nothing from :mod:`repro.net` at
module scope; the net package imports *us* (cluster wiring), and the one
load-side consumer of net code (:func:`repro.load.simload.run_traffic`)
does its import lazily.
"""

from .admission import AdmissionController
from .dispatch import (
    DISPATCH_POLICIES,
    Affinity,
    DispatchPolicy,
    LeastOutstanding,
    LoadBalancer,
    RoundRobin,
    Weighted,
    make_policy,
)
from .generators import ClosedLoopGenerator, Offer, OpenLoopGenerator
from .latency import LOAD_SOJOURN_BUCKETS, LatencyStore
from .popularity import ZipfSampler
from .session import IntervalSupply, LoadSession, LoadSpec, solution_keyset
from .simload import run_traffic, traffic_specs

__all__ = [
    "AdmissionController",
    "Affinity",
    "ClosedLoopGenerator",
    "DISPATCH_POLICIES",
    "DispatchPolicy",
    "IntervalSupply",
    "LOAD_SOJOURN_BUCKETS",
    "LatencyStore",
    "LeastOutstanding",
    "LoadBalancer",
    "LoadSession",
    "LoadSpec",
    "Offer",
    "OpenLoopGenerator",
    "RoundRobin",
    "Weighted",
    "ZipfSampler",
    "make_policy",
    "run_traffic",
    "solution_keyset",
    "traffic_specs",
]
