"""Virtual-time traffic runs: the sim-side twin of the cluster load plane.

:func:`run_traffic` drives the *same* :class:`~repro.load.session.LoadSession`
— same generators, same dispatch, same admission gate, same metrics —
against a :class:`~repro.sim.kernel.Simulator` instead of a live socket
cluster.  The detector behind ``submit`` is the centralized sink core
(reference [12], the proven-equivalent oracle), fronted by a fixed
deterministic service delay so queues actually build and the admission
watermarks engage at realistic offered loads.

Because everything — arrivals, think times, service, sweeps — runs in
virtual time from named rng streams, a ``(seed, spec)`` pair reproduces
the run byte-for-byte.  That makes this module the determinism anchor of
``BENCH_load`` (run twice, compare counts) and the cheap way to sweep
offered load offline: :func:`traffic_specs` emits module-level
:class:`~repro.experiments.parallel.RunSpec` units a
:class:`~repro.experiments.parallel.ShardedRunner` can fan out across
worker processes.

Kept importable without :mod:`repro.net` at module scope — the interval
script comes from a lazy import inside :func:`run_traffic` — so
``repro.load`` never participates in the net package's import cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..detect.centralized import CentralizedSinkCore
from ..sim.kernel import Simulator
from .session import LoadSession, LoadSpec

__all__ = ["run_traffic", "traffic_specs"]

#: Hard event-count backstop for a single virtual-time run; generously
#: above anything a sane spec produces (a 10k-offer defer storm stays
#: under ~200k events) but finite, so a scheduling bug fails fast
#: instead of spinning the worker.
MAX_EVENTS = 2_000_000


def run_traffic(
    load: Optional[LoadSpec] = None,
    *,
    seed: int = 1,
    degree: int = 2,
    height: int = 2,
    epochs: int = 4,
    sync_prob: float = 1.0,
    service_time: float = 0.005,
    **load_overrides: Any,
) -> Dict[str, Any]:
    """One complete traffic run in virtual time; returns a plain dict.

    Module-level and picklable end to end (inputs are scalars plus the
    frozen :class:`LoadSpec`; the return value is JSON-shaped), so it
    drops straight into a :class:`RunSpec` for sharded sweeps.

    Parameters
    ----------
    load:
        The traffic model (default :class:`LoadSpec` when omitted);
        ``load_overrides`` are convenience kwargs applied on top, e.g.
        ``run_traffic(seed=3, rate=800.0, total_offers=500)``.
    seed / degree / height / epochs / sync_prob:
        The interval script: a regular ``degree``/``height`` tree's
        epoch workload captured once in the reference simulator.
    service_time:
        Fixed virtual delay between admission and the sink detector
        seeing the interval — the knob that lets open-loop rates above
        ``pids / service_time`` pile up outstanding work and trip the
        admission gate.
    """
    from ..net.script import simulation_script  # lazy: avoids net import cycle
    from ..topology.spanning_tree import SpanningTree

    if load is None:
        load = LoadSpec()
    if load_overrides:
        load = LoadSpec(**{**load.__dict__, **load_overrides})
    if service_time < 0:
        raise ValueError("service_time must be >= 0")

    tree = SpanningTree.regular(degree, height)
    script = simulation_script(tree, seed=seed, epochs=epochs, sync_prob=sync_prob)
    pids = sorted(script.streams)

    sim = Simulator(seed=seed)
    sink = CentralizedSinkCore(pids[0], pids)
    detections: List[Any] = []

    def deliver(pid: int, interval) -> None:
        for solution in sink.offer(pid, interval):
            detections.append(solution)
            session.notify_detection(solution)

    def submit(pid: int, interval) -> None:
        sim.schedule(service_time, lambda: deliver(pid, interval))

    session = LoadSession(
        sim,
        load,
        script.streams,
        submit,
        registry=sim.telemetry.registry,
    )
    # Fold the sink's queue lifecycle (enqueue / prune events) into the
    # epoch ledger — every sink queue is concrete, so the ledger sees
    # the same queued→matched transitions the live cluster observes at
    # its leaf cores.
    sink.add_observer(session.epochs.core_observer(sim))
    session.start()
    while not session.done:
        if sim.events_executed >= MAX_EVENTS:
            raise RuntimeError(
                f"traffic run exceeded {MAX_EVENTS} events without draining"
            )
        if not sim.step():
            break
    session.stop()

    summary = session.summary()
    return {
        "spec": {
            "mode": load.mode,
            "rate": load.rate,
            "arrival": load.arrival,
            "users": load.users,
            "total_offers": load.total_offers,
            "dispatch": load.dispatch,
            "policy": load.policy,
            "zipf_s": load.zipf_s,
            "max_outstanding": load.max_outstanding,
            "seed": seed,
            "nodes": len(pids),
            "service_time": service_time,
        },
        "summary": summary,
        "epochs": summary["epochs"],
        "epoch_ledger": session.epochs.to_dict(),
        "drained": session.done,
        "reference_match": session.reference_match(detections),
        "detections": len(detections),
        "admitted_by_target": {
            str(pid): count for pid, count in sorted(session.admitted_by_target().items())
        },
        "virtual_duration": sim.now,
        "events": sim.events_executed,
    }


def traffic_specs(
    rates,
    *,
    seed: int = 1,
    base: Optional[LoadSpec] = None,
    **run_kwargs: Any,
):
    """One open-loop :class:`RunSpec` per offered rate — the sharded
    sweep's work list for an offline saturation study."""
    from ..experiments.parallel import RunSpec

    base = base or LoadSpec()
    specs = []
    for rate in rates:
        load = LoadSpec(**{**base.__dict__, "mode": "open", "rate": float(rate)})
        specs.append(
            RunSpec(
                fn=run_traffic,
                args=(load,),
                kwargs={"seed": seed, **run_kwargs},
                label=f"load-rate-{rate:g}",
            )
        )
    return specs
