"""Per-offer sojourn accounting for the traffic plane.

An offer's *sojourn* is the wall (or virtual) time from admission — the
moment the admission controller lets it through to a node runtime — to
the root detection that consumes its interval.  :class:`LatencyStore`
keeps the pending map keyed by ``(owner, seq)`` (the identity a concrete
interval carries through hierarchical aggregation, so a root solution's
``concrete_leaves`` match back to the admitted offers) and folds every
completed sojourn into a ``repro_load_sojourn_seconds`` histogram.

Offers whose epoch never completes — a sibling was shed, a node died —
must not pin the closed-loop generator forever: :meth:`expire` sweeps
pending entries older than the admission timeout so the caller can count
them abandoned and release their virtual users.  Expiries are never
silent: each one is classified (shed sibling vs dead target vs plain
pending-timeout, via the caller's ``classify`` hook — typically
:meth:`repro.obs.epochs.EpochLedger.expiry_cause`) and counted in
``repro_load_expired_total{reason}`` next to the sojourn histogram, so
the accounting explains *why* a pending entry died instead of just
dropping it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["LOAD_SOJOURN_BUCKETS", "LatencyStore"]

#: Sojourn histogram buckets (seconds): loopback epochs complete in
#: milliseconds; the tail covers saturated queues and defer storms.
LOAD_SOJOURN_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, float("inf"),
)

Key = Tuple[int, int]  # (owner pid, interval seq)


class LatencyStore:
    """Pending admissions plus the sojourn histogram they resolve into."""

    def __init__(
        self, registry, *, name: str = "repro_load_sojourn_seconds"
    ) -> None:
        self.histogram = registry.histogram(
            name,
            "Admission-to-detection sojourn of admitted offers.",
            LOAD_SOJOURN_BUCKETS,
        )
        self.expired = registry.counter_vec(
            "repro_load_expired_total",
            "Pending admissions reaped by the timeout sweep, by cause "
            "(shed-sibling / dead-target / pending-timeout).",
            ("reason",),
        )
        self._pending: Dict[Key, float] = {}

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def admit(self, key: Key, now: float) -> None:
        if key in self._pending:
            raise ValueError(f"offer {key} already pending")
        self._pending[key] = now

    def complete(self, key: Key, now: float) -> Optional[float]:
        """Resolve *key* if pending; returns the observed sojourn (and
        records it) or ``None`` for unknown/duplicate completions."""
        admitted_at = self._pending.pop(key, None)
        if admitted_at is None:
            return None
        sojourn = max(0.0, now - admitted_at)
        self.histogram.observe(sojourn)
        return sojourn

    def expire(
        self,
        now: float,
        timeout: float,
        classify: Optional[Callable[[Key], str]] = None,
    ) -> List[Tuple[Key, str]]:
        """Drop and return every pending key admitted more than
        *timeout* ago (oldest first) as ``(key, reason)`` pairs.

        *classify* maps a dying key to its expiry reason (why the entry
        never completed: ``shed-sibling`` / ``dead-target`` /
        ``pending-timeout``); without it every expiry is a plain
        ``pending-timeout``.  Each reason is counted in
        ``repro_load_expired_total``.  Expired sojourns are *not*
        recorded — the histogram reports completed offers only."""
        expired = sorted(
            (admitted_at, key)
            for key, admitted_at in self._pending.items()
            if now - admitted_at > timeout
        )
        reaped: List[Tuple[Key, str]] = []
        for _, key in expired:
            del self._pending[key]
            reason = classify(key) if classify is not None else "pending-timeout"
            self.expired[reason] += 1
            reaped.append((key, reason))
        return reaped

    # ------------------------------------------------------------------
    def expired_by_reason(self) -> Dict[str, int]:
        """Reap counts per expiry reason (summary-block form)."""
        return {
            str(reason): int(count)
            for reason, count in sorted(self.expired.items())
        }

    def percentiles(self) -> dict:
        """The summary block's latency row: completed-offer sojourn
        p50/p95/p99 (``None`` until anything completes)."""
        return {
            "count": self.histogram.count,
            "p50": self.histogram.percentile(50.0),
            "p95": self.histogram.percentile(95.0),
            "p99": self.histogram.percentile(99.0),
        }
