"""Offer generators: the open- and closed-loop traffic models.

Both generators emit :class:`Offer` records into an *intake* callback
(the :class:`~repro.load.session.LoadSession`), which routes, admits and
eventually resolves each offer.  They are written against the common
clock surface shared by the socket plane's
:class:`~repro.net.clock.AsyncClock` and the virtual-time
:class:`~repro.sim.kernel.Simulator` — ``now``, ``schedule_at``,
``rng(name)`` — so the same traffic model drives a live cluster and an
offline :class:`~repro.experiments.parallel.ShardedRunner` sweep.

* :class:`OpenLoopGenerator` — offers arrive at a configured rate
  regardless of completions (the saturation-study model: offered load is
  the independent variable).  The whole arrival schedule — gap sequence
  from the shared :class:`~repro.workload.distributions.InterarrivalSampler`
  plus a Zipf home draw per offer — is precomputed from two named rng
  streams (``load-arrivals``, ``load-popularity``), making the *offer
  schedule* a pure function of the seed: the determinism gate's anchor.
* :class:`ClosedLoopGenerator` — ``users`` virtual users; each thinks
  (exponential, per-user stream ``load-think-N``), submits one offer and
  only after that offer resolves (completed, shed or abandoned) thinks
  again.  Offered load self-limits to user-count × service rate — the
  interactive-fleet model, and the one that cannot overrun the cluster
  no matter how slow detection gets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..workload.distributions import InterarrivalSampler
from .popularity import ZipfSampler

__all__ = ["Offer", "OpenLoopGenerator", "ClosedLoopGenerator"]


@dataclass
class Offer:
    """One unit of offered work: "raise a local predicate somewhere"."""

    index: int  #: global offer number (issue order)
    user: int  #: virtual user id (-1 for open-loop arrivals)
    home: int  #: Zipf-drawn home process (affinity dispatch honours it)
    issued_at: float  #: clock time the generator emitted the offer
    attempts: int = 0  #: admission attempts so far (defers bump this)
    #: Epoch id, assigned at the source as ``index // len(pids)``.  A
    #: ``Definitely(Φ)`` solution needs one interval per process, so
    #: consecutive stride-of-n offers form the natural goodput unit;
    #: being a pure function of the (seeded) offer index, the id is
    #: identical across sharded workers and sim↔socket scopes and can
    #: ride the frame ``_meta`` sidecar like span coordinates.
    epoch: int = -1


class OpenLoopGenerator:
    """Rate-driven arrivals, blind to completions."""

    def __init__(
        self,
        clock,
        pids: Sequence[int],
        intake: Callable[[Offer], None],
        *,
        rate: float,
        total_offers: int,
        arrival: str = "poisson",
        burstiness: float = 8.0,
        zipf_s: float = 1.1,
    ) -> None:
        if rate <= 0:
            raise ValueError("open-loop rate must be positive")
        if total_offers < 1:
            raise ValueError("total_offers must be >= 1")
        self.clock = clock
        self.pids = sorted(pids)
        self.intake = intake
        self.total_offers = total_offers
        self._sampler = InterarrivalSampler(arrival, 1.0 / rate, burstiness=burstiness)
        self._zipf = ZipfSampler(len(self.pids), zipf_s)
        self._plan: Optional[List[Tuple[float, int]]] = None
        self._handles: List[object] = []
        self._emitted = 0
        self._stopped = False

    # ------------------------------------------------------------------
    def plan(self) -> List[Tuple[float, int]]:
        """The full arrival schedule as ``(offset_s, home_pid)`` pairs —
        computed once, deterministically, from the clock's named rng
        streams."""
        if self._plan is None:
            arrivals = self.clock.rng("load-arrivals")
            popularity = self.clock.rng("load-popularity")
            t = 0.0
            schedule: List[Tuple[float, int]] = []
            for _ in range(self.total_offers):
                t += self._sampler.next(arrivals)
                schedule.append((t, self.pids[self._zipf.sample(popularity)]))
            self._plan = schedule
        return self._plan

    def start(self, at: float = 0.0) -> None:
        base = at
        for index, (offset, home) in enumerate(self.plan()):
            self._handles.append(
                self.clock.schedule_at(
                    base + offset,
                    lambda i=index, h=home: self._emit(i, h),
                )
            )

    def _emit(self, index: int, home: int) -> None:
        if self._stopped:
            return
        self._emitted += 1
        self.intake(
            Offer(
                index=index,
                user=-1,
                home=home,
                issued_at=self.clock.now,
                epoch=index // len(self.pids),
            )
        )

    def offer_resolved(self, offer: Offer, outcome: str) -> None:
        """Open loop ignores completions — arrivals are unconditional."""

    @property
    def done(self) -> bool:
        return self._stopped or self._emitted >= self.total_offers

    def stop(self) -> None:
        self._stopped = True
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()


@dataclass
class _User:
    uid: int
    home: int
    in_flight: bool = False


class ClosedLoopGenerator:
    """N virtual users: think → offer → wait for resolution → repeat."""

    def __init__(
        self,
        clock,
        pids: Sequence[int],
        intake: Callable[[Offer], None],
        *,
        users: int,
        total_offers: int,
        think_time: float = 0.05,
        zipf_s: float = 1.1,
    ) -> None:
        if users < 1:
            raise ValueError("closed loop needs at least one user")
        if total_offers < 1:
            raise ValueError("total_offers must be >= 1")
        if think_time <= 0:
            raise ValueError("think_time must be positive")
        self.clock = clock
        self.pids = sorted(pids)
        self.intake = intake
        self.total_offers = total_offers
        self.think_time = think_time
        zipf = ZipfSampler(len(self.pids), zipf_s)
        popularity = clock.rng("load-popularity")
        self.users = [
            _User(uid=u, home=self.pids[zipf.sample(popularity)])
            for u in range(users)
        ]
        self._issued = 0
        self._stopped = False
        self._handles: List[object] = []

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        for user in self.users:
            self._schedule_think(user, base=at)

    def _schedule_think(self, user: _User, base: Optional[float] = None) -> None:
        if self._stopped or self._issued >= self.total_offers:
            return
        # Per-user rng stream: each user's think sequence is fixed by
        # the seed alone, independent of completion interleaving.
        gap = float(self.clock.rng(f"load-think-{user.uid}").exponential(self.think_time))
        at = (base if base is not None else self.clock.now) + gap
        self._handles.append(
            self.clock.schedule_at(at, lambda u=user: self._issue(u))
        )

    def _issue(self, user: _User) -> None:
        if self._stopped or self._issued >= self.total_offers or user.in_flight:
            return
        index = self._issued
        self._issued += 1
        user.in_flight = True
        self.intake(
            Offer(
                index=index,
                user=user.uid,
                home=user.home,
                issued_at=self.clock.now,
                epoch=index // len(self.pids),
            )
        )

    def offer_resolved(self, offer: Offer, outcome: str) -> None:
        """The session resolved one of our offers (``completed`` /
        ``shed`` / ``abandoned``): release the user to think again."""
        user = self.users[offer.user]
        user.in_flight = False
        self._schedule_think(user)

    @property
    def done(self) -> bool:
        """All offers issued and no user mid-flight (a user whose offer
        was admitted counts as in flight until the session resolves
        it)."""
        if self._stopped:
            return True
        return self._issued >= self.total_offers and not any(
            u.in_flight for u in self.users
        )

    def stop(self) -> None:
        self._stopped = True
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
