"""Admission control: shed or defer before the cluster drowns.

The controller sits between dispatch and ``NodeRuntime.offer_local`` and
answers one question per offer: *admit*, *defer* (retry shortly), or
*shed* (reject outright).  Two saturation signals feed it:

* **outstanding watermarks** — a latched high/low-water pair over the
  cluster-wide count of admitted-but-undetected offers, mirroring the
  transport outbox watermarks: crossing ``max_outstanding`` engages
  shedding, which stays engaged until completions bring outstanding back
  under ``resume_outstanding`` (hysteresis, so the gate doesn't flap at
  the boundary).
* **transport congestion** — the per-link high/low-water events the
  transports already emit (``net_congested`` / ``net_uncongested``),
  delivered via :meth:`note_congestion`, plus the
  ``congested_peers()`` snapshot probe for targets whose uplink is
  currently backed up.  A congested target sheds even when the global
  gate is open — pushing more offers at a node that cannot drain its
  outbox only converts them into outbox drops downstream.

Every decision lands in ``repro_load_*`` metrics; the watermark edges
are also emitted as ``load_shed_engaged`` / ``load_shed_released``
events so the flight recorder and postmortem tooling can frame a
saturation episode.

Sizing note: ``max_outstanding`` must comfortably exceed the cluster's
node count.  ``Definitely(Φ)`` completes offers a whole epoch at a time
(one interval per process), so a gate tighter than one epoch stride can
never see a completion and converts the workload into pure shedding.
``LoadSpec`` validation enforces this against the session's pid count.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

__all__ = ["AdmissionController"]


class AdmissionController:
    """Latched watermark + congestion gate with full decision metrics."""

    def __init__(
        self,
        clock,
        registry,
        *,
        max_outstanding: int,
        resume_outstanding: int,
        policy: str = "shed",
        max_defers: int = 3,
        congestion_probe: Optional[Callable[[int], bool]] = None,
    ) -> None:
        if policy not in ("shed", "defer"):
            raise ValueError(f"admission policy must be 'shed' or 'defer', got {policy!r}")
        if not 0 < resume_outstanding <= max_outstanding:
            raise ValueError(
                "watermarks must satisfy 0 < resume_outstanding <= max_outstanding"
            )
        self.clock = clock
        self.max_outstanding = max_outstanding
        self.resume_outstanding = resume_outstanding
        self.policy = policy
        self.max_defers = max_defers
        self._probe = congestion_probe
        self.saturated = False
        self._congested: Set[int] = set()

        self.offered = registry.counter_vec(
            "repro_load_offered_total",
            "Offers reaching admission control, per dispatch target.",
            ("target",),
        )
        self.admitted = registry.counter_vec(
            "repro_load_admitted_total",
            "Offers admitted into node runtimes, per target.",
            ("target",),
        )
        self.shed = registry.counter_vec(
            "repro_load_shed_total",
            "Offers rejected by admission control, per reason.",
            ("reason",),
        )
        self.deferred = registry.counter(
            "repro_load_deferred_total",
            "Offers pushed back for retry by the defer policy.",
        )
        self.outstanding_gauge = registry.gauge(
            "repro_load_outstanding",
            "Admitted offers not yet resolved by a detection.",
        )

    # ------------------------------------------------------------------
    # congestion feed (transport high/low-water events)
    # ------------------------------------------------------------------
    def note_congestion(self, node: int, congested: bool) -> None:
        """Edge-triggered feed from ``net_congested``/``net_uncongested``
        events: *node* has (or no longer has) a backed-up peer link."""
        if congested:
            self._congested.add(node)
        else:
            self._congested.discard(node)

    def target_congested(self, target: int) -> bool:
        if target in self._congested:
            return True
        return bool(self._probe(target)) if self._probe is not None else False

    # ------------------------------------------------------------------
    def decide(self, offer, target: int, outstanding: int) -> str:
        """``"admit"`` / ``"defer"`` / ``"shed"`` for one routed offer.

        The caller counts the admit itself (via :meth:`count_admit`)
        only after the runtime accepted the interval, so the metric
        never leads reality.
        """
        self.offered[target] += 1
        congested = self.target_congested(target)
        if self.saturated:
            if outstanding <= self.resume_outstanding and not congested:
                self.saturated = False
                self.clock.emit("load_shed_released", outstanding=outstanding)
            else:
                return self._reject(offer, "saturated")
        if outstanding >= self.max_outstanding:
            self.saturated = True
            self.clock.emit(
                "load_shed_engaged", outstanding=outstanding, reason="outstanding"
            )
            return self._reject(offer, "saturated")
        if congested:
            return self._reject(offer, "congested")
        return "admit"

    def _reject(self, offer, reason: str) -> str:
        if self.policy == "defer" and offer.attempts < self.max_defers:
            self.deferred.inc()
            return "defer"
        if self.policy == "defer":
            reason = "defer-exhausted"
        self.shed[reason] += 1
        return "shed"

    # ------------------------------------------------------------------
    def count_admit(self, target: int) -> None:
        self.admitted[target] += 1

    def count_shed(self, reason: str) -> None:
        """Out-of-band sheds (e.g. ``no-target`` when every node died)."""
        self.shed[reason] += 1

    def set_outstanding(self, value: int) -> None:
        self.outstanding_gauge.set(value)
