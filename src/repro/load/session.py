"""The load session: one traffic model wired end to end.

:class:`LoadSession` owns the whole pipeline for one run —

    generator → popularity → dispatch → admission → interval supply
              → ``submit(pid, interval)`` → (detections) → completion

— against an abstract *submit* callback and the common clock surface,
so the identical session drives a live :class:`~repro.net.cluster.LocalCluster`
(submit = ``NodeRuntime.offer_local``, completions fed from root
detection records) and a virtual-time simulator sweep (submit = a
:class:`~repro.detect.centralized.CentralizedSinkCore` offer, completions
synchronous; see :mod:`repro.load.simload`).

**What an offer is.**  The cluster's workload is an interval script —
per-node local-predicate interval streams captured from a reference
simulator run, which is the only way to get causally-overlapping
intervals without re-simulating message waves.  The traffic plane keeps
that: an admitted offer consumes the *next scripted interval* of its
dispatched target, so traffic shape (pacing, skew, routing, shedding)
varies freely while every admitted interval stays causally valid.
:class:`IntervalSupply` makes the finite script inexhaustible by
cycling it with vector-clock shifts (cycle *c* adds ``c·(max_vc+1)``
componentwise), which preserves all intra-cycle causal relations and
makes cross-cycle pairs strictly ordered — prunable, never falsely
overlapping.

**Reference oracle.**  Because admission records the exact admitted
per-source order, the session can replay precisely the admitted subset
through the centralized sink detector (reference [12]) and compare
solution signatures against the live root detections — the
reference-match check that holds *under shedding*, not just for full
replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..detect.centralized import CentralizedSinkCore
from ..intervals import Interval
from ..obs.epochs import EpochLedger
from ..workload.distributions import ARRIVAL_KINDS
from .admission import AdmissionController
from .dispatch import DISPATCH_POLICIES, LoadBalancer, make_policy
from .generators import ClosedLoopGenerator, Offer, OpenLoopGenerator
from .latency import LatencyStore
from .popularity import ZipfSampler

__all__ = ["LoadSpec", "IntervalSupply", "LoadSession", "solution_keyset"]

Key = Tuple[int, int]


@dataclass(frozen=True)
class LoadSpec:
    """Everything that shapes a traffic run (picklable, hashable)."""

    #: ``"open"`` (rate-driven) or ``"closed"`` (user-driven)
    mode: str = "open"
    #: open loop: offered load, offers/second
    rate: float = 200.0
    #: open loop: arrival model (see :mod:`repro.workload.distributions`)
    arrival: str = "poisson"
    #: bursty arrivals: burst-phase rate multiplier
    burstiness: float = 8.0
    #: closed loop: virtual user count
    users: int = 8
    #: closed loop: mean think seconds between a resolution and the
    #: user's next offer
    think_time: float = 0.05
    #: total offers to issue before the generator stops
    total_offers: int = 200
    #: popularity skew exponent (0 = uniform)
    zipf_s: float = 1.1
    #: dispatch policy name (see :mod:`repro.load.dispatch`)
    dispatch: str = "round_robin"
    #: explicit per-target weights for ``weighted`` dispatch, aligned to
    #: sorted pids (None = the Zipf pmf)
    weights: Optional[Tuple[float, ...]] = None
    #: admission high watermark on cluster-wide outstanding offers
    max_outstanding: int = 64
    #: admission low watermark (None = ``max_outstanding // 2``)
    resume_outstanding: Optional[int] = None
    #: what saturation does to an offer: ``"shed"`` or ``"defer"``
    policy: str = "shed"
    #: defer policy: retry delay in seconds
    defer_delay: float = 0.05
    #: defer policy: attempts before a defer degrades to a shed
    max_defers: int = 3
    #: abandon admitted offers undetected after this many seconds (what
    #: keeps closed-loop users from deadlocking on a shed-broken epoch)
    pending_timeout: float = 5.0
    #: seconds between session start and the first arrival
    start_delay: float = 0.2

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError(f"load mode must be 'open' or 'closed', got {self.mode!r}")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"arrival must be one of {ARRIVAL_KINDS}, got {self.arrival!r}")
        if self.dispatch not in DISPATCH_POLICIES:
            raise ValueError(
                f"dispatch must be one of {sorted(DISPATCH_POLICIES)}, got {self.dispatch!r}"
            )
        if self.policy not in ("shed", "defer"):
            raise ValueError(f"policy must be 'shed' or 'defer', got {self.policy!r}")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.users < 1:
            raise ValueError("users must be >= 1")
        if self.total_offers < 1:
            raise ValueError("total_offers must be >= 1")
        if self.think_time <= 0 or self.defer_delay <= 0 or self.pending_timeout <= 0:
            raise ValueError("think_time, defer_delay and pending_timeout must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if (
            self.resume_outstanding is not None
            and not 0 < self.resume_outstanding <= self.max_outstanding
        ):
            raise ValueError(
                "resume_outstanding must satisfy 0 < resume <= max_outstanding"
            )
        if self.start_delay < 0:
            raise ValueError("start_delay must be >= 0")

    @property
    def resolved_resume(self) -> int:
        return self.resume_outstanding or max(1, self.max_outstanding // 2)


class IntervalSupply:
    """Unbounded per-node interval streams from a finite script.

    Each node cycles its scripted stream independently; replay cycle
    ``c`` shifts every vector timestamp by ``c * (global_max_vc + 1)``
    componentwise and every sequence number by ``c`` stream lengths.
    Within a cycle all original causal relations (and therefore all
    overlaps) are preserved; across cycles every pair is strictly
    ordered, so recycled intervals can never fake an overlap — the
    detector prunes them exactly like any other stale head.
    """

    def __init__(self, streams: Dict[int, List[Interval]]) -> None:
        if not streams or any(not stream for stream in streams.values()):
            raise ValueError("interval supply needs a non-empty stream per node")
        self._base = {pid: list(stream) for pid, stream in streams.items()}
        his = [iv.hi for stream in self._base.values() for iv in stream]
        self._shift = np.max(np.stack(his), axis=0).astype(np.int64) + 1
        self._stride = {
            pid: max(iv.seq for iv in stream) + 1
            for pid, stream in self._base.items()
        }
        self._pos: Dict[int, int] = {pid: 0 for pid in self._base}
        self._cycle: Dict[int, int] = {pid: 0 for pid in self._base}

    @property
    def pids(self) -> List[int]:
        return sorted(self._base)

    def next_for(self, pid: int) -> Interval:
        stream = self._base[pid]
        cycle = self._cycle[pid]
        interval = stream[self._pos[pid]]
        self._pos[pid] += 1
        if self._pos[pid] >= len(stream):
            self._pos[pid] = 0
            self._cycle[pid] += 1
        if cycle == 0:
            return interval
        shift = self._shift * cycle
        return Interval(
            owner=interval.owner,
            seq=interval.seq + cycle * self._stride[pid],
            lo=interval.lo + shift,
            hi=interval.hi + shift,
            members=interval.members,
        )


def solution_keyset(solution) -> frozenset:
    """A solution's identity as the set of concrete interval keys it
    consumed — comparable across the hierarchical root and the
    centralized sink regardless of aggregation shape."""
    return frozenset(
        leaf.key()
        for head in solution.heads.values()
        for leaf in head.concrete_leaves()
    )


class LoadSession:
    """One traffic run: generator, dispatch, admission, accounting.

    Parameters
    ----------
    clock:
        Anything with the common clock surface (``now``, ``rng(name)``,
        ``schedule``, ``schedule_at``, ``emit``) — an
        :class:`~repro.net.clock.AsyncClock` or a
        :class:`~repro.sim.kernel.Simulator`.
    load:
        The :class:`LoadSpec`.
    streams:
        Per-node scripted interval streams (``IntervalScript.streams``).
    submit:
        ``submit(pid, interval)`` — deliver one admitted interval to the
        target's detector input.
    registry:
        The :class:`~repro.obs.MetricsRegistry` receiving the
        ``repro_load_*`` family.
    alive / congestion_probe:
        Optional callables the cluster wires: node liveness for the
        balancer, and "has this node a congested uplink right now" for
        admission (backed by ``Transport.congested_peers()``).
    """

    SWEEP_INTERVAL = 0.05

    def __init__(
        self,
        clock,
        load: LoadSpec,
        streams: Dict[int, List[Interval]],
        submit: Callable[[int, Interval], None],
        *,
        registry,
        alive: Optional[Callable[[int], bool]] = None,
        congestion_probe: Optional[Callable[[int], bool]] = None,
    ) -> None:
        self.clock = clock
        self.load = load
        self.submit = submit
        self.supply = IntervalSupply(streams)
        self.pids = self.supply.pids
        if load.max_outstanding < len(self.pids):
            raise ValueError(
                f"max_outstanding ({load.max_outstanding}) must cover at least one "
                f"epoch stride ({len(self.pids)} processes): Definitely(Phi) "
                "completes offers one whole epoch at a time, so a tighter gate "
                "can only shed or time out"
            )
        weights = None
        if load.dispatch == "weighted":
            if load.weights is not None:
                if len(load.weights) != len(self.pids):
                    raise ValueError(
                        f"weights must have one entry per process "
                        f"({len(self.pids)}), got {len(load.weights)}"
                    )
                weights = dict(zip(self.pids, load.weights))
            else:
                weights = ZipfSampler(len(self.pids), load.zipf_s).weights_for(self.pids)
        self.balancer = LoadBalancer(
            make_policy(load.dispatch, weights=weights), self.pids, alive=alive
        )
        self.admission = AdmissionController(
            clock,
            registry,
            max_outstanding=load.max_outstanding,
            resume_outstanding=load.resolved_resume,
            policy=load.policy,
            max_defers=load.max_defers,
            congestion_probe=congestion_probe,
        )
        self.latency = LatencyStore(registry)
        self._alive = alive
        # The epoch ledger: every offer's epoch tracked from intake to
        # solution-or-stranded (see :mod:`repro.obs.epochs`).  Stride is
        # the process count — one interval per process per solution.
        self.epochs = EpochLedger(
            registry, stride=len(self.pids), total_offers=load.total_offers
        )
        self._completed_counter = registry.counter(
            "repro_load_completed_total",
            "Admitted offers resolved by a detection.",
        )
        self._abandoned_counter = registry.counter(
            "repro_load_abandoned_total",
            "Admitted offers that timed out undetected.",
        )
        if load.mode == "open":
            self.generator = OpenLoopGenerator(
                clock,
                self.pids,
                self._intake,
                rate=load.rate,
                total_offers=load.total_offers,
                arrival=load.arrival,
                burstiness=load.burstiness,
                zipf_s=load.zipf_s,
            )
        else:
            self.generator = ClosedLoopGenerator(
                clock,
                self.pids,
                self._intake,
                users=load.users,
                total_offers=load.total_offers,
                think_time=load.think_time,
                zipf_s=load.zipf_s,
            )
        # key -> (offer, target) for admitted-but-undetected offers
        self._in_flight: Dict[Key, Tuple[Offer, int]] = {}
        self._outstanding_by_target: Dict[int, int] = {pid: 0 for pid in self.pids}
        self._admitted_log: List[Tuple[int, Interval]] = []
        self._deferred_in_flight = 0
        self._sweep_handle: Optional[object] = None
        self._stopped = False
        # summary tallies (ints, independent of metric internals)
        self.counts = {
            "offered": 0,
            "admitted": 0,
            "shed": 0,
            "deferred": 0,
            "completed": 0,
            "abandoned": 0,
        }
        self._shed_by_reason: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.generator.start(at=self.clock.now + self.load.start_delay)
        self._schedule_sweep()
        self.clock.emit(
            "load_started",
            mode=self.load.mode,
            total_offers=self.load.total_offers,
        )

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.generator.stop()
        if self._sweep_handle is not None:
            self._sweep_handle.cancel()
            self._sweep_handle = None

    # ------------------------------------------------------------------
    # the offer path
    # ------------------------------------------------------------------
    def _epoch_id(self, offer: Offer) -> int:
        """The offer's epoch — trusted from the generator tag, derived
        from the index for hand-built offers that never saw one."""
        return offer.epoch if offer.epoch >= 0 else self.epochs.epoch_for_offer(offer.index)

    def _intake(self, offer: Offer) -> None:
        if self._stopped:
            return
        self.counts["offered"] += 1
        epoch = self._epoch_id(offer)
        self.epochs.note_offered(epoch, offer.index, self.clock.now)
        target = self.balancer.route(offer, self._outstanding_by_target)
        if target is None:
            self.admission.offered["none"] += 1
            self.admission.count_shed("no-target")
            self._count_shed("no-target")
            self.epochs.note_shed(epoch, offer.index, "no-target", self.clock.now)
            self._resolve(offer, "shed")
            return
        decision = self.admission.decide(offer, target, self.latency.outstanding)
        if decision == "admit":
            self._admit(offer, target)
        elif decision == "defer":
            self.counts["deferred"] += 1
            self.counts["offered"] -= 1  # the retry will count again
            offer.attempts += 1
            self._deferred_in_flight += 1
            self.clock.schedule(self.load.defer_delay, lambda o=offer: self._retry(o))
        else:
            reason = (
                "defer-exhausted"
                if self.load.policy == "defer" and offer.attempts >= self.load.max_defers
                else ("congested" if self.admission.target_congested(target) else "saturated")
            )
            self._count_shed(reason)
            self.epochs.note_shed(
                epoch, offer.index, reason, self.clock.now, target=target
            )
            self._resolve(offer, "shed")

    def _retry(self, offer: Offer) -> None:
        self._deferred_in_flight -= 1
        self._intake(offer)

    def _admit(self, offer: Offer, target: int) -> None:
        interval = self.supply.next_for(target)
        key = (interval.owner, interval.seq)
        now = self.clock.now
        self.latency.admit(key, now)
        self._in_flight[key] = (offer, target)
        self.epochs.note_admitted(self._epoch_id(offer), offer.index, key, target, now)
        self._outstanding_by_target[target] = self._outstanding_by_target.get(target, 0) + 1
        self._admitted_log.append((target, interval))
        self.counts["admitted"] += 1
        self.admission.count_admit(target)
        self.admission.set_outstanding(self.latency.outstanding)
        self.submit(target, interval)

    def _count_shed(self, reason: str) -> None:
        self.counts["shed"] += 1
        self._shed_by_reason[reason] = self._shed_by_reason.get(reason, 0) + 1

    def _resolve(self, offer: Offer, outcome: str) -> None:
        self.generator.offer_resolved(offer, outcome)

    # ------------------------------------------------------------------
    # completions
    # ------------------------------------------------------------------
    def notify_detection(self, record) -> None:
        """Feed one root detection (a ``DetectionRecord`` or bare
        ``Solution``): every concrete interval it consumed completes the
        matching in-flight offer."""
        solution = getattr(record, "solution", record)
        now = self.clock.now
        for head in solution.heads.values():
            for leaf in head.concrete_leaves():
                key = (leaf.owner, leaf.seq)
                sojourn = self.latency.complete(key, now)
                if sojourn is None:
                    continue
                offer, target = self._in_flight.pop(key)
                self._outstanding_by_target[target] -= 1
                self.counts["completed"] += 1
                self._completed_counter.inc()
                self.epochs.note_completed(key, now)
                self._resolve(offer, "completed")
        self.admission.set_outstanding(self.latency.outstanding)

    def _schedule_sweep(self) -> None:
        self._sweep_handle = self.clock.schedule(self.SWEEP_INTERVAL, self._sweep)

    def _expiry_cause(self, key: Key) -> str:
        """Why a pending entry is dying: dead target beats shed sibling
        beats plain pending-timeout (the :class:`LatencyStore` expiry
        classifier)."""
        _, target = self._in_flight[key]
        target_alive = self._alive(target) if self._alive is not None else True
        return self.epochs.expiry_cause(key, target_alive=target_alive)

    def _sweep(self) -> None:
        if self._stopped:
            return
        now = self.clock.now
        self.epochs.tick(now)
        expired = self.latency.expire(
            now, self.load.pending_timeout, classify=self._expiry_cause
        )
        for key, reason in expired:
            offer, target = self._in_flight.pop(key)
            self._outstanding_by_target[target] -= 1
            self.counts["abandoned"] += 1
            self._abandoned_counter.inc()
            self.epochs.note_abandoned(key, reason, now)
            self.clock.emit("load_offer_abandoned", node=target, reason=reason)
            self._resolve(offer, "abandoned")
        if expired:
            self.admission.set_outstanding(self.latency.outstanding)
        if not self.done:
            self._schedule_sweep()
        else:
            self._sweep_handle = None
            self.clock.emit("load_finished", **{k: v for k, v in self.counts.items()})

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return self.latency.outstanding

    @property
    def done(self) -> bool:
        """Every offer issued and resolved: nothing outstanding, nothing
        deferred, nothing left for the generator to emit."""
        return (
            self.generator.done
            and self.latency.outstanding == 0
            and self._deferred_in_flight == 0
        )

    def summary(self) -> dict:
        """The run's ``load`` block (mirrors the cluster summary's
        ``wire`` block): decision counts plus sojourn percentiles."""
        return {
            "mode": self.load.mode,
            "dispatch": self.load.dispatch,
            "policy": self.load.policy,
            "zipf_s": self.load.zipf_s,
            "offered": self.counts["offered"],
            "admitted": self.counts["admitted"],
            "shed": self.counts["shed"],
            "shed_by_reason": dict(sorted(self._shed_by_reason.items())),
            "deferred": self.counts["deferred"],
            "completed": self.counts["completed"],
            "abandoned": self.counts["abandoned"],
            "expired_by_reason": self.latency.expired_by_reason(),
            "outstanding": self.latency.outstanding,
            "sojourn": self.latency.percentiles(),
            "epochs": self.epochs.summary(),
        }

    def epoch_of(self, key: Key) -> Optional[int]:
        """The epoch an admitted interval key belongs to (rides the
        frame ``_meta`` sidecar next to span coordinates)."""
        return self.epochs.epoch_of(key)

    def admitted_by_target(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for target, _ in self._admitted_log:
            counts[target] = counts.get(target, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # reference oracle
    # ------------------------------------------------------------------
    def reference_solutions(self) -> list:
        """Replay exactly the admitted offers, in admission order,
        through the centralized sink detector [12] — the ground truth
        for what the live hierarchy should have detected."""
        sink = CentralizedSinkCore(self.pids[0], self.pids)
        solutions = []
        for pid, interval in self._admitted_log:
            solutions.extend(sink.offer(pid, interval))
        return solutions

    def reference_match(
        self, detections: Sequence, *, allow_prefix: bool = False
    ) -> bool:
        """Do the live detections match the centralized replay of the
        admitted subset?  Compared as index-ordered concrete-interval
        key sets, so aggregation shape and wall timing drop out.

        ``allow_prefix`` relaxes equality to "the live detections are a
        prefix of the reference" — the sound check when a node died
        mid-run: its admitted-but-unreported intervals still reach the
        centralized replay, so the reference can run a few solutions
        past where the live tree stopped, but everything the live tree
        *did* detect must agree in content and order."""
        live = [
            solution_keyset(getattr(d, "solution", d))
            for d in sorted(
                detections, key=lambda d: getattr(d, "solution", d).index
            )
        ]
        reference = [
            solution_keyset(s)
            for s in sorted(self.reference_solutions(), key=lambda s: s.index)
        ]
        if allow_prefix:
            return live == reference[: len(live)]
        return live == reference
