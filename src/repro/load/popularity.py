"""Zipf popularity: who the traffic actually hits.

Real fleets are never uniformly loaded — a handful of processes absorb
most of the offered load.  :class:`ZipfSampler` models that with the
standard finite Zipf (zeta) distribution over ranks ``0 .. n-1``:

    P(rank = k)  ∝  1 / (k + 1)**s

``s = 0`` degenerates to uniform; ``s ≈ 1`` is the classic web-request
skew; larger ``s`` concentrates traffic further.  Sampling is
inverse-CDF over a precomputed cumulative table (one uniform draw + one
``searchsorted`` per sample), so a stream of draws is a pure function of
the generator handed in — the traffic plane routes every popularity
decision through a named deterministic rng stream.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Finite Zipf distribution over ``n`` ranks with exponent ``s``."""

    def __init__(self, n: int, s: float = 1.1) -> None:
        if n < 1:
            raise ValueError("ZipfSampler needs at least one rank")
        if s < 0:
            raise ValueError("zipf exponent s must be >= 0")
        self.n = n
        self.s = s
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), s)
        self.pmf = weights / weights.sum()
        self._cdf = np.cumsum(self.pmf)
        self._cdf[-1] = 1.0  # guard against float round-off at the tail

    def share(self, rank: int) -> float:
        """The long-run traffic fraction of *rank* (0 = hottest)."""
        return float(self.pmf[rank])

    def sample(self, rng: np.random.Generator) -> int:
        """One rank, by inverse-CDF (one uniform draw)."""
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` ranks in one vectorized draw (same per-draw stream
        consumption as ``size`` calls to :meth:`sample` would *not* be —
        use one or the other consistently per stream)."""
        return np.searchsorted(self._cdf, rng.random(size), side="right").astype(int)

    def weights_for(self, targets: Sequence[int]) -> dict:
        """Map sorted *targets* onto the pmf: the r-th smallest id gets
        rank r's share — the default weight table for the ``weighted``
        dispatch policy."""
        ordered = sorted(targets)
        if len(ordered) != self.n:
            raise ValueError(
                f"sampler has {self.n} ranks but got {len(ordered)} targets"
            )
        return {pid: float(self.pmf[rank]) for rank, pid in enumerate(ordered)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ZipfSampler(n={self.n}, s={self.s})"
