"""Dispatch: which node runtime an admitted offer lands on.

A :class:`DispatchPolicy` sees one offer plus the current per-target
outstanding counts and names a target; the :class:`LoadBalancer` in
front of it owns the live target list (dead nodes drop out when the
cluster's repair machinery confirms a kill).  All four stock policies
are deterministic — no rng draws — so a fixed offer stream routes
identically on every run:

* ``round_robin`` — cycle the sorted target list.
* ``least_outstanding`` — fewest admitted-but-undetected offers wins;
  ties break to the lowest pid.
* ``weighted`` — smooth weighted round-robin (the nginx algorithm):
  each pick adds every target's weight to its current credit, takes the
  highest credit, and debits the picked target by the weight total.
  Over one weight period the pick counts match the weights exactly.
* ``affinity`` — honour the offer's Zipf-drawn home process, so the
  per-process offered rates carry the popularity skew end-to-end.

Note the interplay with the detector: a ``Definitely(Φ)`` solution needs
one interval from *every* process, so skewed routing (``affinity`` under
a steep Zipf, or lopsided ``weighted`` tables) starves conjunctions —
hot nodes race ahead through their interval supply while cold nodes lag,
and sojourn latency is set by the *coldest* target.  ``docs/load.md``
discusses how to read that in BENCH_load.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Protocol, Sequence

__all__ = [
    "DISPATCH_POLICIES",
    "DispatchPolicy",
    "LoadBalancer",
    "RoundRobin",
    "LeastOutstanding",
    "Weighted",
    "Affinity",
    "make_policy",
]


class DispatchPolicy(Protocol):
    """One routing decision: offer + live targets + load → target pid."""

    def choose(
        self, offer, targets: Sequence[int], outstanding: Mapping[int, int]
    ) -> int:
        """Pick one of *targets* (non-empty, sorted ascending)."""


class RoundRobin:
    """Cycle the sorted target list, skipping targets that left it."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, offer, targets, outstanding) -> int:
        pick = targets[self._next % len(targets)]
        self._next += 1
        return pick


class LeastOutstanding:
    """Fewest in-flight offers wins; ties go to the lowest pid."""

    def choose(self, offer, targets, outstanding) -> int:
        return min(targets, key=lambda pid: (outstanding.get(pid, 0), pid))


class Weighted:
    """Smooth weighted round-robin over a static weight table.

    Weights are relative (any positive scale); targets missing from the
    table weigh as the smallest configured weight so late repair
    survivors still receive traffic.
    """

    def __init__(self, weights: Mapping[int, float]) -> None:
        if not weights or any(w <= 0 for w in weights.values()):
            raise ValueError("weighted dispatch needs positive weights")
        self.weights = dict(weights)
        self._floor = min(self.weights.values())
        self._credit: Dict[int, float] = {}

    def choose(self, offer, targets, outstanding) -> int:
        total = 0.0
        for pid in targets:
            weight = self.weights.get(pid, self._floor)
            self._credit[pid] = self._credit.get(pid, 0.0) + weight
            total += weight
        pick = max(targets, key=lambda pid: (self._credit[pid], -pid))
        self._credit[pick] -= total
        return pick


class Affinity:
    """Route to the offer's Zipf-drawn home (fall back to round-robin
    when the home process is gone)."""

    def __init__(self) -> None:
        self._fallback = RoundRobin()

    def choose(self, offer, targets, outstanding) -> int:
        home = getattr(offer, "home", None)
        if home in targets:
            return home
        return self._fallback.choose(offer, targets, outstanding)


#: Policy name → zero-config factory (``weighted`` needs a table and is
#: special-cased by :func:`make_policy`).
DISPATCH_POLICIES = {
    "round_robin": RoundRobin,
    "least_outstanding": LeastOutstanding,
    "weighted": Weighted,
    "affinity": Affinity,
}


def make_policy(
    name: str, *, weights: Optional[Mapping[int, float]] = None
) -> DispatchPolicy:
    """Build a stock policy by name (``weights`` required for, and only
    consumed by, ``"weighted"``)."""
    if name not in DISPATCH_POLICIES:
        raise ValueError(
            f"dispatch must be one of {sorted(DISPATCH_POLICIES)}, got {name!r}"
        )
    if name == "weighted":
        if not weights:
            raise ValueError("weighted dispatch needs a weight table")
        return Weighted(weights)
    return DISPATCH_POLICIES[name]()


class LoadBalancer:
    """The front door: live-target bookkeeping around a policy."""

    def __init__(
        self,
        policy: DispatchPolicy,
        targets: Sequence[int],
        *,
        alive: Optional[Callable[[int], bool]] = None,
    ) -> None:
        if not targets:
            raise ValueError("load balancer needs at least one target")
        self.policy = policy
        self.targets: List[int] = sorted(targets)
        self._alive = alive

    def live_targets(self) -> List[int]:
        if self._alive is None:
            return self.targets
        return [pid for pid in self.targets if self._alive(pid)]

    def route(self, offer, outstanding: Mapping[int, int]) -> Optional[int]:
        """Pick a live target for *offer*, or ``None`` when every target
        is down (the caller sheds with reason ``no-target``)."""
        live = self.live_targets()
        if not live:
            return None
        return self.policy.choose(offer, live, outstanding)
