"""Run summaries: one human-readable digest per simulation run.

Collects everything an operator would ask of a finished run — what was
detected, what it cost, where the load sat, how stale announcements
were, what failed and recovered — into a :class:`RunSummary` with a
plain-text rendering.  Examples and the CLI use it; tests treat it as
the single source of truth for run-level accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .report import render_kv, render_table

__all__ = ["RunSummary", "summarize_run", "render_summary"]


@dataclass
class RunSummary:
    n: int
    detections: int
    full_detections: int
    partial_detections: int
    distinct_memberships: int
    control_messages: int
    app_messages: int
    control_bandwidth_entries: int
    max_comparisons_per_node: int
    total_comparisons: int
    max_queue_per_node: int
    comparisons_gini: float
    realized_alpha_by_level: Dict[int, float] = field(default_factory=dict)
    latency_mean: Optional[float] = None
    latency_p95: Optional[float] = None
    crashes: int = 0
    rejoins: int = 0
    partitions: int = 0


def summarize_run(result) -> RunSummary:
    """Digest a :class:`~repro.experiments.harness.RunResult`."""
    members_seen = {record.members for record in result.detections}
    full_size = max((len(m) for m in members_seen), default=0)
    full = sum(1 for r in result.detections if len(r.members) == result.trace.n)
    latencies: List[float] = []
    for record in result.detections:
        try:
            completion = max(
                result.trace.interval_close_time(interval)
                for interval in record.solution.concrete_intervals()
            )
            latencies.append(record.time - completion)
        except (IndexError, ValueError):  # pragma: no cover - defensive
            continue
    log = result.sim.log
    return RunSummary(
        n=result.trace.n,
        detections=len(result.detections),
        full_detections=full,
        partial_detections=len(result.detections) - full,
        distinct_memberships=len(members_seen),
        control_messages=result.metrics.control_messages,
        app_messages=result.metrics.app_messages,
        control_bandwidth_entries=result.network.bandwidth_entries("control"),
        max_comparisons_per_node=result.metrics.max_comparisons_per_node,
        total_comparisons=result.metrics.total_comparisons,
        max_queue_per_node=result.metrics.max_queue_per_node,
        comparisons_gini=result.metrics.comparisons_gini(),
        realized_alpha_by_level=dict(result.metrics.realized_alpha_by_level),
        latency_mean=float(np.mean(latencies)) if latencies else None,
        latency_p95=float(np.percentile(latencies, 95)) if latencies else None,
        crashes=len(log.of_kind("crash")),
        rejoins=len(log.of_kind("rejoin")),
        partitions=len(log.of_kind("partitioned")),
    )


def render_summary(summary: RunSummary, *, title: str = "Run summary") -> str:
    pairs = {
        "processes": summary.n,
        "detections (full / partial)": (
            f"{summary.detections} ({summary.full_detections} / "
            f"{summary.partial_detections})"
        ),
        "distinct memberships": summary.distinct_memberships,
        "control messages (hops)": summary.control_messages,
        "control bandwidth (entries)": summary.control_bandwidth_entries,
        "app messages": summary.app_messages,
        "comparisons total / max node": (
            f"{summary.total_comparisons} / {summary.max_comparisons_per_node}"
        ),
        "comparison concentration (gini)": f"{summary.comparisons_gini:.3f}",
        "peak queue (max node)": summary.max_queue_per_node,
    }
    if summary.latency_mean is not None:
        pairs["detection latency mean / p95"] = (
            f"{summary.latency_mean:.2f} / {summary.latency_p95:.2f}"
        )
    if summary.crashes or summary.rejoins or summary.partitions:
        pairs["crashes / rejoins / partitions"] = (
            f"{summary.crashes} / {summary.rejoins} / {summary.partitions}"
        )
    text = render_kv(title, pairs)
    if summary.realized_alpha_by_level:
        rows = [
            [level, f"{alpha:.3f}"]
            for level, alpha in sorted(summary.realized_alpha_by_level.items())
        ]
        text += "\n" + render_table(["level", "realized alpha"], rows)
    return text
