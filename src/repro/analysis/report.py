"""Plain-text rendering of tables and figure series.

The experiment harness prints the same rows and series the paper
reports; these helpers keep the formatting in one place (and out of the
experiment logic, which returns structured data the tests consume).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "render_series", "render_kv"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_series(title: str, xs: Sequence[object], series: Dict[str, Sequence[float]]) -> str:
    """One figure's data as a table: x column plus one column per curve."""
    headers = ["x", *series.keys()]
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for name in series:
            value = series[name][i]
            row.append(f"{value:.6g}" if isinstance(value, float) else value)
        rows.append(row)
    return f"{title}\n{render_table(headers, rows)}"


def render_kv(title: str, pairs: Dict[str, object]) -> str:
    width = max((len(k) for k in pairs), default=0)
    lines = [title]
    lines.extend(f"  {k.ljust(width)} : {v}" for k, v in pairs.items())
    return "\n".join(lines)
