"""Closed-form complexity results of Section IV.

The message-count formulas behind Table I and Figures 4–5, in both the
paper's printed form and a corrected form.

Hierarchical detection (Eq. 11) — verified against the direct sum:

    total = Σ_{i=1}^{h-1} d^{h-i} · p · d^{i-1} · α^{i-1}
          = p · d^{h-1} · (1 - α^{h-1}) / (1 - α)

Centralized repeated detection routed over the same tree (Eq. 12):

    total = Σ_{i=1}^{h-1} p · d^{h-i} · (h - i)        [definition]
          = p · Σ_{j=1}^{h-1} j · d^j                   [substituting j=h-i]
          = p · d · ((h-1)·d^h - h·d^{h-1} + 1) / (d-1)²

**Erratum.** The paper's Eq. (13)–(14) closed form,
``p·((d^h - 2d)(dh - d - h) - d)/(d-1)²``, does not equal its own
definition Eq. (12): at ``d=2, h=3`` Eq. (12) sums to ``10p`` while
Eq. (14) evaluates to ``2p``.  The algebra from Eq. (13) onward drops
terms.  We therefore expose

* :func:`centralized_messages` — the corrected closed form (equal to
  the direct sum; tests verify the identity symbolically over a grid),
* :func:`centralized_messages_paper_eq14` — the printed formula, kept
  for comparison and documented in EXPERIMENTS.md.

Every qualitative conclusion of the paper survives the correction: the
centralized total grows as ``Θ(p·h·d^{h-1})`` versus the hierarchical
``Θ(p·d^{h-1})`` (for α bounded away from 1), so the hierarchical
algorithm wins by a factor ``≈ (h-1)(1-α)``, growing with network size.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = [
    "tree_nodes",
    "paper_n",
    "hierarchical_messages",
    "hierarchical_messages_sum",
    "centralized_messages",
    "centralized_messages_sum",
    "centralized_messages_paper_eq14",
    "hierarchical_time_bound",
    "centralized_time_bound",
    "space_bound",
    "table1_rows",
]


def tree_nodes(d: int, h: int) -> int:
    """Exact node count of a complete ``d``-ary tree with ``h`` levels."""
    if d < 1 or h < 1:
        raise ValueError("need d >= 1 and h >= 1")
    if d == 1:
        return h
    return (d**h - 1) // (d - 1)


def paper_n(d: int, h: int) -> int:
    """The paper's size approximation ``n = d^h`` (stated under Table I)."""
    return d**h


# ----------------------------------------------------------------------
# hierarchical algorithm (Eq. 11)
# ----------------------------------------------------------------------
def hierarchical_messages_sum(p: int, d: int, h: int, alpha: float) -> float:
    """Direct evaluation of the level-by-level sum (pre-Eq. 11)."""
    return float(
        sum(d ** (h - i) * p * d ** (i - 1) * alpha ** (i - 1) for i in range(1, h))
    )


def hierarchical_messages(p: int, d: int, h: int, alpha: float) -> float:
    """Eq. (11): ``p · d^(h-1) · (1 - α^(h-1)) / (1 - α)``."""
    if h < 1:
        raise ValueError("need h >= 1")
    if h == 1:
        return 0.0  # a single node sends nothing
    if alpha == 1.0:
        return float(p * d ** (h - 1) * (h - 1))
    return float(p * d ** (h - 1) * (1 - alpha ** (h - 1)) / (1 - alpha))


# ----------------------------------------------------------------------
# centralized algorithm (Eq. 12 / corrected Eq. 14)
# ----------------------------------------------------------------------
def centralized_messages_sum(p: int, d: int, h: int) -> float:
    """Direct evaluation of Eq. (12): ``Σ p·d^(h-i)·(h-i)``."""
    return float(sum(p * d ** (h - i) * (h - i) for i in range(1, h)))


def centralized_messages(p: int, d: int, h: int) -> float:
    """Corrected closed form of Eq. (12):
    ``p · d · ((h-1)·d^h - h·d^(h-1) + 1) / (d-1)²`` (see erratum)."""
    if h < 1:
        raise ValueError("need h >= 1")
    if h == 1:
        return 0.0
    if d == 1:
        return float(p * h * (h - 1) // 2)
    return float(p * d * ((h - 1) * d**h - h * d ** (h - 1) + 1) / (d - 1) ** 2)


def centralized_messages_paper_eq14(p: int, d: int, h: int) -> float:
    """The paper's printed Eq. (14) — kept verbatim for comparison.

    Known erratum: does not match Eq. (12); see the module docstring.
    """
    if d == 1:
        raise ValueError("Eq. (14) is undefined at d=1")
    return float(p * ((d**h - 2 * d) * (d * h - d - h) - d) / (d - 1) ** 2)


# ----------------------------------------------------------------------
# time / space bounds of Table I
# ----------------------------------------------------------------------
def hierarchical_time_bound(p: int, n: int, d: int) -> float:
    """``O(d² p n²)`` — distributed across all nodes."""
    return float(d * d * p * n * n)


def centralized_time_bound(p: int, n: int) -> float:
    """``O(p n³)`` — all at the sink."""
    return float(p * n**3)


def space_bound(p: int, n: int) -> float:
    """``O(p n²)`` for both algorithms (differing only in placement)."""
    return float(p * n * n)


def table1_rows() -> List[Dict[str, str]]:
    """Table I verbatim (symbolic)."""
    return [
        {
            "metric": "Space Complexity",
            "hierarchical": "O(p n^2) (distributed across all processes)",
            "centralized": "O(p n^2) (at the sink node)",
        },
        {
            "metric": "Time Complexity",
            "hierarchical": "O(d^2 p n^2) (distributed across all processes)",
            "centralized": "O(p n^3) (at the sink node)",
        },
        {
            "metric": "Message Complexity",
            "hierarchical": "p d^(h-1) (1-a^(h-1))/(1-a)   [Eq. 11]",
            "centralized": "p d ((h-1)d^h - h d^(h-1) + 1)/(d-1)^2   [Eq. 12, corrected closed form]",
        },
    ]
