"""ASCII timing diagrams of executions — the paper's figures, in text.

Renders a trace the way the paper draws its timing diagrams: one lane
per process, events in a shared (linearized) order, predicate-true
spans shaded, messages annotated.  Invaluable when debugging a
detection discrepancy on a counterexample trace.

Example (Figure 1's staggered scenario)::

    P0 |  #####d###########c###u###  .
    P1 |  .......#####c#######d####u

(`#` predicate true, `.` false; `u`/`d`/`c` mark send ("up"), receive
("down") and internal ("change") events inside the span.)

The renderer is deliberately simple: columns are global event order,
not wall-clock time — exactly the information ``(E, ≺)`` carries.
"""

from __future__ import annotations

from typing import List

from ..sim.trace import EventKind, ExecutionTrace

__all__ = ["render_timeline"]

_MARKS = {EventKind.INTERNAL: "i", EventKind.SEND: "s", EventKind.RECV: "r"}


def render_timeline(trace: ExecutionTrace, *, width: int = 0) -> str:
    """One lane per process over the global event order.

    Each event occupies one column at its ``global_order`` position and
    is drawn as ``i``/``s``/``r`` (internal/send/receive), uppercase
    when the local predicate is true after it.  Between events a lane
    shows ``#`` while the predicate holds and ``.`` otherwise, so the
    paper's shaded intervals are immediately visible.
    """
    total = trace.event_count()
    if total == 0:
        return "\n".join(f"P{p} |" for p in range(trace.n))
    columns = max(total, width)
    lanes: List[List[str]] = []
    for p in range(trace.n):
        value = trace.initial_predicate[p]
        lane = []
        events = {e.global_order: e for e in trace.events[p]}
        for col in range(columns):
            event = events.get(col)
            if event is None:
                lane.append("#" if value else ".")
            else:
                mark = _MARKS.get(event.kind, "?")
                lane.append(mark.upper() if event.predicate else mark)
                value = event.predicate
        lanes.append(lane)
    label_width = len(f"P{trace.n - 1}")
    return "\n".join(
        f"{('P' + str(p)).ljust(label_width)} |{''.join(lane)}"
        for p, lane in enumerate(lanes)
    )
