"""Empirical metric collection for the experiments.

Aggregates, from a finished simulation, the three quantities Section IV
analyses — messages, space, time — plus the realized per-level
aggregation probability α:

* **messages**: hop-counted control-plane sends, from the network's
  counters (every forwarded hop of a routed report counts once, per the
  paper's "a message that traverses h hops … is equivalent to h
  point-to-point messages");
* **space**: peak queued intervals per node, in intervals and in vector
  entries (each interval stores two length-``n`` timestamps);
* **time**: vector-timestamp comparisons executed per node (each is
  ``O(n)`` work — the unit of the paper's time bounds);
* **α (realized)**: per tree level, the ratio of solutions detected to
  detection opportunities (interval batches received), the empirical
  counterpart of the paper's abstract α parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..sim.network import Network
from ..topology.spanning_tree import SpanningTree

__all__ = ["NodeMetrics", "RunMetrics", "collect_hierarchical", "collect_centralized"]


@dataclass
class NodeMetrics:
    pid: int
    level: int
    comparisons: int
    detections: int
    peak_queue_intervals: int
    messages_sent: int


@dataclass
class RunMetrics:
    """Aggregated measurements of one simulation run.

    Instances are plain data — picklable by construction — because the
    sharded experiment runner ships them across process boundaries and
    folds them back together with :meth:`merge`.  ``level_detections`` /
    ``level_offers`` keep the per-level α numerators and denominators so
    a merge can recompute ``realized_alpha_by_level`` exactly instead of
    averaging averages.
    """

    control_messages: int
    app_messages: int
    per_node: List[NodeMetrics] = field(default_factory=list)
    root_detections: int = 0
    realized_alpha_by_level: Dict[int, float] = field(default_factory=dict)
    level_detections: Dict[int, int] = field(default_factory=dict)
    level_offers: Dict[int, int] = field(default_factory=dict)

    @property
    def total_comparisons(self) -> int:
        return sum(m.comparisons for m in self.per_node)

    @property
    def max_comparisons_per_node(self) -> int:
        return max((m.comparisons for m in self.per_node), default=0)

    @property
    def max_queue_per_node(self) -> int:
        return max((m.peak_queue_intervals for m in self.per_node), default=0)

    @property
    def total_peak_queue(self) -> int:
        return sum(m.peak_queue_intervals for m in self.per_node)

    def merge(self, other: "RunMetrics") -> None:
        """Fold another run's measurements into this one.

        Message/detection counters add; per-node rows concatenate (the
        pid space of different shards may overlap — rows are kept as
        recorded, one per (shard, node)); realized α is recomputed from
        the summed per-level detection/offer tallies.  Merging is
        associative and applied in shard order, so a parallel sweep's
        aggregate is identical for any worker count.
        """
        self.control_messages += other.control_messages
        self.app_messages += other.app_messages
        self.per_node.extend(other.per_node)
        self.root_detections += other.root_detections
        for level, value in other.level_detections.items():
            self.level_detections[level] = self.level_detections.get(level, 0) + value
        for level, value in other.level_offers.items():
            self.level_offers[level] = self.level_offers.get(level, 0) + value
        if self.level_offers:
            self.realized_alpha_by_level = {
                level: self.level_detections.get(level, 0) / offers
                for level, offers in self.level_offers.items()
                if offers
            }
        else:
            # Collectors that don't tally per-level offers (token,
            # possibly): keep whatever α maps the parts carried.
            self.realized_alpha_by_level.update(other.realized_alpha_by_level)

    @classmethod
    def merged(cls, parts: Sequence["RunMetrics"]) -> "RunMetrics":
        """A fresh aggregate of *parts* (which are left untouched)."""
        total = cls(control_messages=0, app_messages=0)
        for part in parts:
            total.merge(part)
        return total

    def comparisons_gini(self) -> float:
        """Concentration of comparison work across nodes (0 = perfectly
        even, →1 = all at one node).  Demonstrates the "distributed
        across all processes" vs "at the sink" Table I distinction."""
        values = np.sort(np.array([m.comparisons for m in self.per_node], dtype=float))
        if values.size == 0 or values.sum() == 0:
            return 0.0
        n = values.size
        index = np.arange(1, n + 1)
        return float((2 * index - n - 1).dot(values) / (n * values.sum()))


def _report_messages(network: Network) -> int:
    """Hop-counted ``IntervalReport`` sends, read from the telemetry
    registry (the network registers its counters there)."""
    sent = network.sim.telemetry.registry.get("repro_net_sent_total")
    if sent is None:
        return 0
    return sum(
        count
        for (plane, mtype), count in sent.items()
        if plane == "control" and mtype == "IntervalReport"
    )


def _per_node_sent(network: Network) -> Dict[int, int]:
    vec = network.sim.telemetry.registry.get("repro_net_node_sent_total")
    return dict(vec) if vec is not None else {}


def _publish_level_metrics(
    registry,
    detections_by_level: Dict[int, int],
    opportunities_by_level: Dict[int, int],
    alpha_by_level: Dict[int, float],
) -> None:
    """Mirror the per-level aggregates into the registry so exporters
    see them.  Assignment (not ``+=``) keeps repeated collection of the
    same run idempotent."""
    det = registry.counter_vec(
        "repro_level_detections_total",
        "Solutions detected, summed over the nodes of each tree level.",
        ("level",),
    )
    off = registry.counter_vec(
        "repro_level_offers_total",
        "Intervals offered to detection cores, per tree level.",
        ("level",),
    )
    alpha = registry.gauge_vec(
        "repro_level_realized_alpha",
        "Realized aggregation probability α per tree level.",
        ("level",),
    )
    for level, value in detections_by_level.items():
        det[level] = value
    for level, value in opportunities_by_level.items():
        off[level] = value
    for level, value in alpha_by_level.items():
        alpha[level] = value


def collect_hierarchical(
    network: Network, tree: SpanningTree, roles: Dict[int, object]
) -> RunMetrics:
    """Metrics for a hierarchical run (*roles*: pid → HierarchicalRole)."""
    metrics = RunMetrics(
        control_messages=_report_messages(network),
        app_messages=network.messages_sent("app"),
    )
    per_node_sent = _per_node_sent(network)
    # Realized alpha per level: solutions / offers-from-children batches.
    detections_by_level: Dict[int, int] = {}
    opportunities_by_level: Dict[int, int] = {}
    for pid, role in roles.items():
        core = role.core
        if core is None:
            continue
        level = tree.level(pid) if pid in tree.parent else 0
        metrics.per_node.append(
            NodeMetrics(
                pid=pid,
                level=level,
                comparisons=core.stats.comparisons,
                detections=core.stats.detections,
                peak_queue_intervals=core.peak_queue_space(),
                messages_sent=per_node_sent.get(pid, 0),
            )
        )
        if role.parent_id is None:
            metrics.root_detections += len(role.detections)
        detections_by_level[level] = (
            detections_by_level.get(level, 0) + core.stats.detections
        )
        opportunities_by_level[level] = (
            opportunities_by_level.get(level, 0) + core.stats.offers
        )
    for level, opportunities in opportunities_by_level.items():
        if opportunities:
            metrics.realized_alpha_by_level[level] = (
                detections_by_level.get(level, 0) / opportunities
            )
    metrics.level_detections = dict(detections_by_level)
    metrics.level_offers = dict(opportunities_by_level)
    _publish_level_metrics(
        network.sim.telemetry.registry,
        detections_by_level,
        opportunities_by_level,
        metrics.realized_alpha_by_level,
    )
    return metrics


def collect_centralized(
    network: Network, tree: SpanningTree, sink_role, reporter_pids: List[int]
) -> RunMetrics:
    """Metrics for a centralized-baseline run."""
    metrics = RunMetrics(
        control_messages=_report_messages(network),
        app_messages=network.messages_sent("app"),
    )
    per_node_sent = _per_node_sent(network)
    core = sink_role.core
    sink_pid = sink_role.process.pid
    metrics.per_node.append(
        NodeMetrics(
            pid=sink_pid,
            level=tree.level(sink_pid),
            comparisons=core.stats.comparisons,
            detections=core.stats.detections,
            peak_queue_intervals=core.peak_queue_space(),
            messages_sent=per_node_sent.get(sink_pid, 0),
        )
    )
    metrics.root_detections = len(sink_role.detections)
    for pid in reporter_pids:
        metrics.per_node.append(
            NodeMetrics(
                pid=pid,
                level=tree.level(pid),
                comparisons=0,  # reporters do no detection work
                detections=0,
                peak_queue_intervals=0,
                messages_sent=per_node_sent.get(pid, 0),
            )
        )
    return metrics
