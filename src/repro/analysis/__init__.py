"""Complexity formulas (Section IV), empirical metrics and reporting."""

from .complexity import (
    centralized_messages,
    centralized_messages_paper_eq14,
    centralized_messages_sum,
    centralized_time_bound,
    hierarchical_messages,
    hierarchical_messages_sum,
    hierarchical_time_bound,
    paper_n,
    space_bound,
    table1_rows,
    tree_nodes,
)
from .metrics import (
    NodeMetrics,
    RunMetrics,
    collect_centralized,
    collect_hierarchical,
)
from .report import render_kv, render_series, render_table
from .summary import RunSummary, render_summary, summarize_run
from .timeline import render_timeline

__all__ = [
    "NodeMetrics",
    "RunMetrics",
    "RunSummary",
    "centralized_messages",
    "centralized_messages_paper_eq14",
    "centralized_messages_sum",
    "centralized_time_bound",
    "collect_centralized",
    "collect_hierarchical",
    "hierarchical_messages",
    "hierarchical_messages_sum",
    "hierarchical_time_bound",
    "paper_n",
    "render_kv",
    "render_series",
    "render_table",
    "render_summary",
    "render_timeline",
    "space_bound",
    "summarize_run",
    "table1_rows",
    "tree_nodes",
]
