"""Intervals, the overlap conditions, aggregation ``⊓`` and queues."""

from .aggregation import aggregate, can_aggregate
from .interval import Interval
from .overlap import overlap, overlap_pair, pairwise_matrix, possibly, possibly_pair
from .queues import IntervalQueue, ReorderBuffer

__all__ = [
    "Interval",
    "IntervalQueue",
    "ReorderBuffer",
    "aggregate",
    "can_aggregate",
    "overlap",
    "overlap_pair",
    "pairwise_matrix",
    "possibly",
    "possibly_pair",
]
