"""The overlap conditions for Possibly(Φ) and Definitely(Φ).

From Section II-B of the paper (conditions (1) and (2), due to
Garg–Waldecker and Kshemkalyani):

* ``Possibly(Φ)``  holds in a set ``X`` iff
  ``∀ x_i, x_j ∈ X (i≠j): max(x_i) ≮ min(x_j)``
* ``Definitely(Φ)`` holds in a set ``X`` iff
  ``∀ x_i, x_j ∈ X (i≠j): min(x_i) < max(x_j)``

The ``Definitely`` condition is the ``overlap(X)`` property of
Section III-C.  Both are tested pairwise over distinct intervals.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from ..clocks import vc_less, vc_not_less
from .interval import Interval

__all__ = [
    "overlap_pair",
    "overlap",
    "possibly_pair",
    "possibly",
    "pairwise_matrix",
]


def overlap_pair(x: Interval, y: Interval) -> bool:
    """``overlap({x, y})``: ``min(x) < max(y)`` and ``min(y) < max(x)``."""
    return vc_less(x.lo, y.hi) and vc_less(y.lo, x.hi)


def overlap(intervals: Iterable[Interval]) -> bool:
    """``overlap(X)`` over an arbitrary set — the Definitely(Φ) condition.

    Vacuously true for the empty set and singletons (a single process's
    local predicate holding is a solution for its singleton subtree).
    """
    items = list(intervals)
    return all(overlap_pair(x, y) for x, y in combinations(items, 2))


def possibly_pair(x: Interval, y: Interval) -> bool:
    """The pairwise Possibly(Φ) condition: ``max(x) ≮ min(y)`` and
    ``max(y) ≮ min(x)`` (neither interval wholly precedes the other)."""
    return vc_not_less(x.hi, y.lo) and vc_not_less(y.hi, x.lo)


def possibly(intervals: Iterable[Interval]) -> bool:
    """The Possibly(Φ) condition (Eq. 1) over a set of intervals."""
    items = list(intervals)
    return all(possibly_pair(x, y) for x, y in combinations(items, 2))


def pairwise_matrix(intervals: Sequence[Interval]) -> np.ndarray:
    """Vectorized all-pairs ``min(x_i) < max(x_j)`` truth table.

    Returns a boolean ``(k, k)`` matrix ``M`` with
    ``M[i, j] == vc_less(x_i.lo, x_j.hi)``.  Used by the offline
    brute-force checker, where evaluating many candidate sets pair by
    pair in Python would dominate the runtime.
    """
    k = len(intervals)
    if k == 0:
        return np.zeros((0, 0), dtype=bool)
    los = np.stack([x.lo for x in intervals])  # (k, n)
    his = np.stack([x.hi for x in intervals])  # (k, n)
    # le[i, j] = all(los[i] <= his[j]); strict[i, j] = any(los[i] < his[j])
    le = np.all(los[:, None, :] <= his[None, :, :], axis=2)
    strict = np.any(los[:, None, :] < his[None, :, :], axis=2)
    return le & strict
