"""Interval aggregation — the ``⊓`` operator of Section III-C.

For a set ``X`` of intervals with ``overlap(X)`` true, the aggregated
interval ``⊓(X)`` is defined component-wise (Eq. 5–6):

* ``min(⊓(X))[i] = max_{x ∈ X} (min(x)[i])``
* ``max(⊓(X))[i] = min_{x ∈ X} (max(x)[i])``

Theorem 1 / Lemma 1 justify substituting ``⊓(X)`` for the whole set when
detecting ``Definitely(Φ)`` in a larger union, and Eq. (7) shows the
operator is associative over unions: ``⊓(⊓(X), ⊓(Y)) = ⊓(X ∪ Y)``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .interval import Interval
from .overlap import overlap

__all__ = ["aggregate", "can_aggregate"]


def can_aggregate(intervals: Iterable[Interval]) -> bool:
    """True when ``⊓`` may be applied, i.e. ``overlap(X)`` holds."""
    return overlap(intervals)

def aggregate(
    intervals: Sequence[Interval],
    owner: int,
    seq: int,
    *,
    check: bool = False,
) -> Interval:
    """Aggregate a solution set into a single interval per Eq. (5)–(6).

    Parameters
    ----------
    intervals:
        The solution set ``X`` (must be non-empty).  The caller — a
        detection core — guarantees ``overlap(X)``; pass ``check=True``
        to re-verify (used by tests and the offline tools).
    owner:
        The node generating the aggregation (root of the subtree where
        the solution was detected).
    seq:
        Per-owner sequence number; successive aggregations by the same
        node must use increasing values (Theorem 2 relies on this order).
    check:
        Re-verify ``overlap(X)`` before aggregating.

    Aggregating a singleton returns an interval with the same bounds —
    which is why leaf nodes can run the same code path as interior
    nodes: a leaf's every local interval is a solution for its
    singleton subtree and is forwarded essentially unchanged.
    """
    if not intervals:
        raise ValueError("cannot aggregate an empty set of intervals")
    if check and not overlap(intervals):
        raise ValueError("aggregation requires overlap(X) to hold")
    if len(intervals) == 1:
        # A leaf's singleton solution aggregates to its own bounds; skip
        # the stacking entirely (the bounds are already frozen, so the
        # Interval constructor below reuses them without copying).
        only = intervals[0]
        lo, hi = only.lo, only.hi
        members = only.members
    else:
        # Eq. (5)-(6) over one stacked (|X|, n) matrix per bound: a
        # single reduction each instead of per-interval join/meet calls.
        lo = np.stack([x.lo for x in intervals]).max(axis=0)
        lo.setflags(write=False)
        hi = np.stack([x.hi for x in intervals]).min(axis=0)
        hi.setflags(write=False)
        members = frozenset().union(*(x.members for x in intervals))
    return Interval(
        owner=owner,
        seq=seq,
        lo=lo,
        hi=hi,
        members=members,
        parts=tuple(intervals),
    )
