"""Intervals — the unit of predicate detection.

An *interval* at process ``P_i`` is a maximal duration in which the
local predicate is true (Section II-B).  It is identified by the vector
timestamps of its first and last events, ``min(x)`` and ``max(x)``.

An *aggregated* interval (Section III-C) represents a whole solution
set; its bounds are cuts rather than events.  Aggregated intervals keep
*provenance* — the intervals they aggregate — so that a solution
reported at any level of the hierarchy can be unfolded back into the
concrete per-process intervals it covers, which the test-suite uses to
verify Eq. (2) end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np

from ..clocks import Timestamp, freeze, vc_le

__all__ = ["Interval"]


@dataclass(frozen=True)
class Interval:
    """A concrete or aggregated interval.

    Attributes
    ----------
    owner:
        The process the interval occurred at (concrete), or the node
        that generated the aggregation (aggregated).
    seq:
        Per-owner sequence number; ``succ`` relationships follow owner
        order, so ``seq`` strictly increases along a process's intervals
        (Theorem 2 for aggregated intervals).
    lo:
        Vector timestamp of ``min(x)`` (an event or a cut).
    hi:
        Vector timestamp of ``max(x)`` (an event or a cut).
    members:
        Processes whose local predicate the interval witnesses: a
        singleton for concrete intervals, the union of children
        subtrees' members for aggregated ones.
    parts:
        The intervals aggregated into this one (empty for concrete).
    """

    owner: int
    seq: int
    lo: Timestamp
    hi: Timestamp
    members: frozenset = field(default_factory=frozenset)
    parts: Tuple["Interval", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "lo", freeze(self.lo))
        object.__setattr__(self, "hi", freeze(self.hi))
        if self.lo.shape != self.hi.shape:
            raise ValueError("lo and hi must have the same number of components")
        if not vc_le(self.lo, self.hi):
            # For concrete intervals min(x) precedes max(x) by local order;
            # for aggregated ones Theorem 2 proves lo <= hi whenever the
            # aggregated set satisfied overlap.  Violations indicate a bug
            # upstream, so fail loudly.
            raise ValueError(
                f"interval bounds out of order: lo={self.lo.tolist()} "
                f"hi={self.hi.tolist()}"
            )
        if not self.members:
            object.__setattr__(self, "members", frozenset({self.owner}))
        object.__setattr__(self, "_key_cache", None)

    @property
    def n(self) -> int:
        """Number of vector components (system size)."""
        return self.lo.shape[0]

    @property
    def is_aggregated(self) -> bool:
        return bool(self.parts)

    def concrete_leaves(self) -> Iterator["Interval"]:
        """Yield the concrete intervals this interval transitively covers
        (itself, if concrete)."""
        if not self.parts:
            yield self
            return
        for part in self.parts:
            yield from part.concrete_leaves()

    def key(self) -> tuple:
        """A hashable identity usable across detector replays.

        Computed lazily and cached: ``key()`` backs ``__hash__``, so it
        is called once per set/dict operation on the detection hot path,
        and ``tobytes()`` copies both timestamps each time.  The bounds
        are immutable (frozen in ``__post_init__``), so the cache can
        never go stale.
        """
        cached = self._key_cache
        if cached is None:
            cached = (self.owner, self.seq, self.lo.tobytes(), self.hi.tobytes())
            object.__setattr__(self, "_key_cache", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return (
            self.owner == other.owner
            and self.seq == other.seq
            and np.array_equal(self.lo, other.lo)
            and np.array_equal(self.hi, other.hi)
        )

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "Agg" if self.is_aggregated else "Ivl"
        return (
            f"{kind}(P{self.owner}#{self.seq}, lo={self.lo.tolist()}, "
            f"hi={self.hi.tolist()})"
        )
