"""Per-source interval queues used by every detection core.

Each detector (hierarchical node, centralized sink, one-shot baseline)
maintains one FIFO queue per interval source — ``Q_0 … Q_l`` in
Algorithm 1.  Queue discipline matters: the safety of the head-deletion
rules relies on intervals from the same source being processed in
``succ`` order, so :meth:`IntervalQueue.enqueue` enforces strictly
increasing sequence numbers.

Because the paper does *not* assume FIFO channels (Section II-A),
reports can arrive out of order; the :class:`ReorderBuffer` restores
per-source order before intervals reach a queue.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, Optional, Sequence

from .interval import Interval

__all__ = ["IntervalQueue", "ReorderBuffer"]


class IntervalQueue:
    """A FIFO of intervals from one source, with peak-size accounting."""

    __slots__ = ("_items", "peak_size", "total_enqueued", "_last_seq")

    def __init__(self) -> None:
        self._items: deque[Interval] = deque()
        self.peak_size = 0
        self.total_enqueued = 0
        self._last_seq: Optional[int] = None

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._items)

    @property
    def head(self) -> Interval:
        return self._items[0]

    def enqueue(self, interval: Interval) -> None:
        if self._last_seq is not None and interval.seq <= self._last_seq:
            raise ValueError(
                f"out-of-order enqueue: seq {interval.seq} after "
                f"{self._last_seq} (reports must be reordered upstream)"
            )
        self._last_seq = interval.seq
        self._items.append(interval)
        self.total_enqueued += 1
        if len(self._items) > self.peak_size:
            self.peak_size = len(self._items)

    def extend(self, intervals: Sequence[Interval]) -> None:
        """Enqueue a whole run of intervals in one call.

        Equivalent to calling :meth:`enqueue` per interval — same seq
        validation, same final ``peak_size`` (intermediate sizes during
        a run are monotonically increasing, so one check at the end sees
        the run's maximum) — but the deque grows through a single C-level
        ``extend`` instead of one Python call per interval.  This is the
        ingestion primitive behind
        :meth:`~repro.detect.RepeatedDetectionCore.offer_batch`.
        """
        last = self._last_seq
        for interval in intervals:
            if last is not None and interval.seq <= last:
                raise ValueError(
                    f"out-of-order enqueue: seq {interval.seq} after "
                    f"{last} (reports must be reordered upstream)"
                )
            last = interval.seq
        if last is None:
            return
        self._last_seq = last
        self._items.extend(intervals)
        self.total_enqueued += len(intervals)
        if len(self._items) > self.peak_size:
            self.peak_size = len(self._items)

    def dequeue(self) -> Interval:
        return self._items.popleft()


class ReorderBuffer:
    """Restores per-source transport order over non-FIFO channels.

    Senders stamp consecutive transport sequence numbers ``0, 1, 2, …``
    on their reports (restarting from 0 on each new attachment, so the
    receiver creates a fresh buffer per attachment epoch).
    ``push(seq, item)`` returns the (possibly empty) run of items that
    became deliverable, in transport order.
    """

    __slots__ = ("_pending", "_next_seq")

    def __init__(self, start_seq: int = 0) -> None:
        self._pending: Dict[int, object] = {}
        self._next_seq = start_seq

    def push(self, seq: int, item) -> list:
        if seq < self._next_seq:
            raise ValueError(
                f"stale transport seq {seq}: already delivered "
                f"(next expected is {self._next_seq})"
            )
        if seq in self._pending:
            raise ValueError(f"duplicate transport seq {seq}: already buffered")
        self._pending[seq] = item
        out: list = []
        while self._next_seq in self._pending:
            out.append(self._pending.pop(self._next_seq))
            self._next_seq += 1
        return out

    @property
    def pending_count(self) -> int:
        return len(self._pending)
