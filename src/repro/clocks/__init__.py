"""Vector clocks, timestamps and cuts (paper Section II-A)."""

from .compare import HeadMatrix
from .cut import Cut, cut_of_events, is_consistent_cut
from .encoding import (
    best_encoding,
    decode_differential,
    decode_sparse,
    encode_differential,
    encode_sparse,
)
from .vector_clock import (
    Timestamp,
    VectorClock,
    freeze,
    join,
    meet,
    vc_concurrent,
    vc_equal,
    vc_le,
    vc_less,
    vc_not_less,
)

__all__ = [
    "Cut",
    "HeadMatrix",
    "best_encoding",
    "decode_differential",
    "decode_sparse",
    "encode_differential",
    "encode_sparse",
    "Timestamp",
    "VectorClock",
    "cut_of_events",
    "freeze",
    "is_consistent_cut",
    "join",
    "meet",
    "vc_concurrent",
    "vc_equal",
    "vc_le",
    "vc_less",
    "vc_not_less",
]
