"""Cuts of a distributed execution.

The bounds of an aggregated interval (Eq. 5–6 of the paper) are not event
timestamps but *cuts* — length-``n`` vectors describing, for every
process, how many of its events are included.  The paper notes this
explicitly after Theorem 1: "These are not events but cuts in execution
``(E, ≺)``, identified by their vector timestamps."

This module provides the small amount of cut-specific reasoning the
library needs: consistency checking against a recorded execution, and
the relation between cuts and event timestamps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .vector_clock import Timestamp, freeze, join, meet, vc_le

__all__ = ["Cut", "is_consistent_cut", "cut_of_events"]


class Cut:
    """A cut, wrapping a vector timestamp with set-like helpers.

    A cut ``C`` includes, for each process ``i``, the first ``C[i]``
    events of that process.  A cut is *consistent* when it is
    left-closed under happens-before.
    """

    __slots__ = ("vector",)

    def __init__(self, vector) -> None:
        self.vector: Timestamp = freeze(vector)

    @property
    def n(self) -> int:
        return self.vector.shape[0]

    def includes_event(self, process: int, local_index: int) -> bool:
        """True when the *local_index*-th event (1-based, matching vector
        clock components) of *process* lies inside the cut."""
        return local_index <= int(self.vector[process])

    def union(self, other: "Cut") -> "Cut":
        return Cut(join(self.vector, other.vector))

    def intersection(self, other: "Cut") -> "Cut":
        return Cut(meet(self.vector, other.vector))

    def __le__(self, other: "Cut") -> bool:
        return vc_le(self.vector, other.vector)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cut) and bool(
            np.array_equal(self.vector, other.vector)
        )

    def __hash__(self) -> int:
        return hash(self.vector.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cut({self.vector.tolist()})"


def is_consistent_cut(cut_vector: Timestamp, event_timestamps: Sequence[Sequence[Timestamp]]) -> bool:
    """Check that a cut is consistent with a recorded execution.

    Parameters
    ----------
    cut_vector:
        Candidate cut, one entry per process.
    event_timestamps:
        ``event_timestamps[i][k]`` is the vector timestamp of the
        ``k``-th event (0-based) executed by process ``i``.

    A cut is consistent iff for every event it includes, every event that
    happens-before it is also included; with vector clocks this reduces
    to: the timestamp of the last included event of each process must be
    component-wise ``<=`` the cut vector.
    """
    cut_vector = np.asarray(cut_vector)
    for i, events in enumerate(event_timestamps):
        k = int(cut_vector[i])
        if k < 0 or k > len(events):
            return False
        if k == 0:
            continue
        last = events[k - 1]
        if not vc_le(last, cut_vector):
            return False
    return True


def cut_of_events(timestamps: Sequence[Timestamp]) -> Cut:
    """Smallest consistent cut containing all of *timestamps* (their join)."""
    return Cut(join(*timestamps))
