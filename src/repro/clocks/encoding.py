"""Timestamp compression for control-plane reports.

Every control message carries vector timestamps of length ``n`` — the
O(n)-per-message factor in all of Section IV's message-size accounting,
and the dominant wire cost in the "resource-constraint network[s]" the
paper targets.  Two classical encodings cut it down:

* **Sparse encoding** — transmit only the non-zero components as
  ``(index, value)`` pairs.  Early in a run (and for processes that
  communicate locally) most components are zero.
* **Differential encoding** (Singhal–Kshemkalyani style) — against a
  reference timestamp both ends already share (the previous report on
  the same channel), transmit only the components that changed.
  Consecutive aggregates from the same child differ in few components
  when activity is localized, so report streams compress well.

Encoders return ``(payload, entries)`` where *entries* is the wire cost
in integer entries, comparable with
:func:`repro.sim.messages.payload_entries`; decoders invert exactly.
The ablation bench measures realized savings on simulated report
streams.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .vector_clock import Timestamp, freeze

__all__ = [
    "encode_sparse",
    "decode_sparse",
    "encode_differential",
    "decode_differential",
    "best_encoding",
]


def encode_sparse(ts: Timestamp) -> Tuple[list, int]:
    """``(index, value)`` pairs for non-zero components.

    Wire cost: ``1 + 2·nnz`` entries (one for the length-``n`` header so
    the decoder can rebuild the vector, two per pair).
    """
    indices = np.flatnonzero(ts)
    payload = [(int(i), int(ts[i])) for i in indices]
    return payload, 1 + 2 * len(payload)


def decode_sparse(payload: list, n: int) -> Timestamp:
    out = np.zeros(n, dtype=np.int64)
    for index, value in payload:
        out[index] = value
    return freeze(out)


def encode_differential(
    ts: Timestamp, reference: Optional[Timestamp]
) -> Tuple[list, int]:
    """Components that differ from *reference* (``None`` = all zeros).

    Wire cost: ``1 + 2·#changed`` entries.  Timestamps from the same
    monotone stream only ever grow, so the decoder can apply changes on
    top of its copy of the reference.
    """
    if reference is None:
        return encode_sparse(ts)
    if reference.shape != ts.shape:
        raise ValueError("reference must have the same number of components")
    changed = np.flatnonzero(ts != reference)
    payload = [(int(i), int(ts[i])) for i in changed]
    return payload, 1 + 2 * len(payload)


def decode_differential(
    payload: list, reference: Optional[Timestamp], n: int
) -> Timestamp:
    if reference is None:
        return decode_sparse(payload, n)
    out = np.array(reference, dtype=np.int64, copy=True)
    for index, value in payload:
        out[index] = value
    return freeze(out)


def best_encoding(ts: Timestamp, reference: Optional[Timestamp]) -> Tuple[str, int]:
    """The cheapest of raw / sparse / differential for this timestamp,
    as ``(name, entries)`` — what an adaptive sender would pick."""
    n = int(ts.shape[0])
    options = [("raw", n)]
    _, sparse_cost = encode_sparse(ts)
    options.append(("sparse", sparse_cost))
    if reference is not None:
        _, diff_cost = encode_differential(ts, reference)
        options.append(("differential", diff_cost))
    return min(options, key=lambda pair: pair[1])
