"""Vector clocks and vector-timestamp comparisons.

Implements the Mattern/Fidge vector clocks used throughout the paper
(Section II-A), with the exact update rules:

1. before an internal event at ``P_i``:  ``V_i[i] += 1``
2. before ``P_i`` sends a message:       ``V_i[i] += 1``, then piggyback ``V_i``
3. when ``P_j`` receives a message with timestamp ``U``:
   ``V_j = max(V_j, U)`` component-wise, then ``V_j[j] += 1``,
   before delivering the message.

Timestamps are immutable numpy ``int64`` arrays.  All comparison
predicates are vectorized — the pairwise checks in the detection cores
are the hot path of the whole library, so none of them iterate over
components in Python.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Timestamp",
    "VectorClock",
    "freeze",
    "vc_le",
    "vc_less",
    "vc_not_less",
    "vc_concurrent",
    "vc_equal",
    "join",
    "meet",
]

#: A vector timestamp: an immutable 1-D ``int64`` array of length ``n``.
Timestamp = np.ndarray


def freeze(values) -> Timestamp:
    """Return an immutable ``int64`` copy of *values* usable as a timestamp.

    Already-frozen timestamps pass through unchanged: an immutable,
    base-less array can be shared safely, and every ``Interval``
    constructor funnels its bounds through here, so the pass-through
    turns re-wrapping (aggregation provenance, message decode, replay)
    into a no-op instead of an O(n) copy.
    """
    if (
        type(values) is np.ndarray
        and values.dtype == np.int64
        and values.ndim == 1
        and not values.flags.writeable
        and values.base is None
    ):
        return values
    arr = np.array(values, dtype=np.int64, copy=True)
    if arr.ndim != 1:
        raise ValueError(f"a timestamp must be 1-D, got shape {arr.shape}")
    arr.setflags(write=False)
    return arr


def vc_le(u: Timestamp, v: Timestamp) -> bool:
    """``u <= v``: every component of *u* is at most the one in *v*."""
    # ndarray method calls skip numpy's module-level dispatch — this
    # and vc_less are the library's hottest functions (profiled: ~2x).
    return bool((u <= v).all())


def vc_less(u: Timestamp, v: Timestamp) -> bool:
    """Strict vector order ``u < v``.

    Per Section II-A: ``u < v`` iff every component of *u* is ``<=`` the
    corresponding component of *v* and at least one is strictly smaller.
    Between event timestamps this is exactly Lamport's happens-before.
    """
    return bool((u <= v).all() and (u < v).any())


def vc_not_less(u: Timestamp, v: Timestamp) -> bool:
    """The ``u ≮ v`` test used by Algorithm 1 (lines 12, 14) and Eq. (10)."""
    return not vc_less(u, v)


def vc_concurrent(u: Timestamp, v: Timestamp) -> bool:
    """Neither ``u < v`` nor ``v < u`` (and not equal): concurrent events."""
    return not vc_less(u, v) and not vc_less(v, u) and not vc_equal(u, v)


def vc_equal(u: Timestamp, v: Timestamp) -> bool:
    """Component-wise equality of two timestamps."""
    return u.shape == v.shape and bool((u == v).all())


def join(*timestamps: Timestamp) -> Timestamp:
    """Component-wise maximum of one or more timestamps (their least upper
    bound in the vector-clock lattice)."""
    if not timestamps:
        raise ValueError("join() of no timestamps")
    out = np.maximum.reduce(np.asarray(timestamps))
    out.setflags(write=False)
    return out


def meet(*timestamps: Timestamp) -> Timestamp:
    """Component-wise minimum of one or more timestamps (their greatest
    lower bound in the vector-clock lattice)."""
    if not timestamps:
        raise ValueError("meet() of no timestamps")
    out = np.minimum.reduce(np.asarray(timestamps))
    out.setflags(write=False)
    return out


class VectorClock:
    """The mutable per-process clock, following the paper's update rules.

    Parameters
    ----------
    n:
        Number of processes in the system (vector length).
    index:
        This process's own component, ``0 <= index < n``.
    """

    __slots__ = ("_v", "index")

    def __init__(self, n: int, index: int) -> None:
        if not 0 <= index < n:
            raise ValueError(f"index {index} out of range for n={n}")
        self._v = np.zeros(n, dtype=np.int64)
        self.index = index

    @property
    def n(self) -> int:
        """Number of components (processes)."""
        return self._v.shape[0]

    def peek(self) -> Timestamp:
        """Immutable snapshot of the current clock value (no tick)."""
        return freeze(self._v)

    def tick(self) -> Timestamp:
        """Advance the local component for an internal event; return the
        timestamp of that event."""
        self._v[self.index] += 1
        return freeze(self._v)

    def send(self) -> Timestamp:
        """Advance for a send event and return the timestamp to piggyback
        on the outgoing message (rule 2)."""
        return self.tick()

    def receive(self, piggyback: Timestamp) -> Timestamp:
        """Merge a received message's *piggyback* timestamp and advance for
        the receive event (rule 3); return the receive event's timestamp."""
        if piggyback.shape != self._v.shape:
            raise ValueError(
                f"piggyback has {piggyback.shape[0]} components, "
                f"clock has {self._v.shape[0]}"
            )
        np.maximum(self._v, piggyback, out=self._v)
        return self.tick()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VectorClock(P{self.index}, {self._v.tolist()})"
