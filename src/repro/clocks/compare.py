"""Vectorized, incremental head-pair comparison engine.

Algorithm 1's activations are dominated by ``≮`` tests between queue
*heads*: the lines 4–17 fixpoint tests ``min(x) < max(y)`` over head
pairs, and Eq. (10) pruning tests ``max(x) < max(y)`` over the same
heads again.  Calling :func:`~repro.clocks.vector_clock.vc_less` per
pair costs a numpy dispatch (plus two temporaries) per test, and —
worse — every activation repeats tests whose operands did not change:
a head only changes when its queue's front is dequeued or a fresh
interval lands in an empty queue.

:class:`HeadMatrix` exploits that.  It keeps the current heads' ``lo``
and ``hi`` timestamps stacked as ``(capacity, n)`` arrays and memoizes
the two boolean pair tables

* ``lo_rows[i][j]  =  lo_i < hi_j``   (the fixpoint / overlap test)
* ``hi_rows[i][j]  =  hi_i < hi_j``   (the Eq. (10) dominance test)

Tables are recomputed lazily when a head changed — one batched numpy
pass over the stacked bounds — and then materialized as nested Python
lists, so the per-pair queries issued by the detection core are plain
list indexing with no numpy dispatch at all.  Small tables (or many
simultaneously changed heads) refresh with a single ``(k, k, n)``
broadcast; large tables with few changed heads refresh only the dirty
rows and columns.  The two tables invalidate independently: the
dominance table is only consulted when a solution is found, so
activations that never reach line 18 never pay for it.

The detection core calls :meth:`set_head` / :meth:`clear_head` on every
head transition and :meth:`add_key` / :meth:`remove_key` when the fault
layer rewires its queues; that is the entire invalidation contract (see
docs/performance.md).

The class lives in :mod:`repro.clocks` because it only speaks
timestamps; it knows nothing about intervals or queues.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["HeadMatrix"]

#: Tables at most this many rows always refresh with one full broadcast
#: (the batched op is so small that per-row updates would cost more
#: numpy dispatches than they save).
_FULL_REFRESH_ROWS = 8


class HeadMatrix:
    """Stacked queue-head bounds with memoized pairwise comparisons.

    Keys are arbitrary hashables (the detection core's queue keys) and
    keep their insertion order, so partner enumeration matches the
    core's ``queues.items()`` iteration exactly — a requirement for
    byte-identical prune streams between the scalar and vectorized
    engines.

    ``refreshes`` / ``refreshed_rows`` count lazy recomputations; tests
    use them to assert the memoization/invalidation contract (a query
    after no head change must not recompute anything).
    """

    __slots__ = (
        "_keys",
        "_order",
        "_free",
        "_cap",
        "_used",
        "_n",
        "_los",
        "_his",
        "_pres",
        "_lo_rows",
        "_hi_rows",
        "_dirty_lo",
        "_dirty_hi",
        "refreshes",
        "refreshed_rows",
    )

    def __init__(self, keys: Iterable[Hashable] = ()) -> None:
        self._keys: Dict[Hashable, int] = {}
        #: (key, row) pairs in key-insertion order
        self._order: List[Tuple[Hashable, int]] = []
        self._free: List[int] = []
        self._cap = 0
        self._used = 0
        self._n: Optional[int] = None
        self._los: Optional[np.ndarray] = None
        self._his: Optional[np.ndarray] = None
        self._pres: List[bool] = []
        self._lo_rows: List[List[bool]] = []
        self._hi_rows: List[List[bool]] = []
        self._dirty_lo: set[int] = set()
        self._dirty_hi: set[int] = set()
        self.refreshes = 0
        self.refreshed_rows = 0
        for key in keys:
            self.add_key(key)

    # ------------------------------------------------------------------
    # capacity management
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        new_cap = max(8, self._cap * 2)
        extra = new_cap - self._cap
        self._pres.extend([False] * extra)
        for row in self._lo_rows:
            row.extend([False] * extra)
        for row in self._hi_rows:
            row.extend([False] * extra)
        for _ in range(extra):
            self._lo_rows.append([False] * new_cap)
            self._hi_rows.append([False] * new_cap)
        if self._los is not None:
            los = np.zeros((new_cap, self._n), dtype=np.int64)
            los[: self._cap] = self._los
            self._los = los
            his = np.zeros((new_cap, self._n), dtype=np.int64)
            his[: self._cap] = self._his
            self._his = his
        self._cap = new_cap

    def _init_bounds(self, n: int) -> None:
        self._n = n
        self._los = np.zeros((self._cap, n), dtype=np.int64)
        self._his = np.zeros((self._cap, n), dtype=np.int64)

    # ------------------------------------------------------------------
    # key management (mirrors the core's queue dict)
    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def add_key(self, key: Hashable) -> None:
        """Open a slot for *key* (initially no head)."""
        if key in self._keys:
            raise KeyError(f"key {key!r} already tracked")
        if self._free:
            row = self._free.pop()
        else:
            if self._used == self._cap:
                self._grow()
            row = self._used
            self._used += 1
        self._pres[row] = False
        self._keys[key] = row
        self._order.append((key, row))

    def remove_key(self, key: Hashable) -> None:
        row = self._keys.pop(key)
        self._pres[row] = False
        self._dirty_lo.discard(row)
        self._dirty_hi.discard(row)
        self._free.append(row)
        self._order = [(k, r) for k, r in self._order if r != row]

    # ------------------------------------------------------------------
    # head transitions (the invalidation contract)
    # ------------------------------------------------------------------
    def set_head(self, key: Hashable, lo: np.ndarray, hi: np.ndarray) -> None:
        """*key*'s queue head is now the interval with bounds (lo, hi)."""
        row = self._keys[key]
        if self._n is None:
            self._init_bounds(lo.shape[0])
        elif lo.shape[0] != self._n:
            raise ValueError(
                f"timestamp has {lo.shape[0]} components, matrix built for {self._n}"
            )
        self._los[row] = lo
        self._his[row] = hi
        self._pres[row] = True
        self._dirty_lo.add(row)
        self._dirty_hi.add(row)

    def clear_head(self, key: Hashable) -> None:
        """*key*'s queue is now empty."""
        row = self._keys[key]
        self._pres[row] = False
        self._dirty_lo.discard(row)
        self._dirty_hi.discard(row)

    # ------------------------------------------------------------------
    # lazy refresh
    # ------------------------------------------------------------------
    def _refresh(self, dirty: set, rows: List[List[bool]], left: np.ndarray) -> None:
        """Bring one comparison table up to date.

        ``left`` is the bound compared on the left-hand side (``lo`` for
        the fixpoint table, ``hi`` for the dominance table); the
        right-hand side is always ``hi``.
        """
        live = [r for r in dirty if self._pres[r]]
        dirty.clear()
        if not live or self._los is None:
            return
        if self._pres.count(True) <= 1:
            # A lone present head has no pairs to compare (leaf cores hit
            # this on every offer).  Safe to skip: when another head
            # appears its own refresh recomputes both cross entries.
            return
        self.refreshes += 1
        self.refreshed_rows += len(live)
        his = self._his
        if self._used <= _FULL_REFRESH_ROWS or 2 * len(live) >= self._used:
            # One broadcast over the whole table.
            le = left[:, None, :] <= his[None, :, :]
            lt = left[:, None, :] < his[None, :, :]
            rows[:] = (le.all(axis=2) & lt.any(axis=2)).tolist()
        else:
            for i in live:
                row = ((left[i] <= his).all(axis=1) & (left[i] < his).any(axis=1))
                col = ((left <= his[i]).all(axis=1) & (left < his[i]).any(axis=1))
                rows[i] = row.tolist()
                for r, flag in enumerate(col.tolist()):
                    rows[r][i] = flag

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def partners(self, key: Hashable) -> Tuple[list, list, list]:
        """Fixpoint flags for *key* against every other present head.

        Returns ``(others, x_lt, y_lt)`` where ``others`` lists the
        other keys with a present head in insertion order,
        ``x_lt[j] = (lo_key < hi_others[j])`` and
        ``y_lt[j] = (lo_others[j] < hi_key)`` — the two ``≮`` tests of
        Algorithm 1 lines 12/14 for each pair.
        """
        if self._dirty_lo:
            self._refresh(self._dirty_lo, self._lo_rows, self._los)
        ra = self._keys[key]
        pres = self._pres
        lo_rows = self._lo_rows
        row = lo_rows[ra]
        others: list = []
        x_lt: List[bool] = []
        y_lt: List[bool] = []
        for b, rb in self._order:
            if rb == ra or not pres[rb]:
                continue
            others.append(b)
            x_lt.append(row[rb])
            y_lt.append(lo_rows[rb][ra])
        return others, x_lt, y_lt

    def dominators(self, key: Hashable) -> Tuple[list, list]:
        """Eq. (10) flags: ``(others, flags)`` with
        ``flags[j] = (hi_others[j] < hi_key)`` in insertion order."""
        if self._dirty_hi:
            self._refresh(self._dirty_hi, self._hi_rows, self._his)
        ra = self._keys[key]
        pres = self._pres
        hi_rows = self._hi_rows
        others: list = []
        flags: List[bool] = []
        for b, rb in self._order:
            if rb == ra or not pres[rb]:
                continue
            others.append(b)
            flags.append(hi_rows[rb][ra])
        return others, flags

    def lo_less_hi(self, a: Hashable, b: Hashable) -> bool:
        """``lo_a < hi_b`` from the cache (both heads must be present)."""
        if self._dirty_lo:
            self._refresh(self._dirty_lo, self._lo_rows, self._los)
        return bool(self._lo_rows[self._keys[a]][self._keys[b]])

    def hi_less_hi(self, a: Hashable, b: Hashable) -> bool:
        """``hi_a < hi_b`` from the cache (both heads must be present)."""
        if self._dirty_hi:
            self._refresh(self._dirty_hi, self._hi_rows, self._his)
        return bool(self._hi_rows[self._keys[a]][self._keys[b]])

    def has_head(self, key: Hashable) -> bool:
        return self._pres[self._keys[key]]

    def present_keys(self) -> List[Hashable]:
        """Keys with a present head, in insertion order."""
        return [k for k, r in self._order if self._pres[r]]
