"""Run exporters: JSONL event dumps, Prometheus text, Chrome traces.

Three interoperable views of one finished run, all derived from the
same :class:`~repro.obs.telemetry.Telemetry` and
:class:`~repro.sim.eventlog.EventLog`, all deterministic for a given
``(seed, workload, topology)``:

* :func:`eventlog_to_jsonl` — the structured event log, one JSON object
  per line, for ``jq``/pandas post-processing;
* :func:`prometheus_text` — the metrics registry in the Prometheus text
  exposition format (counters, gauges, cumulative histograms);
* :func:`chrome_trace` — the span table as Chrome trace-event JSON,
  loadable in Perfetto / ``chrome://tracing``: *processes* are tree
  levels, *threads* are nodes, and flow arrows follow each alarm's
  causal ancestry down to the concrete intervals.

Simulated time is unitless; the Chrome trace maps 1 simulated time unit
to 1 ms (``ts`` is in microseconds) so timelines are comfortably
zoomable.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from .registry import MetricsRegistry
from .spans import SpanTracker

__all__ = [
    "eventlog_to_jsonl",
    "prometheus_text",
    "chrome_trace",
    "write_chrome_trace",
]

#: Chrome-trace ``ts`` is in microseconds.  Simulated time is unitless,
#: so the ``"sim"`` base maps 1 unit → 1 ms for comfortable zooming;
#: the ``"wall"`` base is for spans whose clocks run in real seconds
#: (``AsyncClock`` / ``repro.net``), mapping 1 s → 1e6 µs so Perfetto
#: timelines read in true wall time.
_TS_SCALES = {"sim": 1000.0, "wall": 1_000_000.0}
_TS_SCALE = _TS_SCALES["sim"]


def _jsonable(value):
    """Coerce numpy scalars/arrays, sets and tuples to JSON-safe types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (frozenset, set)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)  # numpy scalar
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)  # numpy array
    if callable(tolist):
        return tolist()
    return str(value)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def eventlog_to_jsonl(log, destination: Union[str, Path, IO[str]]) -> int:
    """Write the event log as JSON Lines; returns the record count.

    Each line is ``{"time": …, "kind": …, "node": …, "fields": {…}}``.
    """

    def _write(fp) -> int:
        count = 0
        for record in log.records:
            fp.write(
                json.dumps(
                    {
                        "time": record.time,
                        "kind": record.kind,
                        "node": record.node,
                        "fields": _jsonable(record.as_dict()),
                    },
                    sort_keys=True,
                )
            )
            fp.write("\n")
            count += 1
        return count

    if hasattr(destination, "write"):
        return _write(destination)
    with open(destination, "w", encoding="utf-8") as fp:
        return _write(fp)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _format_label_value(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value):
            return str(int(value))
    text = str(value)
    return text.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_sample_value(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every registered metric in the Prometheus text format."""
    lines: List[str] = []
    for metric in registry.metrics():
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            for labels, value in metric.samples():
                # Render every label the sample carries, not just ``le``
                # (Prometheus wants ``le`` last by convention).
                rendered = ",".join(
                    f'{name}="{_format_label_value(val)}"'
                    for name, val in sorted(labels.items())
                    if name != "le"
                )
                le = f'le="{_format_label_value(labels["le"])}"'
                rendered = f"{rendered},{le}" if rendered else le
                lines.append(f"{metric.name}_bucket{{{rendered}}} {int(value)}")
            lines.append(f"{metric.name}_sum {_format_sample_value(metric.sum)}")
            lines.append(f"{metric.name}_count {metric.count}")
            continue
        for labels, value in metric.samples():
            if labels:
                rendered = ",".join(
                    f'{name}="{_format_label_value(val)}"'
                    for name, val in labels.items()
                )
                lines.append(f"{metric.name}{{{rendered}}} {_format_sample_value(value)}")
            else:
                lines.append(f"{metric.name} {_format_sample_value(value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Chrome trace events (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
def chrome_trace(
    tracker: SpanTracker,
    *,
    levels: Optional[Dict[int, int]] = None,
    time_base: str = "sim",
) -> dict:
    """Render the span table as a Chrome trace-event document.

    ``levels`` maps node id → tree level; it fixes the *process* row a
    node's spans appear on.  Spans carrying a ``level`` attribute (the
    detector roles stamp one) win over the mapping; unknown nodes land
    on level 0.

    ``time_base`` selects how span times become trace microseconds:
    ``"sim"`` (default) treats them as unitless simulated time (1 unit →
    1 ms), ``"wall"`` as wall seconds (1 s → 1e6 µs) — the correct base
    for :class:`~repro.net.clock.AsyncClock` spans.
    """
    if time_base not in _TS_SCALES:
        raise ValueError(
            f"time_base must be one of {sorted(_TS_SCALES)}, got {time_base!r}"
        )
    scale = _TS_SCALES[time_base]
    levels = levels or {}
    by_sid = {span.sid: span for span in tracker.spans}

    def _level(span) -> int:
        level = span.attrs.get("level")
        if level is None and span.node is not None:
            level = levels.get(span.node)
        return int(level) if level is not None else 0

    events: List[dict] = []
    seen_rows = set()
    for span in tracker.spans:
        pid = _level(span)
        tid = span.node if span.node is not None else 0
        if (pid, "p") not in seen_rows:
            seen_rows.add((pid, "p"))
            events.append(
                {
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": f"tree level {pid}"},
                }
            )
        if (pid, tid) not in seen_rows:
            seen_rows.add((pid, tid))
            events.append(
                {
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": f"P{tid}"},
                }
            )
        start = span.start * scale
        end = (span.end if span.end is not None else span.start) * scale
        args = {str(k): _jsonable(v) for k, v in span.attrs.items()}
        args["sid"] = span.sid
        if span.parent is not None:
            args["parent"] = span.parent
        if span.marks:
            args["marks"] = [
                {"t": t, "label": label} for t, label in span.marks
            ]
        events.append(
            {
                "name": span.name,
                "cat": "detect",
                "ph": "X",
                "ts": round(start, 3),
                "dur": round(max(end - start, 1.0), 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        if span.parent is not None:
            parent = by_sid.get(span.parent)
            if parent is None:
                continue  # dangling link in a snapshot tail
            parent_ts = (
                parent.end if parent.end is not None else parent.start
            ) * scale
            flow = {"cat": "causal", "id": span.sid, "name": "aggregates"}
            events.append(
                {**flow, "ph": "s", "pid": pid, "tid": tid, "ts": round(end, 3)}
            )
            events.append(
                {
                    **flow, "ph": "f", "bp": "e", "pid": _level(parent),
                    "tid": parent.node if parent.node is not None else 0,
                    "ts": round(max(parent_ts, end), 3),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracker: SpanTracker,
    path: Union[str, Path],
    *,
    levels: Optional[Dict[int, int]] = None,
    time_base: str = "sim",
) -> int:
    """Write :func:`chrome_trace` JSON to *path*; returns the event count."""
    document = chrome_trace(tracker, levels=levels, time_base=time_base)
    Path(path).write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    return len(document["traceEvents"])
