"""Causal span tracing for detection artifacts.

Every artifact of the detection pipeline gets a *span* — a named,
timed record with an optional parent:

* ``interval`` — a local-predicate interval at a process, from the
  event that opened it (``min(x)``) to the event that closed it;
* ``report`` — an aggregated interval (``⊓`` of a subtree solution)
  reported one hop up the spanning tree;
* ``alarm`` — a ``Definitely(Φ)`` announcement at a (partition-)root.

Parent links run *downwards from the announcement*: an alarm span adopts
the spans of the solution heads that formed it, each ``report`` span
adopts the spans of the intervals it aggregated, and so on recursively
to the concrete intervals — so an alarm can be explained end to end
("which interval at which leaf, opened when, travelled through which
levels").  Spans also carry *marks*: timestamped lifecycle points such
as ``enqueued`` and ``pruned`` recorded by the detection cores.

Span ids are sequential, so a deterministic simulation produces a
byte-identical span table on every run.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "SpanTracker", "interval_key"]


def interval_key(interval) -> tuple:
    """Span-registry key for a (possibly aggregated) interval.

    Namespaced by artifact type: a leaf's singleton aggregate has the
    same bounds and sequence number as the concrete interval it wraps,
    so ``Interval.key()`` alone would collide."""
    kind = "agg" if getattr(interval, "is_aggregated", False) else "ivl"
    return (kind, *interval.key())


class Span:
    """One timed, attributed node of a causal trace tree."""

    __slots__ = ("sid", "name", "node", "start", "end", "parent", "attrs", "marks")

    def __init__(
        self,
        sid: int,
        name: str,
        start: float,
        *,
        node: Optional[int] = None,
        parent: Optional[int] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        self.sid = sid
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent  # parent span id, set once
        self.attrs: dict = attrs or {}
        self.marks: List[Tuple[float, str]] = []

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def mark(self, time: float, label: str) -> None:
        """Record a lifecycle point (``enqueued``, ``pruned``, …)."""
        self.marks.append((time, label))

    def to_dict(self) -> dict:
        """JSON-safe form (attrs must already be JSON-safe; the detection
        stack only stores scalars and small lists there)."""
        return {
            "sid": self.sid,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "parent": self.parent,
            "attrs": dict(self.attrs),
            "marks": [[t, label] for t, label in self.marks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            int(data["sid"]),
            data["name"],
            data["start"],
            node=data.get("node"),
            parent=data.get("parent"),
            attrs=dict(data.get("attrs") or {}),
        )
        span.end = data.get("end")
        span.marks = [(t, label) for t, label in data.get("marks", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = f"P{self.node}" if self.node is not None else "-"
        return (
            f"Span#{self.sid}({self.name} @{who} "
            f"[{self.start:.2f}, {self.end if self.end is not None else '…'}])"
        )


class SpanTracker:
    """All spans of one run, with key-based lookup and tree queries."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._by_key: Dict[tuple, Span] = {}

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        start: float,
        *,
        node: Optional[int] = None,
        key: Optional[tuple] = None,
        **attrs,
    ) -> Span:
        """Open a new span; ``key`` (e.g. ``Interval.key()``) registers
        it for later :meth:`get` / :meth:`adopt` lookups."""
        span = Span(len(self.spans), name, start, node=node, attrs=attrs)
        self.spans.append(span)
        if key is not None:
            self._by_key[key] = span
        return span

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        node: Optional[int] = None,
        key: Optional[tuple] = None,
        **attrs,
    ) -> Span:
        """Create an already-finished span (the common case: the artifact
        completed at creation time)."""
        span = self.begin(name, start, node=node, key=key, **attrs)
        span.end = end
        return span

    # ------------------------------------------------------------------
    # lookup & parentage
    # ------------------------------------------------------------------
    def get(self, key: tuple) -> Optional[Span]:
        return self._by_key.get(key)

    def adopt(self, parent: Span, child_key: tuple) -> bool:
        """Parent the span registered under *child_key* beneath *parent*
        (first parent wins — an artifact is explained by the first
        announcement that consumed it).  Returns True when a link was
        created."""
        child = self._by_key.get(child_key)
        if child is None or child.parent is not None or child is parent:
            return False
        child.parent = parent.sid
        return True

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent == span.sid]

    def named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def alarms(self) -> List[Span]:
        """Root announcement spans, in detection order."""
        return self.named("alarm")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def walk(self, span: Span, depth: int = 0) -> Iterator[Tuple[int, Span]]:
        """Depth-first traversal of *span*'s subtree as (depth, span)."""
        yield depth, span
        for child in self.children_of(span):
            yield from self.walk(child, depth + 1)

    def render_tree(self, span: Span) -> str:
        """Indented text rendering of one span tree (an alarm's
        end-to-end explanation)."""
        lines = []
        for depth, s in self.walk(span):
            who = f"P{s.node}" if s.node is not None else "-"
            extra = ""
            if s.name == "alarm" and "latency" in s.attrs:
                extra = f" latency={s.attrs['latency']:.2f}"
            if s.marks:
                points = ", ".join(f"{label}@{t:.2f}" for t, label in s.marks[:4])
                extra += f" [{points}{', …' if len(s.marks) > 4 else ''}]"
            end = s.end if s.end is not None else s.start
            lines.append(
                f"{'  ' * depth}{s.name} #{s.sid} {who} "
                f"[{s.start:.2f} → {end:.2f}]{extra}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON wire form (cluster scrapes, flight snapshots)
    # ------------------------------------------------------------------
    def to_dicts(self, *, tail: Optional[int] = None) -> List[dict]:
        """The span table as JSON-safe dicts (optionally only the newest
        *tail* spans — the flight recorder's bounded ring)."""
        spans = self.spans if tail is None else self.spans[-tail:]
        return [span.to_dict() for span in spans]

    @classmethod
    def from_dicts(cls, rows: List[dict]) -> "SpanTracker":
        """Rebuild a *read-only* tracker from :meth:`to_dicts` output.

        Sids are preserved verbatim (a snapshot tail need not start at
        0), so do not :meth:`begin` new spans on the result — key-based
        lookups are not restored either, only the tree structure."""
        tracker = cls()
        tracker.spans = [Span.from_dict(row) for row in rows]
        return tracker

    def by_sid(self, sid: int) -> Optional[Span]:
        """Span with the given id, tolerating non-contiguous tables
        (deserialized snapshots, stitched cluster traces)."""
        if 0 <= sid < len(self.spans) and self.spans[sid].sid == sid:
            return self.spans[sid]
        for span in self.spans:
            if span.sid == sid:
                return span
        return None

    def detection_latencies(self) -> List[float]:
        """Per-alarm detection latency (simulated time from the last
        solution interval's open to the announcement), for alarms that
        recorded one."""
        return [
            s.attrs["latency"] for s in self.alarms() if "latency" in s.attrs
        ]
