"""Causal span tracing for detection artifacts — lazy, sampled, bounded.

Every artifact of the detection pipeline gets a *span* — a named,
timed record with an optional parent:

* ``interval`` — a local-predicate interval at a process, from the
  event that opened it (``min(x)``) to the event that closed it;
* ``report`` — an aggregated interval (``⊓`` of a subtree solution)
  reported one hop up the spanning tree;
* ``alarm`` — a ``Definitely(Φ)`` announcement at a (partition-)root;
* ``hop`` — a report frame crossing a process boundary (cluster runs).

Parent links run *downwards from the announcement*: an alarm span adopts
the spans of the solution heads that formed it, each ``report`` span
adopts the spans of the intervals it aggregated, and so on recursively
to the concrete intervals — so an alarm can be explained end to end
("which interval at which leaf, opened when, travelled through which
levels").  Spans also carry *marks*: timestamped lifecycle points such
as ``enqueued`` and ``pruned`` recorded by the detection cores.

Hot-path design
---------------
The recording path runs once per predicate interval — inside the same
loop whose latency the telemetry exists to measure — so it must do
near-zero work:

* :meth:`SpanTracker.record_interval` and
  :meth:`SpanTracker.mark_interval` only append one small tuple to a
  pending queue; row construction, key registration, mark attachment
  and per-node event counting all happen in :meth:`SpanTracker.flush`,
  which runs off the latency path — on any read of the table (scrape,
  export, tree query), when an eager span is opened, or when the queue
  reaches its bound;
* flush folding also drives the *counter subscribers*
  (:meth:`SpanTracker.on_flush`): per-offer counters (enqueued, pruned,
  intervals completed) are derived from the queued lifecycle entries in
  one batched pass instead of two dict updates per core event, so the
  observer callback does no metric work at all;
* marks fold as raw ``(time, event, node)`` tuples and are only
  formatted to ``"event@Pnode"`` labels when someone reads them;
* :class:`Span` is a lazy **view** over a row, materialized on demand
  (export, scrape, flight snapshot, tree queries) and cached per row so
  object identity is stable;
* an optional :class:`~repro.obs.sampling.TraceSampler` filters the
  materialized table: head-dropped ``interval`` rows vanish from
  ``spans`` / ``to_dicts`` unless *promoted* — adopted into a retained
  explanation (alarms, reports and hops are always retained), so alarm
  traces stay complete at any rate;
* an optional ``capacity`` turns the row table into a bounded ring:
  the oldest rows are evicted in chunks, and their key registrations
  dropped, so long-running cluster nodes hold O(capacity) memory.

Span ids are sequential, so a deterministic simulation produces a
byte-identical span table on every run.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .sampling import TraceSampler

__all__ = ["Span", "SpanTracker", "interval_key"]


def interval_key(interval) -> tuple:
    """Span-registry key for a (possibly aggregated) interval.

    Namespaced by artifact type: a leaf's singleton aggregate has the
    same bounds and sequence number as the concrete interval it wraps,
    so ``Interval.key()`` alone would collide."""
    kind = "agg" if getattr(interval, "is_aggregated", False) else "ivl"
    return (kind, *interval.key())


# Row slots.  A row is one fixed-shape list — cheap to allocate, cheap
# to mutate in place (parent adoption, lazy mark/attr creation).
_SID, _NAME, _NODE, _START, _END, _PARENT, _ATTRS, _MARKS, _KEY, _FLAG, _VIEW = range(11)

#: Span names subject to head sampling; everything else is always
#: retained (tail bias: derived artifacts are rare and load-bearing).
_SAMPLED_NAMES = frozenset({"interval"})

#: Pending-queue bound: the hot path batches this many record/mark
#: entries before folding them into rows itself.  Any read folds the
#: queue first, so in a scraped deployment this only caps memory
#: between scrapes (~100 bytes per entry).
_QUEUE_LIMIT = 65536


def _format_marks(raw) -> List[Tuple[float, str]]:
    """Materialize raw mark tuples: 3-tuples ``(t, event, node)`` were
    recorded lazily and format here; 2-tuples carried a literal label."""
    if not raw:
        return []
    out = []
    for mark in raw:
        if len(mark) == 2:
            out.append((mark[0], mark[1]))
        else:
            out.append((mark[0], f"{mark[1]}@P{mark[2]}"))
    return out


class Span:
    """One timed, attributed node of a causal trace tree.

    A lazy view over a tracker row: attribute access reads the row, so
    a ``Span`` obtained before more marks arrived still sees them.  At
    most one view exists per row (cached in the row), so identity
    comparisons (``get(key) is span``) keep working.
    """

    __slots__ = ("_row", "_tracker")

    def __init__(
        self,
        sid: int,
        name: str,
        start: float,
        *,
        node: Optional[int] = None,
        parent: Optional[int] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        row = [sid, name, node, start, None, parent, dict(attrs) if attrs else {}, None, None, None, None]
        row[_VIEW] = self
        self._row = row
        self._tracker = None

    @classmethod
    def _of_row(cls, row: list, tracker: Optional["SpanTracker"]) -> "Span":
        span = cls.__new__(cls)
        span._row = row
        span._tracker = tracker
        return span

    # ------------------------------------------------------------------
    @property
    def sid(self) -> int:
        return self._row[_SID]

    @property
    def name(self) -> str:
        return self._row[_NAME]

    @property
    def node(self) -> Optional[int]:
        return self._row[_NODE]

    @property
    def start(self) -> float:
        return self._row[_START]

    @property
    def end(self) -> Optional[float]:
        return self._row[_END]

    @end.setter
    def end(self, value: Optional[float]) -> None:
        self._row[_END] = value

    @property
    def parent(self) -> Optional[int]:
        return self._row[_PARENT]

    @parent.setter
    def parent(self, value: Optional[int]) -> None:
        self._row[_PARENT] = value
        if self._tracker is not None:
            self._tracker._links += 1

    @property
    def attrs(self) -> dict:
        row = self._row
        attrs = row[_ATTRS]
        if attrs is None:
            attrs = {}
            key = row[_KEY]
            if row[_NAME] == "interval" and type(key) is tuple and len(key) == 4:
                # Fast-path interval rows skip the attrs dict at record
                # time; owner/seq are recoverable from the identity key.
                attrs = {"owner": key[0], "seq": key[1]}
            row[_ATTRS] = attrs
        return attrs

    @property
    def marks(self) -> List[Tuple[float, str]]:
        return _format_marks(self._row[_MARKS])

    @marks.setter
    def marks(self, value) -> None:
        self._row[_MARKS] = [tuple(mark) for mark in value]

    @property
    def duration(self) -> float:
        row = self._row
        end = row[_END]
        return (end if end is not None else row[_START]) - row[_START]

    def mark(self, time: float, label: str) -> None:
        """Record a lifecycle point (``enqueued``, ``pruned``, …)."""
        row = self._row
        marks = row[_MARKS]
        if marks is None:
            marks = row[_MARKS] = []
        marks.append((time, label))

    def to_dict(self) -> dict:
        """JSON-safe form (attrs must already be JSON-safe; the detection
        stack only stores scalars and small lists there)."""
        row = self._row
        return {
            "sid": row[_SID],
            "name": row[_NAME],
            "node": row[_NODE],
            "start": row[_START],
            "end": row[_END],
            "parent": row[_PARENT],
            "attrs": dict(self.attrs),
            "marks": [[t, label] for t, label in self.marks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            int(data["sid"]),
            data["name"],
            data["start"],
            node=data.get("node"),
            parent=data.get("parent"),
            attrs=dict(data.get("attrs") or {}),
        )
        span._row[_END] = data.get("end")
        span._row[_MARKS] = [(t, label) for t, label in data.get("marks", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = f"P{self.node}" if self.node is not None else "-"
        return (
            f"Span#{self.sid}({self.name} @{who} "
            f"[{self.start:.2f}, {self.end if self.end is not None else '…'}])"
        )


class SpanTracker:
    """All spans of one run, with key-based lookup and tree queries.

    Parameters
    ----------
    sampler:
        Optional :class:`~repro.obs.sampling.TraceSampler`.  When set,
        the materialized table (``spans``, ``to_dicts``, tree queries)
        drops head-unsampled ``interval`` rows that were never promoted
        into a retained explanation.  Recording cost is unaffected —
        the decision is evaluated lazily at materialization time.
    capacity:
        Optional ring bound on retained rows.  Eviction runs in chunks
        (amortized O(1) per record), so the table may transiently hold
        slightly more than *capacity* rows; evicted rows lose their
        key registration.
    """

    def __init__(
        self,
        *,
        sampler: Optional[TraceSampler] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("span tracker capacity must be >= 1")
        self.sampler = sampler
        self.capacity = capacity
        self._rows: List[list] = []
        self._by_key: Dict[tuple, list] = {}
        self._next_sid = 0
        self._links = 0
        self._evicted = 0
        self._cache: Optional[tuple] = None
        # Pending record/mark entries (see record_interval / flush).
        self._queue: List[tuple] = []
        # node -> [fn(counts)] counter subscribers notified per flush.
        self._subscribers: Dict[int, List[Callable[[dict], None]]] = {}
        # Eviction chunk: let the table overshoot a little so eviction
        # amortizes instead of shifting the list on every append.
        self._bound = None if capacity is None else capacity + max(32, capacity // 8)

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """The retained span table as (cached) :class:`Span` views."""
        if self._queue:
            self.flush()
        stamp = (self._next_sid, self._links, self._evicted)
        cache = self._cache
        if cache is not None and cache[0] == stamp:
            return cache[1]
        out = [self._view(row) for row in self._retained_rows()]
        self._cache = (stamp, out)
        return out

    def _view(self, row: list) -> Span:
        view = row[_VIEW]
        if view is None:
            view = Span._of_row(row, self)
            row[_VIEW] = view
        return view

    def _retained_rows(self) -> List[list]:
        rows = self._rows
        sampler = self.sampler
        if sampler is None:
            return rows
        # Tail promotion: anything linked into an explanation tree is
        # retained regardless of its head decision — that keeps alarm
        # traces complete down to the concrete leaf intervals.
        has_children = {row[_PARENT] for row in rows if row[_PARENT] is not None}
        keep = sampler.keep
        out = []
        for row in rows:
            flag = row[_FLAG]
            if (
                row[_PARENT] is not None
                or row[_SID] in has_children
                or flag is True
                or (
                    flag is None
                    and (row[_NAME] not in _SAMPLED_NAMES or keep(row[_KEY]))
                )
            ):
                out.append(row)
        return out

    def stats(self) -> dict:
        """Recording vs materialization accounting (bench/scrape aid)."""
        materialized = len(self.spans)  # flushes the queue first
        return {
            "recorded": self._next_sid,
            "retained_rows": len(self._rows),
            "evicted": self._evicted,
            "materialized": materialized,
            "sampled_fraction": (
                materialized / self._next_sid if self._next_sid else 1.0
            ),
        }

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        start: float,
        *,
        node: Optional[int] = None,
        key: Optional[tuple] = None,
        sampled: Optional[bool] = None,
        **attrs,
    ) -> Span:
        """Open a new span; ``key`` (e.g. ``interval_key`` output)
        registers it for later :meth:`get` / :meth:`adopt` lookups.
        ``sampled`` forces the retention decision (``True``: always
        keep, ``False``: drop unless promoted — e.g. a hop honoring its
        sender's head decision)."""
        if self._queue:
            # Queued interval rows precede this span chronologically;
            # folding first keeps sids in true recording order (and
            # makes the intervals adoptable right away).
            self.flush()
        sid = self._next_sid
        self._next_sid = sid + 1
        if key is not None:
            key = self._norm(key)
        row = [sid, name, node, start, None, None, attrs or None, None, key, sampled, None]
        self._rows.append(row)
        if key is not None:
            self._by_key[key] = row
        bound = self._bound
        if bound is not None and len(self._rows) > bound:
            self._compact()
        return self._view(row)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        node: Optional[int] = None,
        key: Optional[tuple] = None,
        sampled: Optional[bool] = None,
        **attrs,
    ) -> Span:
        """Create an already-finished span (the common case: the artifact
        completed at creation time)."""
        span = self.begin(name, start, node=node, key=key, sampled=sampled, **attrs)
        span._row[_END] = end
        return span

    def record_interval(self, interval, start: float, end: float, node: int) -> None:
        """Hot path: one finished ``interval`` span for a *concrete*
        predicate interval.  Only enqueues ``(interval, start, end,
        node)``; the row is built when the queue folds (:meth:`flush`)."""
        queue = self._queue
        queue.append((interval, start, end, node))
        if len(queue) >= _QUEUE_LIMIT:
            self.flush()

    def mark_interval(self, interval, time: float, event: str, node: int) -> None:
        """Hot path: enqueue a raw lifecycle mark for *interval*'s span
        (attached at fold time, formatted to ``"event@Pnode"`` only when
        read).  No-op at fold time when the interval was never traced or
        its row was evicted.

        Queue entries share one shape with :meth:`record_interval`;
        slot 2 disambiguates — a mark carries its ``str`` event where a
        record carries its ``float`` end time."""
        queue = self._queue
        queue.append((interval, time, event, node))
        if len(queue) >= _QUEUE_LIMIT:
            self.flush()

    # ------------------------------------------------------------------
    # queue folding
    # ------------------------------------------------------------------
    def on_flush(self, node: int, fn: Callable[[dict], None]) -> None:
        """Subscribe *fn* to per-flush event counts for *node*.

        After each fold, *fn* receives ``{event_or_None: count}`` for
        the batch just folded: mark entries count under their event
        string, record entries under ``None``.  This is how the per-node
        counters (intervals completed, enqueued, pruned) are derived
        without any metric work on the recording path."""
        self._subscribers.setdefault(node, []).append(fn)

    def flush(self) -> None:
        """Fold the pending queue into rows, marks and subscriber
        counts.  Runs on any table read; idempotent and re-entrancy
        safe (the queue is detached before folding)."""
        queue = self._queue
        if not queue:
            return
        self._queue = []
        by_key = self._by_key
        rows = self._rows
        sid = self._next_sid
        subscribers = self._subscribers
        counts: Optional[Dict[int, Dict[Optional[str], int]]] = (
            {} if subscribers else None
        )
        for interval, t0, tail, node in queue:
            if type(tail) is str:
                # Lifecycle mark.  Aggregated intervals registered under
                # a prefixed key (see _norm); the type check is explicit
                # because concrete and aggregated keys share one shape.
                key = interval.key()
                if interval.parts:
                    key = ("agg",) + key
                row = by_key.get(key)
                if row is not None:
                    marks = row[_MARKS]
                    if marks is None:
                        marks = row[_MARKS] = []
                    marks.append((t0, tail, node))
                event = tail
            else:
                key = interval.key()
                row = [sid, "interval", node, t0, tail, None, None, None, key, None, None]
                sid += 1
                rows.append(row)
                by_key[key] = row
                event = None
            if counts is not None:
                per_node = counts.get(node)
                if per_node is None:
                    per_node = counts[node] = {}
                per_node[event] = per_node.get(event, 0) + 1
        self._next_sid = sid
        bound = self._bound
        if bound is not None and len(rows) > bound:
            self._compact()
        if counts:
            for node, per_node in counts.items():
                for fn in subscribers.get(node, ()):
                    fn(per_node)

    def _compact(self) -> None:
        excess = len(self._rows) - self.capacity
        if excess <= 0:
            return
        old = self._rows[:excess]
        del self._rows[:excess]
        self._evicted += excess
        by_key = self._by_key
        for row in old:
            key = row[_KEY]
            if key is not None and by_key.get(key) is row:
                del by_key[key]

    # ------------------------------------------------------------------
    # lookup & parentage
    # ------------------------------------------------------------------
    @staticmethod
    def _norm(key: tuple):
        """Interval keys store un-prefixed: ``interval_key`` output for a
        concrete interval collapses to the cached ``Interval.key()``
        tuple, so the hot path never builds a prefixed copy.  Aggregated
        (``"agg"``-prefixed) and ad-hoc keys store verbatim — the two
        namespaces cannot collide because their shapes differ."""
        if type(key) is tuple and len(key) == 5 and key[0] == "ivl":
            return key[1:]
        return key

    def get(self, key: tuple) -> Optional[Span]:
        if self._queue:
            self.flush()
        row = self._by_key.get(self._norm(key))
        return None if row is None else self._view(row)

    def head_decision(self, key: tuple) -> bool:
        """The sampler's head decision for *key* (``True`` without a
        sampler) — what a sender advertises in the frame sidecar."""
        sampler = self.sampler
        if sampler is None:
            return True
        return sampler.keep(self._norm(key))

    def adopt(self, parent: Span, child_key: tuple) -> bool:
        """Parent the span registered under *child_key* beneath *parent*
        (first parent wins — an artifact is explained by the first
        announcement that consumed it).  Returns True when a link was
        created."""
        if self._queue:
            self.flush()
        child = self._by_key.get(self._norm(child_key))
        if child is None or child[_PARENT] is not None or child is parent._row:
            return False
        child[_PARENT] = parent._row[_SID]
        self._links += 1
        return True

    def reparent(self, child: Span, parent_sid: int) -> bool:
        """Late re-parenting by sid (cluster trace stitching); first
        parent wins, self-links refused."""
        row = child._row
        if row[_PARENT] is not None or row[_SID] == parent_sid:
            return False
        row[_PARENT] = parent_sid
        self._links += 1
        return True

    def children_of(self, span: Span) -> List[Span]:
        sid = span.sid
        return [s for s in self.spans if s.parent == sid]

    def named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def alarms(self) -> List[Span]:
        """Root announcement spans, in detection order."""
        return self.named("alarm")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def walk(self, span: Span, depth: int = 0) -> Iterator[Tuple[int, Span]]:
        """Depth-first traversal of *span*'s subtree as (depth, span)."""
        yield depth, span
        for child in self.children_of(span):
            yield from self.walk(child, depth + 1)

    def render_tree(self, span: Span) -> str:
        """Indented text rendering of one span tree (an alarm's
        end-to-end explanation)."""
        lines = []
        for depth, s in self.walk(span):
            who = f"P{s.node}" if s.node is not None else "-"
            extra = ""
            if s.name == "alarm" and "latency" in s.attrs:
                extra = f" latency={s.attrs['latency']:.2f}"
            marks = s.marks
            if marks:
                points = ", ".join(f"{label}@{t:.2f}" for t, label in marks[:4])
                extra += f" [{points}{', …' if len(marks) > 4 else ''}]"
            end = s.end if s.end is not None else s.start
            lines.append(
                f"{'  ' * depth}{s.name} #{s.sid} {who} "
                f"[{s.start:.2f} → {end:.2f}]{extra}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON wire form (cluster scrapes, flight snapshots)
    # ------------------------------------------------------------------
    def to_dicts(self, *, tail: Optional[int] = None) -> List[dict]:
        """The retained span table as JSON-safe dicts (optionally only
        the newest *tail* spans — the flight recorder's bounded ring).
        Sampling applies here: head-dropped, unpromoted intervals never
        reach a scrape payload or snapshot file."""
        spans = self.spans if tail is None else self.spans[-tail:]
        return [span.to_dict() for span in spans]

    @classmethod
    def from_dicts(cls, rows: List[dict]) -> "SpanTracker":
        """Rebuild a *read-only* tracker from :meth:`to_dicts` output.

        Sids are preserved verbatim (a snapshot tail need not start at
        0), so do not :meth:`begin` new spans on the result — key-based
        lookups are not restored either, only the tree structure."""
        tracker = cls()
        top = 0
        for data in rows:
            sid = int(data["sid"])
            top = max(top, sid + 1)
            tracker._rows.append(
                [
                    sid,
                    data["name"],
                    data.get("node"),
                    data["start"],
                    data.get("end"),
                    data.get("parent"),
                    dict(data.get("attrs") or {}),
                    [(t, label) for t, label in data.get("marks", [])],
                    None,
                    True,
                    None,
                ]
            )
        tracker._next_sid = top
        return tracker

    def append_imported(self, data: dict, *, sid: int) -> Span:
        """Append one wire-form row under a caller-chosen sid (cluster
        aggregation renumbers node-local tables into one namespace)."""
        if self._queue:
            self.flush()
        self._next_sid = max(self._next_sid, sid + 1)
        row = [
            sid,
            data["name"],
            data.get("node"),
            data["start"],
            data.get("end"),
            None,
            dict(data.get("attrs") or {}),
            [(t, label) for t, label in data.get("marks", [])],
            None,
            True,
            None,
        ]
        self._rows.append(row)
        self._links += 1  # invalidate any cached materialization
        return self._view(row)

    def by_sid(self, sid: int) -> Optional[Span]:
        """Span with the given id, tolerating non-contiguous tables
        (deserialized snapshots, stitched cluster traces)."""
        spans = self.spans
        if 0 <= sid < len(spans) and spans[sid].sid == sid:
            return spans[sid]
        for span in spans:
            if span.sid == sid:
                return span
        return None

    def detection_latencies(self) -> List[float]:
        """Per-alarm detection latency (simulated time from the last
        solution interval's open to the announcement), for alarms that
        recorded one."""
        return [
            s.attrs["latency"] for s in self.alarms() if "latency" in s.attrs
        ]
