"""Crash flight recorder: bounded telemetry rings + JSONL snapshots.

A distributed detector earns its fault-tolerance story only if the
telemetry of a failing node survives the failure.  A
:class:`FlightRecorder` therefore keeps a small, bounded ring of the
newest :class:`~repro.sim.eventlog.EventLog` records (fed live through
``log.subscribe``, so ring-buffer eviction upstream can never lose them
first) and, on a *trigger*, persists that ring — plus the tail of the
span table — as one JSON-Lines snapshot file.

Triggers are event kinds: the cluster wires ``crash`` (a node's own
death throes), the repair milestones (``repair_planned``,
``repair_applied``) and ``slo_breach`` (see
:class:`~repro.monitor.spec.SLOSpec`); ``stop()`` flushes survivors
with a final ``shutdown`` snapshot so post-repair history is captured
too.

Snapshot layout — first line is a header, then events, then spans::

    {"record": "header", "source": "node-3", "reason": "crash", ...}
    {"record": "event", "time": …, "kind": …, "node": …, "fields": {…}}
    {"record": "span", "sid": …, "name": …, …}

:func:`load_snapshots` + :func:`reconstruct_timeline` invert this:
events from every snapshot in a directory are merged, deduplicated
(the same record may appear in a repair snapshot *and* the final
shutdown snapshot of one node, or in a node's and the cluster's logs)
and time-sorted.  :func:`postmortem` distils the merged timeline into
the operator's question — *when did the node die, when was the tree
repaired, and when did detection resume?* — which the
``repro-cluster postmortem`` subcommand renders.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Union

from .export import _jsonable
from .spans import SpanTracker

__all__ = [
    "FlightRecorder",
    "FlightSnapshot",
    "DEFAULT_TRIGGERS",
    "load_snapshot",
    "load_snapshots",
    "reconstruct_timeline",
    "postmortem",
    "render_postmortem",
]

#: Event kinds that trip a snapshot when seen on the recorded log.
DEFAULT_TRIGGERS: FrozenSet[str] = frozenset(
    {"crash", "repair_planned", "repair_applied", "slo_breach"}
)


class FlightRecorder:
    """Bounded ring of one log's newest records, snapshot on trigger.

    Parameters
    ----------
    log:
        The :class:`~repro.sim.eventlog.EventLog` to ride along on.
    spans:
        The :class:`~repro.obs.spans.SpanTracker` whose newest spans are
        included in snapshots (``None`` for logs without a tracker).
    directory:
        Where snapshot files land (created on first snapshot).
    source:
        Snapshot attribution: ``"node-<id>"`` or ``"cluster"``.
    capacity:
        Ring size — the newest *capacity* events (and spans) survive.
    triggers:
        Event kinds that auto-persist a snapshot the moment they are
        recorded (the triggering event is included in its snapshot).
    now:
        Clock callable stamped into headers.
    """

    def __init__(
        self,
        log,
        spans: Optional[SpanTracker],
        directory: Union[str, Path],
        *,
        source: str = "cluster",
        capacity: int = 256,
        triggers: FrozenSet[str] = DEFAULT_TRIGGERS,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.log = log
        self.spans = spans
        self.directory = Path(directory)
        self.source = source
        self.capacity = capacity
        self.triggers = frozenset(triggers)
        self._now = now
        self._ring: Deque = deque(maxlen=capacity)
        self._seen = 0
        self._snapshots: List[Path] = []
        self._seq = 0
        self._unsubscribe = log.subscribe(None, self._on_record)
        self._closed = False

    # ------------------------------------------------------------------
    def _on_record(self, record) -> None:
        self._ring.append(record)
        self._seen += 1
        if record.kind in self.triggers:
            self.snapshot(record.kind)

    @property
    def dropped(self) -> int:
        """Events that fell out of the ring (seen − retained)."""
        return max(0, self._seen - len(self._ring))

    @property
    def snapshots(self) -> List[Path]:
        """Paths persisted so far, in creation order."""
        return list(self._snapshots)

    # ------------------------------------------------------------------
    def snapshot(self, reason: str) -> Path:
        """Persist the current ring (and span tail) as one JSONL file."""
        self.directory.mkdir(parents=True, exist_ok=True)
        name = f"flight-{self.source}-{self._seq:03d}-{reason}.jsonl"
        self._seq += 1
        path = self.directory / name
        now = self._now() if self._now is not None else None
        lines = [
            json.dumps(
                {
                    "record": "header",
                    "source": self.source,
                    "reason": reason,
                    "time": now,
                    "events": len(self._ring),
                    "events_dropped": self.dropped,
                },
                sort_keys=True,
            )
        ]
        for record in self._ring:
            lines.append(
                json.dumps(
                    {
                        "record": "event",
                        "time": record.time,
                        "kind": record.kind,
                        "node": record.node,
                        "fields": _jsonable(record.as_dict()),
                    },
                    sort_keys=True,
                )
            )
        if self.spans is not None:
            # Content-hash dedup: a snapshot taken while the tracker's
            # ring is mid-eviction (or over a stitched/merged table) may
            # surface the same span twice or a torn row missing its
            # identity fields — neither belongs in a postmortem file.
            seen_spans = set()
            for row in self.spans.to_dicts(tail=self.capacity):
                if row.get("sid") is None or not row.get("name"):
                    continue
                line = json.dumps(
                    {"record": "span", **_jsonable(row)}, sort_keys=True
                )
                if line in seen_spans:
                    continue
                seen_spans.add(line)
                lines.append(line)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        self._snapshots.append(path)
        return path

    def close(self) -> None:
        """Stop listening (idempotent); existing snapshots stay."""
        if not self._closed:
            self._closed = True
            self._unsubscribe()


# ----------------------------------------------------------------------
# snapshot loading / postmortem
# ----------------------------------------------------------------------
@dataclass
class FlightSnapshot:
    """One parsed snapshot file."""

    path: Path
    source: str
    reason: str
    time: Optional[float]
    events: List[dict] = field(default_factory=list)
    spans: List[dict] = field(default_factory=list)

    @property
    def span_tracker(self) -> SpanTracker:
        """The snapshot's span tail as a read-only tracker."""
        return SpanTracker.from_dicts(self.spans)


def load_snapshot(path: Union[str, Path]) -> FlightSnapshot:
    """Parse one flight snapshot file."""
    path = Path(path)
    header: Optional[dict] = None
    events: List[dict] = []
    spans: List[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        kind = row.pop("record", None)
        if kind == "header":
            header = row
        elif kind == "event":
            events.append(row)
        elif kind == "span":
            spans.append(row)
        else:
            raise ValueError(f"{path}: unknown record type {kind!r}")
    if header is None:
        raise ValueError(f"{path}: missing header record")
    return FlightSnapshot(
        path=path,
        source=str(header.get("source", "?")),
        reason=str(header.get("reason", "?")),
        time=header.get("time"),
        events=events,
        spans=spans,
    )


def load_snapshots(directory: Union[str, Path]) -> List[FlightSnapshot]:
    """Every ``flight-*.jsonl`` under *directory*, sorted by filename
    (creation order: sources interleave, sequence numbers ascend)."""
    return [
        load_snapshot(path)
        for path in sorted(Path(directory).glob("flight-*.jsonl"))
    ]


def reconstruct_timeline(snapshots: List[FlightSnapshot]) -> List[dict]:
    """Merge every snapshot's events into one deduplicated, time-sorted
    timeline.

    The same record legitimately appears several times — in a node's
    repair snapshot *and* its shutdown snapshot, or in a node's log and
    the cluster's (scoped clocks forward) — so identity is the record's
    content, not its snapshot of origin.
    """
    seen = set()
    merged: List[dict] = []
    for snapshot in snapshots:
        for event in snapshot.events:
            identity = (
                event.get("time"),
                event.get("kind"),
                event.get("node"),
                json.dumps(event.get("fields", {}), sort_keys=True),
            )
            if identity in seen:
                continue
            seen.add(identity)
            merged.append(event)
    merged.sort(key=lambda e: (e.get("time") or 0.0, e.get("kind") or ""))
    return merged


def postmortem(
    source: Union[str, Path, List[FlightSnapshot]],
) -> dict:
    """Distil a snapshot directory (or pre-loaded snapshots) into the
    crash → repair → recovery story.

    Returns a dict with the full merged ``timeline`` plus the extracted
    milestones: ``crashes`` (kind ``crash``), ``repairs``
    (``repair_planned`` / ``repair_applied`` pairs) and
    ``detections`` — every detection event, each tagged
    ``after_repair`` when it fired after the last applied repair, which
    is the paper's continued-detection claim made checkable from
    surviving telemetry alone.
    """
    snapshots = (
        source if isinstance(source, list) else load_snapshots(source)
    )
    timeline = reconstruct_timeline(snapshots)
    crashes = [e for e in timeline if e["kind"] == "crash"]
    planned = [e for e in timeline if e["kind"] == "repair_planned"]
    applied = [e for e in timeline if e["kind"] == "repair_applied"]
    breaches = [e for e in timeline if e["kind"] == "slo_breach"]
    repairs: List[Dict] = []
    for plan in planned:
        failed = plan.get("fields", {}).get("failed")
        match = next(
            (
                a
                for a in applied
                if a.get("fields", {}).get("failed") == failed
                and a["time"] >= plan["time"]
            ),
            None,
        )
        repairs.append(
            {
                "failed": failed,
                "planned_at": plan["time"],
                "applied_at": match["time"] if match else None,
                "duration": (
                    match["time"] - plan["time"] if match else None
                ),
            }
        )
    last_applied = max((a["time"] for a in applied), default=None)
    detections = [
        {
            "time": e["time"],
            "node": e["node"],
            "members": e.get("fields", {}).get("members"),
            "after_repair": (
                last_applied is not None and e["time"] > last_applied
            ),
        }
        for e in timeline
        if e["kind"] == "detection"
    ]
    return {
        "snapshots": [
            {"path": str(s.path), "source": s.source, "reason": s.reason}
            for s in snapshots
        ],
        "events": len(timeline),
        "crashes": crashes,
        "repairs": repairs,
        "slo_breaches": breaches,
        "detections": detections,
        "timeline": timeline,
    }


def render_postmortem(report: dict, *, limit: int = 40) -> str:
    """Human-oriented text rendering of a :func:`postmortem` report."""
    lines = [
        f"flight snapshots: {len(report['snapshots'])} "
        f"({sum(1 for s in report['snapshots'] if s['reason'] == 'crash')} crash, "
        f"{sum(1 for s in report['snapshots'] if s['reason'] == 'shutdown')} shutdown)",
        f"merged events: {report['events']}",
    ]
    for crash in report["crashes"]:
        lines.append(f"  crash    t={crash['time']:.3f}s node={crash['node']}")
    for repair in report["repairs"]:
        applied = (
            f"applied t={repair['applied_at']:.3f}s "
            f"(took {repair['duration'] * 1000:.0f} ms)"
            if repair["applied_at"] is not None
            else "never applied"
        )
        lines.append(
            f"  repair   failed={repair['failed']} "
            f"planned t={repair['planned_at']:.3f}s, {applied}"
        )
    for breach in report["slo_breaches"]:
        fields = breach.get("fields", {})
        lines.append(
            f"  slo      t={breach['time']:.3f}s {fields.get('slo')} "
            f"value={fields.get('value')} threshold={fields.get('threshold')}"
        )
    after = [d for d in report["detections"] if d["after_repair"]]
    lines.append(
        f"detections: {len(report['detections'])} total, "
        f"{len(after)} after the last repair"
    )
    for detection in report["detections"][:limit]:
        marker = "post-repair" if detection["after_repair"] else "pre-repair "
        lines.append(
            f"  detect   t={detection['time']:.3f}s node={detection['node']} "
            f"members={detection['members']} [{marker}]"
        )
    return "\n".join(lines)
