"""Cluster-wide observability: scrape, merge, stitch, summarize.

A realistic deployment of the socket runtime gives every node its own
telemetry island (:class:`~repro.net.clock.ClockScope`): a private
metrics registry, span tracker and event log, exactly what a separate
OS process would hold.  This module rebuilds the whole-cluster view
from those islands, the way a fleet monitoring plane would:

* :class:`ClusterScraper` polls a running cluster's admin endpoint
  (the newline-JSON protocol of :class:`~repro.net.cluster.LocalCluster`)
  with the ``status`` / ``telemetry`` / ``spans`` / ``eventlog``
  commands and parses the JSON wire forms back into real objects;
  :func:`scrape_local` takes the identical route — through the same
  JSON payload — against an in-process cluster object, so the two paths
  cannot drift.
* :class:`TelemetryAggregator` folds the scrape into one
  :class:`ClusterView`: per-node registries merge through
  :meth:`~repro.obs.registry.MetricsRegistry.merge` in sorted node
  order (deterministic for a given cluster state), per-node span tables
  are renumbered into one tracker, and **cross-node traces are
  stitched**: each ``hop`` placeholder span (recorded by the receiving
  :class:`~repro.net.runtime.NodeRuntime` with the sender's span
  coordinates from the frame ``_meta`` sidecar) adopts the sender's
  report span, reconnecting alarm → … → leaf-interval chains across
  process boundaries so ``render_tree`` explains an alarm end to end.

The aggregator also *recomputes* the cluster truths no single island
can know:

* ``repro_cluster_detection_latency_seconds`` — per-alarm wall latency
  measured over the stitched trace (a root node alone only sees its own
  leaf intervals, so its local histogram is a lower-bound view);
* ``repro_cluster_realized_alpha`` — the per-level detection ratio
  (solutions emitted at a level / intervals entering that level's
  queues), the socket-plane analogue of the simulator's
  ``repro_level_realized_alpha``;
* cross-node alarm counts and liveness gauges.

Everything here is pure :mod:`repro.obs` — the module never imports
:mod:`repro.net`; the cluster hands over plain JSON-safe payloads.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .registry import MetricsRegistry
from .spans import Span, SpanTracker
from .telemetry import Telemetry

__all__ = [
    "NodeScrape",
    "ClusterScrape",
    "ClusterView",
    "ClusterScraper",
    "TelemetryAggregator",
    "scrape_local",
    "render_epoch_table",
    "CLUSTER_LATENCY_BUCKETS",
]

#: Wall-second buckets for the recomputed cluster detection latency —
#: localhost alarms land around milliseconds, the tail covers
#: repair-interrupted detections.
CLUSTER_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, math.inf,
)


# ----------------------------------------------------------------------
# scrape shapes
# ----------------------------------------------------------------------
@dataclass
class NodeScrape:
    """One node's telemetry island, as scraped."""

    node: int
    alive: bool
    level: Optional[int]
    registry: MetricsRegistry
    spans: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)


@dataclass
class ClusterScrape:
    """Everything one poll of a cluster returned."""

    status: dict
    nodes: Dict[int, NodeScrape] = field(default_factory=dict)
    cluster_registry: Optional[MetricsRegistry] = None
    cluster_events: List[dict] = field(default_factory=list)
    #: The epoch ledger payload (``EpochLedger.to_dict`` + watchdog
    #: state) — ``None`` when the cluster runs without a load session
    #: or predates the ``epochs`` admin command.
    epochs: Optional[dict] = None

    @classmethod
    def from_payload(cls, payload: dict) -> "ClusterScrape":
        """Parse the JSON scrape payload (admin wire form; also what
        :func:`scrape_local` consumes — one format, two transports)."""
        status = payload.get("status", {})
        levels = {int(k): v for k, v in (status.get("levels") or {}).items()}
        alive = set(status.get("alive", []))
        telemetry = payload.get("telemetry", {})
        spans = payload.get("spans", {})
        events = payload.get("eventlog", {})
        nodes: Dict[int, NodeScrape] = {}
        for key, registry_dict in (telemetry.get("nodes") or {}).items():
            pid = int(key)
            nodes[pid] = NodeScrape(
                node=pid,
                alive=pid in alive,
                level=levels.get(pid),
                registry=MetricsRegistry.from_dict(registry_dict),
                spans=list((spans.get("nodes") or {}).get(key, [])),
                events=list((events.get("nodes") or {}).get(key, [])),
            )
        cluster_registry = None
        if telemetry.get("cluster") is not None:
            cluster_registry = MetricsRegistry.from_dict(telemetry["cluster"])
        return cls(
            status=status,
            nodes=nodes,
            cluster_registry=cluster_registry,
            cluster_events=list(events.get("cluster") or []),
            epochs=payload.get("epochs") or None,
        )


def scrape_local(cluster) -> ClusterScrape:
    """Scrape an in-process cluster object (anything exposing
    ``scrape_payload()``) through the same JSON forms the admin
    endpoint serves."""
    return ClusterScrape.from_payload(
        json.loads(json.dumps(cluster.scrape_payload()))
    )


class ClusterScraper:
    """Admin-endpoint poller for a running cluster.

    Speaks the newline-delimited JSON protocol: one connection, five
    requests (``status``, ``telemetry``, ``spans``, ``eventlog``,
    ``epochs`` — the last tolerated missing on older clusters), one
    :class:`ClusterScrape` back.
    """

    #: StreamReader line limit — span/telemetry responses of a long run
    #: are far larger than asyncio's 64 KiB default.
    LINE_LIMIT = 64 * 1024 * 1024

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port

    async def scrape(self) -> ClusterScrape:
        reader, writer = await asyncio.open_connection(
            self.host, self.port, limit=self.LINE_LIMIT
        )
        try:
            payload = {}
            for cmd in ("status", "telemetry", "spans", "eventlog", "epochs"):
                writer.write(json.dumps({"cmd": cmd}).encode() + b"\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                if not response.get("ok"):
                    if cmd == "epochs":
                        # Older clusters don't serve the epoch ledger;
                        # a scrape without it is still a full scrape.
                        continue
                    raise RuntimeError(
                        f"admin {cmd!r} failed: {response.get('error')}"
                    )
                response.pop("ok", None)
                if cmd == "epochs":
                    payload["epochs"] = response.get("epochs")
                else:
                    payload[cmd] = response
            return ClusterScrape.from_payload(payload)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def scrape_sync(self) -> ClusterScrape:
        """Blocking convenience wrapper (CLI ``watch`` ticks)."""
        return asyncio.run(self.scrape())


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
class TelemetryAggregator:
    """Fold a :class:`ClusterScrape` into one coherent view."""

    def fold(self, scrape: ClusterScrape) -> "ClusterView":
        merged = MetricsRegistry()
        for pid in sorted(scrape.nodes):
            merged.merge(scrape.nodes[pid].registry)
        if scrape.cluster_registry is not None:
            merged.merge(scrape.cluster_registry)
        spans, mapping = self._combine_spans(scrape)
        stitched = self._stitch(spans, mapping)
        events = self._merge_events(scrape)
        view = ClusterView(
            registry=merged,
            spans=spans,
            events=events,
            status=scrape.status,
            nodes=scrape.nodes,
            stitched_hops=stitched,
            epochs=scrape.epochs,
        )
        self._publish_cluster_metrics(merged, view, scrape)
        return view

    # -- spans ---------------------------------------------------------
    @staticmethod
    def _combine_spans(
        scrape: ClusterScrape,
    ) -> Tuple[SpanTracker, Dict[Tuple[int, int], int]]:
        """One tracker over every node's table, sids renumbered in
        sorted node order; returns the (node, old sid) → new sid map
        the stitcher joins on."""
        tracker = SpanTracker()
        mapping: Dict[Tuple[int, int], int] = {}
        imported: List[Tuple[Span, int, dict]] = []
        new_sid = 0
        for pid in sorted(scrape.nodes):
            for row in scrape.nodes[pid].spans:
                mapping[(pid, int(row["sid"]))] = new_sid
                span = tracker.append_imported(row, sid=new_sid)
                imported.append((span, pid, row))
                new_sid += 1
        # Second pass: remap intra-node parent links (a parent's sid can
        # exceed its child's — alarms adopt earlier spans — so links can
        # only be resolved once the whole node table is loaded).
        for span, pid, row in imported:
            parent = row.get("parent")
            if parent is not None:
                remapped = mapping.get((pid, int(parent)))
                if remapped is not None:
                    tracker.reparent(span, remapped)
        return tracker, mapping

    @staticmethod
    def _stitch(
        tracker: SpanTracker, mapping: Dict[Tuple[int, int], int]
    ) -> int:
        """Join cross-node links: every ``hop`` placeholder adopts the
        sender-side span it stands for.  Returns the number of links
        made (first parent wins, as everywhere in the span model)."""
        stitched = 0
        for span in tracker.spans:
            if span.name != "hop":
                continue
            remote = (
                span.attrs.get("remote_node"),
                span.attrs.get("remote_sid"),
            )
            target_sid = mapping.get((int(remote[0]), int(remote[1]))) if (
                remote[0] is not None and remote[1] is not None
            ) else None
            if target_sid is None:
                continue
            target = tracker.by_sid(target_sid)
            if target is not None and target is not span:
                if tracker.reparent(target, span.sid):
                    stitched += 1
        return stitched

    # -- events --------------------------------------------------------
    @staticmethod
    def _merge_events(scrape: ClusterScrape) -> List[dict]:
        """Node + cluster event streams, content-deduplicated (scoped
        clocks forward node events to the cluster log) and time-sorted."""
        seen = set()
        merged: List[dict] = []
        streams = [scrape.nodes[pid].events for pid in sorted(scrape.nodes)]
        streams.append(scrape.cluster_events)
        for stream in streams:
            for event in stream:
                identity = (
                    event.get("time"),
                    event.get("kind"),
                    event.get("node"),
                    json.dumps(event.get("fields", {}), sort_keys=True),
                )
                if identity in seen:
                    continue
                seen.add(identity)
                merged.append(event)
        merged.sort(key=lambda e: (e.get("time") or 0.0, e.get("kind") or ""))
        return merged

    # -- derived cluster metrics ---------------------------------------
    def _publish_cluster_metrics(
        self, merged: MetricsRegistry, view: "ClusterView", scrape: ClusterScrape
    ) -> None:
        latency = merged.histogram(
            "repro_cluster_detection_latency_seconds",
            "Wall seconds from the last solution interval's open to the "
            "alarm, measured over the stitched cross-node trace.",
            CLUSTER_LATENCY_BUCKETS,
        )
        for value in view.cluster_detection_latencies():
            latency.observe(value)
        alpha = merged.gauge_vec(
            "repro_cluster_realized_alpha",
            "Per-level detection ratio over the merged per-node counters "
            "(solutions emitted at the level / intervals entering its "
            "queues).",
            ("level",),
        )
        for level, value in sorted(view.alpha_by_level().items()):
            alpha[level] = round(value, 6)
        merged.gauge(
            "repro_cluster_nodes", "Nodes in the scraped cluster."
        ).set(len(scrape.nodes))
        merged.gauge(
            "repro_cluster_alive_nodes", "Nodes alive at scrape time."
        ).set(sum(1 for n in scrape.nodes.values() if n.alive))
        merged.gauge(
            "repro_cluster_cross_node_alarms",
            "Alarms whose stitched trace spans at least two nodes.",
        ).set(len(view.cross_node_alarms()))
        merged.gauge(
            "repro_cluster_stitched_hops",
            "Cross-node span links joined by the trace stitcher.",
        ).set(view.stitched_hops)
        summary = (scrape.epochs or {}).get("summary")
        if summary:
            for state in ("solved", "stranded", "expired", "in_flight"):
                merged.gauge(
                    f"repro_cluster_epochs_{state}",
                    f"Epochs {state.replace('_', ' ')} per the scraped "
                    "ledger.",
                ).set(summary.get(state, 0))


# ----------------------------------------------------------------------
# the folded view
# ----------------------------------------------------------------------
@dataclass
class ClusterView:
    """One coherent, cluster-wide observability snapshot."""

    registry: MetricsRegistry
    spans: SpanTracker
    events: List[dict]
    status: dict
    nodes: Dict[int, NodeScrape]
    stitched_hops: int = 0
    #: The scraped epoch ledger payload, when the cluster served one.
    epochs: Optional[dict] = None

    @property
    def telemetry(self) -> Telemetry:
        """The merged view bundled as an ordinary :class:`Telemetry`,
        so every :mod:`repro.obs.export` writer applies unchanged."""
        bundle = Telemetry()
        bundle.registry = self.registry
        bundle.spans = self.spans
        return bundle

    # -- traces --------------------------------------------------------
    def alarms(self) -> List[Span]:
        return self.spans.alarms()

    def _trace_nodes(self, alarm: Span) -> Tuple[set, int]:
        nodes = set()
        leaf_intervals = 0
        for _, span in self.spans.walk(alarm):
            if span.node is not None:
                nodes.add(span.node)
            if span.name == "interval":
                leaf_intervals += 1
        return nodes, leaf_intervals

    def cross_node_alarms(self) -> List[Span]:
        """Alarms whose stitched explanation crosses ≥ 2 nodes *and*
        reaches concrete leaf intervals."""
        out = []
        for alarm in self.alarms():
            nodes, leaves = self._trace_nodes(alarm)
            if len(nodes) >= 2 and leaves > 0:
                out.append(alarm)
        return out

    def cluster_detection_latencies(self) -> List[float]:
        """Per-alarm wall latency over the stitched trace: alarm time
        minus the open of the newest leaf interval it explains."""
        out = []
        for alarm in self.alarms():
            opens = [
                span.start
                for _, span in self.spans.walk(alarm)
                if span.name == "interval"
            ]
            if opens:
                out.append(max(0.0, alarm.start - max(opens)))
        return out

    # -- per-level α ---------------------------------------------------
    def alpha_by_level(self) -> Dict[int, float]:
        """Realized per-level detection ratio from the merged counters.

        A level's "solutions" are the reports its non-root nodes sent up
        plus the alarms its (partition-)roots announced; opportunities
        are the intervals that entered the level's detection queues."""
        produced: Dict[int, float] = {}
        offered: Dict[int, float] = {}
        for pid, node in self.nodes.items():
            if node.level is None:
                continue
            registry = node.registry
            for name in ("repro_reports_total", "repro_alarms_total"):
                vec = registry.get(name)
                if vec is not None:
                    produced[node.level] = produced.get(node.level, 0.0) + sum(
                        vec.values()
                    )
            enqueued = registry.get("repro_detect_enqueued_total")
            if enqueued is not None:
                offered[node.level] = offered.get(node.level, 0.0) + sum(
                    enqueued.values()
                )
        return {
            level: (produced.get(level, 0.0) / offered[level])
            if offered.get(level)
            else 0.0
            for level in sorted(set(produced) | set(offered))
        }

    # -- live table ----------------------------------------------------
    def status_table(self) -> str:
        """The ``repro-cluster watch`` surface: one row per node from
        its own registry, a cluster summary underneath."""

        def node_count(registry: MetricsRegistry, name: str) -> int:
            vec = registry.get(name)
            return int(sum(vec.values())) if vec else 0

        header = (
            f"{'node':>4} {'lvl':>3} {'alive':>5} {'ivls':>6} {'alarms':>6} "
            f"{'reports':>7} {'reconn':>6} {'outbox':>6} {'stale':>5}"
        )
        lines = [header, "-" * len(header)]
        for pid in sorted(self.nodes):
            node = self.nodes[pid]
            registry = node.registry
            depth_vec = registry.get("repro_net_outbox_depth")
            depth = int(max(depth_vec.values(), default=0)) if depth_vec else 0
            lines.append(
                f"{pid:>4} {node.level if node.level is not None else '-':>3} "
                f"{'yes' if node.alive else 'DEAD':>5} "
                f"{node_count(registry, 'repro_intervals_total'):>6} "
                f"{node_count(registry, 'repro_alarms_total'):>6} "
                f"{node_count(registry, 'repro_reports_total'):>7} "
                f"{node_count(registry, 'repro_net_reconnects_total'):>6} "
                f"{depth:>6} "
                f"{node_count(registry, 'repro_net_stale_frames_total'):>5}"
            )
        alpha = self.alpha_by_level()
        alpha_text = (
            "  ".join(f"L{level}={alpha[level]:.2f}" for level in sorted(alpha))
            or "n/a"
        )
        status = self.status
        lines.append("")
        lines.append(
            f"detections={status.get('detections', '?')} "
            f"repairs={status.get('repairs', [])} "
            f"false_suspicions={status.get('false_suspicions', '?')} "
            f"uptime={status.get('uptime', '?')}s"
        )
        lines.append(
            f"alpha by level: {alpha_text}   "
            f"cross-node alarms: {len(self.cross_node_alarms())} "
            f"(stitched links: {self.stitched_hops})"
        )
        return "\n".join(lines)

    # -- epoch ledger --------------------------------------------------
    def epoch_summary(self) -> Optional[dict]:
        """The scraped ledger's summary block (``None`` when the
        cluster ran without a load session)."""
        if self.epochs is None:
            return None
        return self.epochs.get("summary")

    def epoch_table(self) -> str:
        """The ``repro-cluster watch --epochs`` surface: the ledger's
        accounting line, per-target queue watermarks and one row per
        stranded epoch naming which process's shed offer (or dead
        target) stranded it."""
        return render_epoch_table(self.epochs)

def render_epoch_table(payload: Optional[dict]) -> str:
    """Render an epoch-ledger payload (``EpochLedger.to_dict()`` shape,
    optionally with a ``watchdog`` block) as the human ledger view shared
    by ``repro-cluster watch --epochs`` and ``repro-trace epochs``."""
    summary = (payload or {}).get("summary")
    if payload is None or summary is None:
        return "no epoch ledger (cluster running without --load)"
    lines = [
        f"epochs: offered={summary.get('offered_epochs', 0)} "
        f"admitted={summary.get('admitted_epochs', 0)} "
        f"solved={summary.get('solved', 0)} "
        f"stranded={summary.get('stranded', 0)} "
        f"expired={summary.get('expired', 0)} "
        f"in_flight={summary.get('in_flight', 0)}"
    ]
    causes = summary.get("stranded_by_cause") or {}
    if causes:
        lines.append(
            "stranded by cause: "
            + "  ".join(f"{c}={n}" for c, n in sorted(causes.items()))
        )
    watchdog = payload.get("watchdog")
    if watchdog:
        state = "LATCHED" if watchdog.get("latched") else "armed"
        lines.append(
            f"stranding watchdog: {state} "
            f"(threshold={watchdog.get('threshold')})"
        )
    watermarks = summary.get("watermarks") or {}
    if watermarks:
        lines.append(
            "queue watermarks: "
            + "  ".join(
                f"P{t}:depth={m.get('depth', 0)},age={m.get('age_s', 0):.3g}s"
                for t, m in sorted(
                    watermarks.items(), key=lambda kv: int(kv[0])
                )
            )
        )
    detail = payload.get("stranded_detail") or []
    if detail:
        lines.append("")
        lines.append("stranded epochs:")
        for row in detail:
            culprits = []
            for shed in row.get("shed", []):
                target = shed.get("target")
                where = f"P{target}" if target is not None else "no target"
                culprits.append(f"shed@{where}({shed.get('reason')})")
            for gone in row.get("abandoned", []):
                culprits.append(
                    f"abandoned@P{gone.get('target')}({gone.get('reason')})"
                )
            lines.append(
                f"  epoch {row.get('epoch')}: cause={row.get('cause')} "
                f"admitted={row.get('admitted')}/{row.get('expected')} "
                f"completed={row.get('completed')} — "
                + ", ".join(culprits)
            )
        truncated = payload.get("stranded_detail_truncated", 0)
        if truncated:
            lines.append(f"  … and {truncated} more stranded epochs")
    return "\n".join(lines)
