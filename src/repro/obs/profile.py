"""Continuous profiling: signal-driven stack sampling + cProfile blocks.

The observability plane can now stay on at <10% overhead — which makes
"where do the remaining cycles go?" the next operator question.  Two
complementary tools answer it:

* :class:`SamplingProfiler` — a low-overhead, always-on profiler in the
  style of py-spy/perf: a POSIX interval timer (``setitimer``) delivers
  a signal every ``interval`` seconds and the handler walks the
  interrupted frame stack into a collapsed-stack counter.  Cost is
  O(stack depth) per *sample*, not per function call, so it can ride
  along with a live cluster node.  ``wall`` mode (``ITIMER_REAL``)
  samples elapsed time — including waits in the asyncio selector —
  while ``cpu`` mode (``ITIMER_PROF``) samples only CPU time.
* :func:`profile_block` — an exact (deterministic, cProfile-based)
  section profiler for benches and offline analysis, where per-call
  overhead is acceptable in exchange for call counts.

Both emit the two interchange forms the rest of ``repro.obs`` already
speaks: collapsed flamegraph stacks (``a;b;c 42`` lines, ready for
``flamegraph.pl`` / speedscope) and chrome-trace events for
``chrome://tracing``.

Signal handlers can only be installed from the main thread of the main
interpreter on POSIX, so availability is gated — callers check
:meth:`SamplingProfiler.available` and degrade to ``profile_block`` or
nothing.  A cluster runs its asyncio loop on the main thread, so the
gate passes exactly where continuous profiling matters.
"""

from __future__ import annotations

import cProfile
import pstats
import signal
import threading
import time
from collections import Counter, deque
from contextlib import contextmanager
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["SamplingProfiler", "ProfileSection", "profile_block"]

_MODES: Dict[str, Tuple[int, int]] = {}
if hasattr(signal, "setitimer"):  # POSIX only
    _MODES = {
        "wall": (signal.SIGALRM, signal.ITIMER_REAL),
        "cpu": (signal.SIGPROF, signal.ITIMER_PROF),
    }


class SamplingProfiler:
    """Periodic stack sampler built on POSIX interval timers.

    Parameters
    ----------
    interval:
        Seconds between samples (default 5ms ⇒ ~200 samples/s).
    mode:
        ``"wall"`` (elapsed time, ``SIGALRM``) or ``"cpu"``
        (CPU time only, ``SIGPROF``).
    max_depth:
        Frames retained per sample (innermost first while walking,
        stored root→leaf).
    max_trace:
        Timestamped samples kept for chrome-trace export; the collapsed
        stack counter itself is never truncated (it is keyed by unique
        stack, not by sample).
    """

    def __init__(
        self,
        interval: float = 0.005,
        *,
        mode: str = "wall",
        max_depth: int = 64,
        max_trace: int = 20000,
    ) -> None:
        if mode not in ("wall", "cpu"):
            raise ValueError(f"profiler mode must be 'wall' or 'cpu', got {mode!r}")
        if interval <= 0:
            raise ValueError("profiler interval must be positive")
        self.interval = float(interval)
        self.mode = mode
        self.max_depth = int(max_depth)
        self.samples = 0
        self.stacks: Counter = Counter()
        self._trace: Deque[Tuple[float, str]] = deque(maxlen=max_trace)
        self._running = False
        self._old_handler = None
        self._started_at: Optional[float] = None
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    @staticmethod
    def available() -> bool:
        """Signal profiling needs ``setitimer`` and the main thread."""
        return bool(_MODES) and threading.current_thread() is threading.main_thread()

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        if not _MODES:
            raise RuntimeError("signal-based profiling is unavailable on this platform")
        if threading.current_thread() is not threading.main_thread():
            raise RuntimeError("signal-based profiling must start on the main thread")
        signum, timer = _MODES[self.mode]
        self._old_handler = signal.signal(signum, self._handler)
        signal.setitimer(timer, self.interval, self.interval)
        self._started_at = time.perf_counter()
        self._running = True

    def stop(self) -> None:
        if not self._running:
            return
        signum, timer = _MODES[self.mode]
        signal.setitimer(timer, 0.0, 0.0)
        signal.signal(signum, self._old_handler or signal.SIG_DFL)
        self._old_handler = None
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        self._running = False

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _handler(self, signum, frame) -> None:
        self.samples += 1
        parts: List[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            filename = code.co_filename.rsplit("/", 1)[-1]
            parts.append(f"{code.co_name} ({filename}:{code.co_firstlineno})")
            frame = frame.f_back
            depth += 1
        parts.reverse()
        stack = ";".join(parts)
        self.stacks[stack] += 1
        self._trace.append((time.perf_counter(), stack))

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Total wall seconds this profiler has been running."""
        extra = (
            time.perf_counter() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return self._elapsed + extra

    def collapsed(self) -> str:
        """Collapsed flamegraph stacks: one ``root;...;leaf count`` line
        per unique stack, most-sampled first."""
        return "\n".join(
            f"{stack} {count}"
            for stack, count in sorted(
                self.stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The *n* most-sampled leaf frames (self-time attribution)."""
        leaves: Counter = Counter()
        for stack, count in self.stacks.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] += count
        return leaves.most_common(n)

    def to_dict(self) -> dict:
        """JSON-safe snapshot (the ``profile`` admin command payload)."""
        return {
            "mode": self.mode,
            "interval": self.interval,
            "running": self._running,
            "samples": self.samples,
            "elapsed": self.elapsed,
            "unique_stacks": len(self.stacks),
            "top": [[frame, count] for frame, count in self.top(10)],
            "stacks": dict(self.stacks),
        }

    def chrome_trace(self) -> List[dict]:
        """Timestamped samples as chrome-trace instant events."""
        if not self._trace:
            return []
        base = self._trace[0][0]
        return [
            {
                "name": stack.rsplit(";", 1)[-1],
                "ph": "i",
                "ts": (t - base) * 1e6,
                "pid": 0,
                "tid": 0,
                "s": "t",
                "args": {"stack": stack},
            }
            for t, stack in self._trace
        ]


class ProfileSection:
    """The result of one :func:`profile_block`: exact cProfile stats."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed: float = 0.0
        self._stats: Optional[pstats.Stats] = None

    def _load(self, profiler: cProfile.Profile) -> None:
        self._stats = pstats.Stats(profiler, stream=_NullStream())

    def top(self, n: int = 10) -> List[dict]:
        """The *n* hottest functions by cumulative time."""
        if self._stats is None:
            return []
        rows = []
        for (filename, line, func), (cc, nc, tt, ct, _callers) in self._stats.stats.items():
            rows.append(
                {
                    "func": f"{func} ({filename.rsplit('/', 1)[-1]}:{line})",
                    "calls": nc,
                    "tottime": tt,
                    "cumtime": ct,
                }
            )
        rows.sort(key=lambda r: (-r["cumtime"], r["func"]))
        return rows[:n]

    def collapsed(self, n: int = 50) -> str:
        """Two-level collapsed stacks (``section;func µs``) by self time
        — coarse, but feeds the same flamegraph tooling as the sampler."""
        rows = []
        for entry in self.top(n):
            micros = int(round(entry["tottime"] * 1e6))
            if micros > 0:
                rows.append((micros, f"{self.name};{entry['func']} {micros}"))
        rows.sort(key=lambda r: (-r[0], r[1]))
        return "\n".join(line for _, line in rows)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "top": self.top(10),
        }


class _NullStream:
    def write(self, *_args) -> None:  # pragma: no cover - pstats plumbing
        pass

    def flush(self) -> None:  # pragma: no cover - pstats plumbing
        pass


@contextmanager
def profile_block(name: str):
    """Profile a code block exactly (cProfile) and yield its section::

        with profile_block("stitch") as section:
            view = aggregator.fold(scrape)
        print(section.top(5))

    Unlike :class:`SamplingProfiler` this is deterministic and carries
    call counts, at the price of tracing every call — bench and offline
    use only.
    """
    section = ProfileSection(name)
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        yield section
    finally:
        profiler.disable()
        section.elapsed = time.perf_counter() - start
        section._load(profiler)
