"""Deterministic head-based trace sampling.

Always-on tracing at cluster scale cannot afford to *export* every
span: a leaf process opens one ``interval`` span per predicate run, and
at 10k offers/s the span table dwarfs the detection state it describes.
:class:`TraceSampler` implements the classic head/tail split:

* **Head decision** — whether a trace root (a concrete predicate
  interval) is kept is a pure function of its identity key, the
  sampling ``rate`` and the ``seed``.  No randomness, no process state:
  every node of a cluster, every shard of a sharded experiment and a
  replayed simulation all reach the *same* keep/drop decision for the
  same interval.  That is what makes sampled cross-node traces
  stitchable — the sender can ship its decision in the frame ``_meta``
  sidecar and the receiver independently agrees.
* **Tail promotion** — spans that turn out to matter are retained no
  matter what the head decision said.  The span tracker keeps every
  alarm/report/hop span and promotes any interval that was adopted
  into a retained explanation tree, so a ``Definitely(Φ)`` announcement
  is *always* explainable down to its concrete leaf intervals, even at
  ``rate=0.0``.

The decision function deliberately avoids Python's builtin ``hash``
(randomised per process via ``PYTHONHASHSEED``) and avoids wide 64-bit
mixing (CPython big-int multiplies cost ~0.4µs — more than the span
row append it would be gating).  A small multiplicative congruence over
``(owner, seq)`` modulo one million is deterministic, cheap (~0.12µs)
and equidistributed in the sequence number, which is the axis sampled
traces actually vary along.
"""

from __future__ import annotations

import zlib
from typing import Optional

__all__ = ["TraceSampler", "DEFAULT_SAMPLE_RATE"]

#: The default keep fraction when sampling is enabled without an
#: explicit rate (one in ten trace roots).
DEFAULT_SAMPLE_RATE: float = 0.1

#: Decision space: keep/drop is ``mix(key) mod _SPACE < rate * _SPACE``.
_SPACE = 1_000_000

#: Odd multipliers, coprime to ``_SPACE`` so consecutive sequence
#: numbers sweep the full residue space.
_SEQ_MULT = 40503
_OWNER_MULT = 2654435761


class TraceSampler:
    """Seeded, deterministic keep/drop decisions for trace roots.

    Parameters
    ----------
    rate:
        Fraction of trace roots to head-keep, in ``[0, 1]``.  ``1.0``
        keeps everything (tracing behaves as if unsampled), ``0.0``
        keeps only promoted spans (alarms and their explanations).
    seed:
        Decision-space offset.  Samplers with equal ``(rate, seed)``
        agree on every key; different seeds select different (but still
        deterministic) subsets.  Nodes of one cluster share the seed so
        their decisions line up across the wire.
    """

    __slots__ = ("rate", "seed", "_threshold", "_offset")

    def __init__(self, rate: float = DEFAULT_SAMPLE_RATE, *, seed: int = 0) -> None:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = int(seed)
        self._threshold = int(round(rate * _SPACE))
        # Seed enters additively after its own mix so seed 0 / key 0
        # does not degenerate.
        self._offset = (self.seed * _OWNER_MULT + 12345) % _SPACE

    # ------------------------------------------------------------------
    def keep(self, key: Optional[tuple]) -> bool:
        """Head decision for the trace root identified by *key*.

        *key* is a span-registry key: for concrete intervals the
        normalized ``(owner, seq, lo, hi)`` tuple, whose leading two
        integers drive the fast path.  Any other hashable key falls
        back to CRC-32 of its ``repr`` — slower but equally
        deterministic across processes.  ``None`` (an unkeyed span)
        cannot be decided reproducibly and is always kept.
        """
        threshold = self._threshold
        if threshold >= _SPACE:
            return True
        if key is None:
            return True
        if threshold <= 0:
            return False
        try:
            k0, k1 = key[0], key[1]
        except (TypeError, IndexError, KeyError):
            k0 = k1 = None
        if type(k0) is int and type(k1) is int:
            # The explicit type check matters: a string leading element
            # (an ``"agg"``-prefixed key) would *sequence-repeat* under
            # ``*``, not raise, so EAFP cannot guard this path.
            basis = k1 * _SEQ_MULT + k0 * _OWNER_MULT
        else:
            basis = zlib.crc32(repr(key).encode("utf-8"))
        return (basis + self._offset) % _SPACE < threshold

    def keep_interval(self, interval) -> bool:
        """Convenience: decision for a concrete/aggregated interval."""
        return self.keep(interval.key())

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"rate": self.rate, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSampler":
        return cls(float(data.get("rate", DEFAULT_SAMPLE_RATE)), seed=int(data.get("seed", 0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceSampler(rate={self.rate}, seed={self.seed})"
