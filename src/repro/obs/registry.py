"""Metrics registry — counters, gauges and fixed-bucket histograms.

The registry is the single store for a run's quantitative telemetry.
Every :class:`~repro.sim.kernel.Simulator` owns one (via its
:class:`~repro.obs.telemetry.Telemetry`), and every instrumented layer
— the network fabric, the detector roles, the heartbeat monitors —
registers its metrics there instead of keeping hand-rolled counters.
``(seed, workload, topology)`` determinism extends to the registry: two
identical runs produce byte-identical expositions.

Design notes
------------
* Metrics are *get-or-create*: registering the same name twice returns
  the same object; re-registering under a different type raises.
* :class:`CounterVec` subclasses :class:`collections.Counter`, so hot
  paths keep the idiomatic ``vec[key] += 1`` — a labelled metric *is* a
  Counter whose keys are label-value tuples (or a scalar when the vec
  has a single label).
* :class:`Histogram` keeps both fixed buckets (for Prometheus
  exposition) and the raw observations (for exact percentiles at
  simulation scale).
* :meth:`MetricsRegistry.to_dict` / :meth:`MetricsRegistry.from_dict`
  are the JSON wire form used by the cluster admin protocol: a scraped
  registry round-trips losslessly (infinite bucket edges travel as the
  string ``"+Inf"``) so :meth:`MetricsRegistry.merge` can fold remote
  node registries exactly as it folds experiment shards.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import Counter as _Counter
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CounterMetric",
    "Gauge",
    "Histogram",
    "CounterVec",
    "GaugeVec",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Generic duration buckets in simulated time units.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, math.inf,
)

LabelKey = Union[object, Tuple[object, ...]]


def _edge_to_json(edge: float):
    if math.isinf(edge):
        return "+Inf" if edge > 0 else "-Inf"
    return edge


def _edge_from_json(edge) -> float:
    if edge == "+Inf":
        return math.inf
    if edge == "-Inf":
        return -math.inf
    return float(edge)


class CounterMetric:
    """A single monotonically increasing counter."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "CounterMetric") -> None:
        self.value += other.value

    def samples(self) -> Iterator[Tuple[dict, float]]:
        yield {}, self.value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def merge(self, other: "Gauge") -> None:
        # Gauges are point-in-time values; the incoming snapshot wins
        # (registries are merged in shard order, so this is still
        # deterministic for any worker count).
        self.value = other.value

    def samples(self) -> Iterator[Tuple[dict, float]]:
        yield {}, self.value


class _VecMixin:
    """Shared label handling for Counter/Gauge vectors."""

    labelnames: Tuple[str, ...]

    def _label_dict(self, key: LabelKey) -> dict:
        if len(self.labelnames) == 1 and not isinstance(key, tuple):
            key = (key,)
        if not isinstance(key, tuple) or len(key) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name} expects {len(self.labelnames)} label "
                f"value(s) {self.labelnames}, got {key!r}"
            )
        return dict(zip(self.labelnames, key))

    def samples(self) -> Iterator[Tuple[dict, float]]:
        # Deterministic output order regardless of increment order.
        for key in sorted(self, key=lambda k: str(k)):
            yield self._label_dict(key), self[key]


def _rebuild_vec(cls, name, help, labelnames, items):
    vec = cls(name, help, labelnames)
    vec.update(items)
    return vec


class CounterVec(_VecMixin, _Counter):
    """A labelled counter: a ``Counter`` whose keys are label values.

    Hot paths use plain Counter syntax — ``vec[("control", "Heartbeat")]
    += 1`` or, for a single-label vec, ``vec[pid] += 1`` — or, when the
    label values are known up front, a pre-resolved :meth:`handle`.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__()
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    def handle(self, key: LabelKey):
        """A bound increment callable for one label-value key.

        Instrumented hot paths resolve their labels once (at bind time)
        instead of building and hashing the key tuple per call::

            h = vec.handle((pid, "enqueue"))
            ...
            h()        # vec[(pid, "enqueue")] += 1
            h(amount)  # vec[(pid, "enqueue")] += amount
        """
        def inc(amount: float = 1, _vec=self, _key=key) -> None:
            _vec[_key] = _vec[_key] + amount

        return inc

    def merge(self, other: "CounterVec") -> None:
        for key, value in other.items():
            self[key] += value

    def __reduce__(self):
        # Counter.__reduce__ would call ``CounterVec(dict(self))``,
        # silently binding the counts dict to ``name`` — shard results
        # cross process boundaries, so spell the rebuild out.
        return (
            _rebuild_vec,
            (type(self), self.name, self.help, self.labelnames, dict(self)),
        )


class GaugeVec(_VecMixin, dict):
    """A labelled gauge; assign with ``vec[key] = value``."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__()
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    def merge(self, other: "GaugeVec") -> None:
        self.update(other)

    def __reduce__(self):
        return (
            _rebuild_vec,
            (type(self), self.name, self.help, self.labelnames, dict(self)),
        )


class Histogram:
    """Fixed-bucket histogram with exact percentiles.

    Bucket semantics follow Prometheus: an observation lands in the
    first bucket whose upper edge is ``>= value`` (``le`` — less than or
    equal), and exposition is cumulative.  The raw observations are kept
    sorted so :meth:`percentile` is exact, not interpolated from
    buckets.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "_values")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        edges = sorted(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket")
        if edges[-1] != math.inf:
            edges.append(math.inf)
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(edges)
        self.bucket_counts: List[int] = [0] * len(edges)
        self.sum: float = 0.0
        self._values: List[float] = []

    @property
    def count(self) -> int:
        return len(self._values)

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        insort(self._values, value)

    def cumulative_counts(self) -> List[int]:
        total, out = 0, []
        for count in self.bucket_counts:
            total += count
            out.append(total)
        return out

    def percentile(self, q: float) -> Optional[float]:
        """Exact q-th percentile (``q`` in [0, 100]) of all observations,
        or ``None`` when nothing was observed."""
        if not self._values:
            return None
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        index = max(0, math.ceil(q / 100.0 * len(self._values)) - 1)
        return self._values[index]

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Requires identical bucket edges (merging differently bucketed
        histograms would silently misattribute counts).  The raw
        observations are re-merged sorted, so exact percentiles keep
        working on the combined population.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: bucket mismatch "
                f"{other.buckets} vs {self.buckets}"
            )
        self.bucket_counts = [
            mine + theirs
            for mine, theirs in zip(self.bucket_counts, other.bucket_counts)
        ]
        self.sum += other.sum
        self._values = sorted(self._values + other._values)

    @property
    def values(self) -> Tuple[float, ...]:
        """All observations, sorted ascending."""
        return tuple(self._values)

    def samples(self) -> Iterator[Tuple[dict, float]]:
        for edge, cumulative in zip(self.buckets, self.cumulative_counts()):
            yield {"le": edge}, cumulative


Metric = Union[CounterMetric, Gauge, Histogram, CounterVec, GaugeVec]


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Some counters are folded lazily from batched telemetry queues (see
    :meth:`~repro.obs.spans.SpanTracker.on_flush`); *flush hooks* let
    those sources drain before any read, so ``get``/``metrics``/
    pickling always observe up-to-date values."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._flush_hooks: List[Callable[[], None]] = []

    def add_flush_hook(self, hook: Callable[[], None]) -> None:
        """Run *hook* before reads; hooks must be idempotent."""
        self._flush_hooks.append(hook)

    def _flush(self) -> None:
        for hook in self._flush_hooks:
            hook()

    def __getstate__(self) -> dict:
        # Hooks are closures over live telemetry objects — drain them,
        # then drop them from the pickle (shard workers ship their
        # registry back to the driver by value).
        self._flush()
        return {"_metrics": self._metrics, "_flush_hooks": []}

    def _get_or_create(self, name: str, cls, *args) -> Metric:
        self._flush()  # callers may read the returned metric directly
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric
        metric = cls(name, *args)
        self._metrics[name] = metric
        return metric

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> CounterMetric:
        return self._get_or_create(name, CounterMetric, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, help, buckets)

    def counter_vec(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> CounterVec:
        return self._get_or_create(name, CounterVec, help, labelnames)

    def gauge_vec(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> GaugeVec:
        return self._get_or_create(name, GaugeVec, help, labelnames)

    def counter_handle(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        key: Optional[LabelKey] = None,
    ):
        """Get-or-create a counter and return a bound increment callable.

        With ``labelnames`` (and ``key``) this is
        ``counter_vec(...).handle(key)``; without labels it binds the
        scalar counter's :meth:`CounterMetric.inc`.  Either way the hot
        path holds one callable and pays no per-call label handling.
        """
        if labelnames:
            if key is None:
                raise ValueError(
                    f"metric {name!r}: counter_handle needs a label key "
                    f"for labelnames {tuple(labelnames)}"
                )
            return self.counter_vec(name, help, labelnames).handle(key)
        if key is not None:
            raise ValueError(
                f"metric {name!r}: key given but no labelnames declared"
            )
        return self.counter(name, help).inc

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every metric of *other* into this registry.

        Counters (scalar and labelled) and histograms accumulate;
        gauges take the incoming snapshot's value.  Metrics absent here
        are adopted with *other*'s type and metadata.  This is the
        reduction the sharded experiment runner applies, in shard
        order, to produce one registry for a whole parallel sweep —
        merging is associative for counters/histograms, and shard order
        is fixed by the spec list, so the merged exposition is
        deterministic for any worker count.
        """
        self._flush()
        other._flush()
        for name in sorted(other._metrics):
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = self.histogram(name, theirs.help, theirs.buckets)
                elif isinstance(theirs, (CounterVec, GaugeVec)):
                    mine = self._get_or_create(
                        name, type(theirs), theirs.help, theirs.labelnames
                    )
                else:
                    mine = self._get_or_create(name, type(theirs), theirs.help)
            elif type(mine) is not type(theirs):
                raise TypeError(
                    f"cannot merge metric {name!r}: "
                    f"{type(theirs).__name__} into {type(mine).__name__}"
                )
            mine.merge(theirs)

    # ------------------------------------------------------------------
    # JSON wire form (cluster scrapes, flight snapshots)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe snapshot of every metric, in exposition order.

        Inverse of :meth:`from_dict`; infinite bucket edges are spelled
        ``"+Inf"`` because JSON has no ``inf`` literal."""
        out: Dict[str, dict] = {}
        for metric in self.metrics():
            entry: dict = {"kind": type(metric).__name__, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = [_edge_to_json(b) for b in metric.buckets]
                entry["values"] = list(metric._values)
                entry["sum"] = metric.sum
            elif isinstance(metric, (CounterVec, GaugeVec)):
                entry["labelnames"] = list(metric.labelnames)
                entry["items"] = [
                    [list(key) if isinstance(key, tuple) else [key], value]
                    for key, value in sorted(
                        metric.items(), key=lambda kv: str(kv[0])
                    )
                ]
            else:
                entry["value"] = metric.value
            out[metric.name] = entry
        return {"metrics": out}

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name, entry in sorted(data.get("metrics", {}).items()):
            kind = entry["kind"]
            help_ = entry.get("help", "")
            if kind == "Histogram":
                buckets = tuple(_edge_from_json(b) for b in entry["buckets"])
                histogram = registry.histogram(name, help_, buckets)
                for value in entry["values"]:
                    histogram.observe(value)
                histogram.sum = float(entry.get("sum", histogram.sum))
            elif kind in ("CounterVec", "GaugeVec"):
                vec_cls = CounterVec if kind == "CounterVec" else GaugeVec
                vec = registry._get_or_create(
                    name, vec_cls, help_, tuple(entry["labelnames"])
                )
                for key_list, value in entry["items"]:
                    key = key_list[0] if len(key_list) == 1 else tuple(key_list)
                    vec[key] = value
            elif kind == "CounterMetric":
                registry.counter(name, help_).value = entry["value"]
            elif kind == "Gauge":
                registry.gauge(name, help_).value = entry["value"]
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
        return registry

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        self._flush()
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> List[Metric]:
        """All registered metrics, sorted by name (exposition order)."""
        self._flush()
        return [self._metrics[name] for name in sorted(self._metrics)]
