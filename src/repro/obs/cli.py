"""Command-line entry point: ``repro-trace`` — run one monitored
scenario and export its telemetry.

    repro-trace --nodes 20 --crash 30:7 \\
        --chrome trace.json --prom metrics.prom --jsonl events.jsonl

builds a 20-node random geometric network, runs the hierarchical
``Definitely(Φ)`` detector over the epoch workload with node 7 crashing
at t=30, and writes a Chrome/Perfetto trace, a Prometheus text
exposition and a JSONL event dump.  The console summary shows the
alarms, detection-latency percentiles, per-level realized α and message
counts.  Everything is deterministic in ``(seed, workload, topology)``:
rerunning the same command reproduces the files byte for byte.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence, Tuple

__all__ = ["main", "build_parser"]


def _parse_crash(spec: str) -> Tuple[float, int]:
    """``T:PID`` → ``(time, pid)``."""
    try:
        time_s, pid_s = spec.split(":", 1)
        return float(time_s), int(pid_s)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"crash spec must be TIME:PID, got {spec!r}"
        ) from exc


def _parse_window(spec: str) -> Tuple[float, float]:
    """``T0:T1`` → ``(start, end)``."""
    try:
        lo_s, hi_s = spec.split(":", 1)
        lo, hi = float(lo_s), float(hi_s)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"window must be T0:T1, got {spec!r}"
        ) from exc
    if hi < lo:
        raise argparse.ArgumentTypeError("window end must be >= start")
    return lo, hi


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Run a hierarchical Definitely(Φ) monitoring scenario and "
            "export its telemetry (spans, metrics, events)."
        ),
    )
    scenario = parser.add_argument_group("scenario")
    scenario.add_argument("--nodes", type=int, default=20, help="system size (default 20)")
    scenario.add_argument(
        "--topology",
        choices=("geometric", "tree"),
        default="geometric",
        help="random geometric graph + BFS tree, or a regular d-ary tree",
    )
    scenario.add_argument(
        "--degree", type=int, default=2, help="fan-out for --topology tree (default 2)"
    )
    scenario.add_argument("--seed", type=int, default=0, help="master RNG seed")
    scenario.add_argument("--epochs", type=int, default=6, help="workload epochs (paper's p)")
    scenario.add_argument(
        "--sync-prob", type=float, default=0.8, help="P(an epoch is globally synchronized)"
    )
    scenario.add_argument(
        "--crash",
        type=_parse_crash,
        action="append",
        default=[],
        metavar="T:PID",
        help="crash PID at time T (repeatable; enables heartbeats + repair)",
    )
    scenario.add_argument(
        "--extra-time", type=float, default=0.0, help="simulated time past the workload drain"
    )
    out = parser.add_argument_group("exports")
    out.add_argument("--jsonl", metavar="PATH", help="write the event log as JSON lines")
    out.add_argument("--prom", metavar="PATH", help="write a Prometheus text exposition")
    out.add_argument(
        "--chrome", metavar="PATH", help="write a Chrome/Perfetto trace-event file"
    )
    view = parser.add_argument_group("console views")
    view.add_argument(
        "--window",
        type=_parse_window,
        metavar="T0:T1",
        help="print the event-log records in a simulated-time range",
    )
    view.add_argument(
        "--spans",
        action="store_true",
        help="print each alarm's full causal span tree",
    )
    sub = parser.add_subparsers(dest="view", metavar="VIEW")
    epochs = sub.add_parser(
        "epochs",
        help="run one traffic session and print its epoch lifecycle ledger",
        description=(
            "Run a deterministic virtual-time traffic session "
            "(repro.load.simload.run_traffic) and print the epoch "
            "lifecycle ledger: the accounting identities, queue "
            "watermarks and one row per stranded epoch naming the shed "
            "or abandoned offer that stranded it."
        ),
    )
    epochs.add_argument("--seed", type=int, default=1, help="master RNG seed")
    epochs.add_argument(
        "--rate", type=float, default=400.0, help="open loop: offers/second"
    )
    epochs.add_argument(
        "--total-offers", type=int, default=200, help="offers to issue before stopping"
    )
    epochs.add_argument(
        "--mode",
        choices=("open", "closed"),
        default="open",
        help="rate-driven or user-driven traffic",
    )
    epochs.add_argument(
        "--users", type=int, default=8, help="closed loop: virtual user count"
    )
    epochs.add_argument(
        "--max-outstanding",
        type=int,
        default=16,
        help="admission high watermark on outstanding offers",
    )
    epochs.add_argument(
        "--pending-timeout",
        type=float,
        default=2.0,
        help="abandon admitted offers undetected after this many seconds",
    )
    epochs.add_argument(
        "--degree", type=int, default=2, help="detector tree fan-out"
    )
    epochs.add_argument(
        "--height", type=int, default=3, help="detector tree height"
    )
    epochs.add_argument(
        "--json",
        action="store_true",
        help="dump the full ledger payload as JSON instead of the table",
    )
    return parser


def _build_tree(args):
    from ..topology.spanning_tree import SpanningTree

    if args.topology == "tree":
        if args.degree < 1:
            raise SystemExit("--degree must be >= 1")
        parent = {0: None}
        for node in range(1, args.nodes):
            parent[node] = (node - 1) // args.degree
        return SpanningTree(0, parent), None
    from ..topology.graphs import random_geometric_topology

    graph = random_geometric_topology(args.nodes, seed=args.seed)
    return SpanningTree.bfs(graph, root=0), graph


def _cmd_epochs(args) -> int:
    """The ``repro-trace epochs`` view: one virtual-time traffic run,
    rendered as the stranding ledger plus its accounting identities."""
    import json

    from ..load.simload import run_traffic
    from .cluster import render_epoch_table

    result = run_traffic(
        seed=args.seed,
        degree=args.degree,
        height=args.height,
        mode=args.mode,
        rate=args.rate,
        users=args.users,
        total_offers=args.total_offers,
        max_outstanding=args.max_outstanding,
        pending_timeout=args.pending_timeout,
        start_delay=0.0,
    )
    ledger = result["epoch_ledger"]
    if args.json:
        print(json.dumps(ledger, indent=2, sort_keys=True))
        return 0
    summary = result["summary"]
    spec = result["spec"]
    print(
        f"traffic: mode={spec['mode']} rate={spec['rate']:g} "
        f"offers={spec['total_offers']} nodes={spec['nodes']} "
        f"seed={spec['seed']}"
    )
    print(
        f"offers: offered={summary['offered']} admitted={summary['admitted']} "
        f"shed={summary['shed']} completed={summary['completed']} "
        f"abandoned={summary['abandoned']}"
        f"  (offered == admitted + shed: "
        f"{summary['offered'] == summary['admitted'] + summary['shed']})"
    )
    epochs = summary["epochs"]
    resolved = epochs["solved"] + epochs["stranded"] + epochs["in_flight"]
    print(
        "epoch identity: admitted_epochs == solved + stranded + in_flight: "
        f"{epochs['admitted_epochs'] == resolved}"
    )
    print(f"drained={result['drained']} reference_match={result['reference_match']}")
    print()
    print(render_epoch_table(ledger))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "view", None) == "epochs":
        return _cmd_epochs(args)
    if args.nodes < 1:
        raise SystemExit("--nodes must be >= 1")

    from ..experiments.harness import run_hierarchical
    from ..workload.generator import EpochConfig
    from .export import eventlog_to_jsonl, prometheus_text, write_chrome_trace

    tree, graph = _build_tree(args)
    known = set(tree.nodes)
    for _, pid in args.crash:
        if pid not in known:
            raise SystemExit(
                f"--crash: unknown node {pid} (nodes are 0..{max(known)})"
            )
    # Tree repair prunes crashed nodes in place; remember the initial shape.
    n_initial, height_initial = tree.n, tree.height
    config = EpochConfig(epochs=args.epochs, sync_prob=args.sync_prob)
    result = run_hierarchical(
        tree,
        graph=graph,
        seed=args.seed,
        config=config,
        failures=list(args.crash),
        extra_time=args.extra_time,
    )
    telemetry = result.sim.telemetry

    # ------------------------------------------------------------- summary
    lines: List[str] = []
    lines.append(
        f"n={n_initial} topology={args.topology} height={height_initial} "
        f"seed={args.seed} epochs={args.epochs} sim_time={result.sim.now:.1f}"
    )
    if result.crashed:
        crashed = ", ".join(f"P{pid}@{t:g}" for t, pid in sorted(args.crash))
        lines.append(f"crashes: {crashed}")
    lines.append(
        f"alarms: {len(result.detections)}"
        + "".join(
            f"\n  t={d.time:8.2f}  root=P{d.detector}  members={len(d.members)}"
            for d in result.detections
        )
    )
    percentiles = telemetry.latency_percentiles()
    if telemetry.detection_latency.count == 0:
        lines.append("detection latency: no alarms observed")
    else:
        rendered = " ".join(f"p{q:g}={value:.2f}" for q, value in percentiles)
        lines.append(
            f"detection latency: {rendered} "
            f"(sim time units, {telemetry.detection_latency.count} alarms)"
        )
    alpha = result.metrics.realized_alpha_by_level
    if alpha:
        rendered = "  ".join(
            f"L{level}={alpha[level]:.2f}" for level in sorted(alpha)
        )
        lines.append(f"realized α by level: {rendered}")
    lines.append(
        f"messages: control={result.metrics.control_messages} "
        f"app={result.metrics.app_messages}"
    )
    lines.append(f"spans: {len(telemetry.spans)}  events: {len(result.sim.log)}")
    print("\n".join(lines))

    # ------------------------------------------------------------- views
    if args.spans:
        for alarm in telemetry.spans.alarms():
            print()
            print(telemetry.spans.render_tree(alarm))
    if args.window is not None:
        lo, hi = args.window
        print()
        print(f"events in [{lo:g}, {hi:g}]:")
        for record in result.sim.log.between(lo, hi):
            print(f"  {record}")

    # ------------------------------------------------------------- exports
    if args.jsonl:
        count = eventlog_to_jsonl(result.sim.log, args.jsonl)
        print(f"wrote {count} events -> {args.jsonl}")
    if args.prom:
        text = prometheus_text(telemetry.registry)
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(telemetry.registry)} metrics -> {args.prom}")
    if args.chrome:
        levels = {pid: tree.level(pid) for pid in tree.nodes}
        count = write_chrome_trace(telemetry.spans, args.chrome, levels=levels)
        print(f"wrote {count} trace events -> {args.chrome}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
