"""The per-run telemetry bundle: one registry + one span tracker.

Every :class:`~repro.sim.kernel.Simulator` owns a :class:`Telemetry`
(``sim.telemetry``), so everything wired to the same simulation — the
network, the detector roles, the heartbeat monitors — shares one
registry and one span tracker, and a finished run can be exported as a
whole (see :mod:`repro.obs.export`).

This module must not import :mod:`repro.sim` — the kernel imports it.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from .registry import Histogram, MetricsRegistry
from .sampling import TraceSampler
from .spans import SpanTracker

__all__ = ["Telemetry", "LATENCY_BUCKETS"]

#: Detection-latency buckets in simulated time units.  One-hop delays
#: default to ~1 unit, so these cover single-hop reports through deep
#: trees with slow heartbeat-driven repairs.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, math.inf,
)


class Telemetry:
    """Everything one run records about itself.

    ``sampler`` and ``span_capacity`` pass straight to the
    :class:`~repro.obs.spans.SpanTracker`: simulations default to
    unsampled, unbounded tracing (full determinism-checked tables);
    long-running cluster nodes enable both.
    """

    def __init__(
        self,
        *,
        sampler: Optional[TraceSampler] = None,
        span_capacity: Optional[int] = None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.spans = SpanTracker(sampler=sampler, capacity=span_capacity)
        # Per-offer counters fold from the span tracker's pending queue
        # (see SpanTracker.on_flush); reading any metric must drain it.
        self.registry.add_flush_hook(self.spans.flush)

    @property
    def detection_latency(self) -> Histogram:
        """The headline histogram: simulated time from the last solution
        interval's open to the ``Definitely(Φ)`` announcement."""
        return self.registry.histogram(
            "repro_detection_latency",
            "Simulated time from last solution interval open to alarm.",
            LATENCY_BUCKETS,
        )

    def latency_percentiles(
        self, qs: Tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> List[Tuple[float, Optional[float]]]:
        """``[(q, value), …]`` over the detection-latency histogram."""
        histogram = self.detection_latency
        return [(q, histogram.percentile(q)) for q in qs]
