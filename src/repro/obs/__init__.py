"""Unified telemetry: metrics registry, causal spans, run exporters.

``repro.obs`` is the observability layer of the stack.  Every
:class:`~repro.sim.kernel.Simulator` owns a :class:`Telemetry`
(``sim.telemetry``) bundling a :class:`MetricsRegistry` and a
:class:`SpanTracker`; the network fabric, detector roles and heartbeat
monitors record into it, and :mod:`repro.obs.export` renders finished
runs as JSONL, Prometheus text or Chrome trace-event JSON.  The
``repro-trace`` CLI (:mod:`repro.obs.cli`) drives all of it from the
terminal.

See ``docs/observability.md`` for metric names, the span schema and
exporter formats, and ``docs/cluster-observability.md`` for the
cluster plane: :mod:`repro.obs.cluster` (scraping, registry merging,
cross-node trace stitching) and :mod:`repro.obs.flight` (the crash
flight recorder and postmortem tooling).
"""

from .cluster import (
    ClusterScrape,
    ClusterScraper,
    ClusterView,
    NodeScrape,
    TelemetryAggregator,
    scrape_local,
)
from .epochs import (
    EPOCH_DWELL_BUCKETS,
    EPOCH_STAGES,
    EPOCH_TERMINAL_STATES,
    STRANDING_CAUSES,
    EpochLedger,
    StrandingWatchdog,
)
from .export import (
    chrome_trace,
    eventlog_to_jsonl,
    prometheus_text,
    write_chrome_trace,
)
from .flight import (
    FlightRecorder,
    FlightSnapshot,
    load_snapshot,
    load_snapshots,
    postmortem,
    reconstruct_timeline,
    render_postmortem,
)
from .profile import ProfileSection, SamplingProfiler, profile_block
from .registry import (
    DEFAULT_BUCKETS,
    CounterMetric,
    CounterVec,
    Gauge,
    GaugeVec,
    Histogram,
    MetricsRegistry,
)
from .sampling import DEFAULT_SAMPLE_RATE, TraceSampler
from .spans import Span, SpanTracker, interval_key
from .telemetry import LATENCY_BUCKETS, Telemetry

__all__ = [
    "ClusterScrape",
    "ClusterScraper",
    "ClusterView",
    "CounterMetric",
    "CounterVec",
    "DEFAULT_BUCKETS",
    "DEFAULT_SAMPLE_RATE",
    "EPOCH_DWELL_BUCKETS",
    "EPOCH_STAGES",
    "EPOCH_TERMINAL_STATES",
    "EpochLedger",
    "FlightRecorder",
    "FlightSnapshot",
    "Gauge",
    "GaugeVec",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NodeScrape",
    "ProfileSection",
    "SamplingProfiler",
    "STRANDING_CAUSES",
    "Span",
    "SpanTracker",
    "StrandingWatchdog",
    "Telemetry",
    "TelemetryAggregator",
    "TraceSampler",
    "chrome_trace",
    "eventlog_to_jsonl",
    "interval_key",
    "profile_block",
    "load_snapshot",
    "load_snapshots",
    "postmortem",
    "prometheus_text",
    "reconstruct_timeline",
    "render_postmortem",
    "scrape_local",
    "write_chrome_trace",
]
