"""Unified telemetry: metrics registry, causal spans, run exporters.

``repro.obs`` is the observability layer of the stack.  Every
:class:`~repro.sim.kernel.Simulator` owns a :class:`Telemetry`
(``sim.telemetry``) bundling a :class:`MetricsRegistry` and a
:class:`SpanTracker`; the network fabric, detector roles and heartbeat
monitors record into it, and :mod:`repro.obs.export` renders finished
runs as JSONL, Prometheus text or Chrome trace-event JSON.  The
``repro-trace`` CLI (:mod:`repro.obs.cli`) drives all of it from the
terminal.

See ``docs/observability.md`` for metric names, the span schema and
exporter formats.
"""

from .export import (
    chrome_trace,
    eventlog_to_jsonl,
    prometheus_text,
    write_chrome_trace,
)
from .registry import (
    DEFAULT_BUCKETS,
    CounterMetric,
    CounterVec,
    Gauge,
    GaugeVec,
    Histogram,
    MetricsRegistry,
)
from .spans import Span, SpanTracker, interval_key
from .telemetry import LATENCY_BUCKETS, Telemetry

__all__ = [
    "CounterMetric",
    "CounterVec",
    "DEFAULT_BUCKETS",
    "Gauge",
    "GaugeVec",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "Span",
    "SpanTracker",
    "Telemetry",
    "chrome_trace",
    "eventlog_to_jsonl",
    "interval_key",
    "prometheus_text",
    "write_chrome_trace",
]
