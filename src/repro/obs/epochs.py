"""Epoch lifecycle ledger: per-epoch state tracked from offer to
solution-or-stranded.

``Definitely(Φ)`` semantics make the *epoch* — one interval per process
— the real unit of goodput: a solution needs a contribution from every
process, so admitting all-but-one member of an epoch buys nothing but
queue occupancy until ``pending_timeout`` reaps the survivors.  The
per-offer ``repro_load_*`` accounting cannot see that; past the
saturation knee it reports healthy admit rates while goodput collapses.
:class:`EpochLedger` closes the gap: every generated offer carries an
epoch id assigned at the source (``offer.index // stride``, a pure
function of the seed like the rest of the offer schedule), and the
ledger folds admission decisions, detection-queue hooks and completion
events into one per-epoch state machine

    offered → admitted → queued → matched → solved | stranded | expired

with dwell-time histograms per stage, a ``cause``-labelled stranding
counter (``shed-sibling`` / ``dead-target`` / ``pending-timeout``) and
per-process queue-age/depth watermarks.  Everything is online and
bounded: O(1) dict work per transition, detail retained only for
stranded epochs (capped), so the ledger stays cheap enough to leave on
under the PR 6 sampling regime.

Terminal states
---------------
* **solved** — every admitted member was consumed by a detection.
* **stranded** — at least one member was admitted (work was invested)
  and at least one member was shed or abandoned: the admitted siblings'
  queue time was wasted.  The ``cause`` label attributes the waste:
  ``dead-target`` when a member had no live target (or its target died
  under it), ``shed-sibling`` when admission shed a sibling, and
  ``pending-timeout`` when every member was admitted but the epoch
  still timed out.
* **expired** — every member was shed; nothing was invested, nothing
  was wasted.

The accounting identity the BENCH_load gate checks falls out by
construction: at drain, ``admitted_epochs == solved + stranded +
in_flight`` (with ``in_flight == 0``), next to the per-offer identity
``offered == admitted + shed``.

:class:`StrandingWatchdog` turns the ledger into an SLO check: when the
stranded fraction of admitted epochs crosses a
:class:`~repro.monitor.spec.SLOSpec` threshold it latches a breach the
cluster emits as ``slo_breach`` (tripping the flight recorder).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "EPOCH_DWELL_BUCKETS",
    "EPOCH_STAGES",
    "EPOCH_TERMINAL_STATES",
    "STRANDING_CAUSES",
    "EpochLedger",
    "StrandingWatchdog",
]

#: Wall/virtual-second buckets for per-stage dwell times — same scale
#: as the load sojourn histogram (milliseconds on loopback, tail for
#: saturated queues and pending-timeout reaps).
EPOCH_DWELL_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, math.inf,
)

#: Live lifecycle stages, in rank order (an epoch only moves forward).
EPOCH_STAGES: Tuple[str, ...] = ("offered", "admitted", "queued", "matched")

#: Terminal states an epoch resolves into.
EPOCH_TERMINAL_STATES: Tuple[str, ...] = ("solved", "stranded", "expired")

#: ``cause`` label values of ``repro_epoch_stranded_total``.
STRANDING_CAUSES: Tuple[str, ...] = (
    "shed-sibling", "dead-target", "pending-timeout",
)

#: Shed reasons that mean "the member's target was gone", not "the
#: gate was full" — they attribute a stranding to ``dead-target``.
_DEAD_TARGET_REASONS = frozenset({"no-target", "dead-target"})

#: Stranded epochs retained with full member detail in :meth:`to_dict`
#: (the rest stay counted in the aggregates; a 100k-epoch sweep must
#: not ship a 100k-row scrape payload).
MAX_STRANDED_DETAIL = 64

Key = Tuple[int, int]  # (owner pid, interval seq)

_STAGE_RANK = {stage: rank for rank, stage in enumerate(EPOCH_STAGES)}
_TERMINAL_RANK = len(EPOCH_STAGES)


class _Epoch:
    """One epoch's ledger row (not exported; JSON forms are dicts)."""

    __slots__ = (
        "epoch", "expected", "offered", "admitted", "shed",
        "completed", "abandoned", "stage", "stage_since", "opened_at",
        "state", "cause", "sheds", "abandons",
    )

    def __init__(self, epoch: int, expected: int, now: float) -> None:
        self.epoch = epoch
        self.expected = expected
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.abandoned = 0
        self.stage = "offered"
        self.stage_since = now
        self.opened_at = now
        self.state: Optional[str] = None  # terminal state once resolved
        self.cause: Optional[str] = None
        #: ``(reason, target)`` per shed member — the stranding culprit
        #: list (*which* process's shed offer stranded the epoch).
        self.sheds: List[Tuple[str, Optional[int]]] = []
        #: ``(key, reason, target)`` per abandoned member.
        self.abandons: List[Tuple[Key, str, int]] = []

    @property
    def resolved_members(self) -> int:
        return self.shed + self.completed + self.abandoned

    def detail(self) -> dict:
        """JSON row for the stranding report."""
        return {
            "epoch": self.epoch,
            "state": self.state or self.stage,
            "cause": self.cause,
            "expected": self.expected,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": [
                {"reason": reason, "target": target}
                for reason, target in self.sheds
            ],
            "abandoned": [
                {"owner": key[0], "seq": key[1], "reason": reason, "target": target}
                for key, reason, target in self.abandons
            ],
        }


class EpochLedger:
    """Track every epoch from first offer to its terminal state.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.registry.MetricsRegistry` receiving the
        ``repro_epoch_*`` family.
    stride:
        Members per epoch — the process count.  Offer *i* belongs to
        epoch ``i // stride``, assigned at the generator so the id is
        a pure function of the seed (identical across sharded workers
        and the sim↔socket scopes).
    total_offers:
        The run's offer budget; fixes the final (possibly partial)
        epoch's expected member count.
    """

    def __init__(self, registry, *, stride: int, total_offers: int) -> None:
        if stride < 1:
            raise ValueError("epoch stride must be >= 1")
        if total_offers < 1:
            raise ValueError("total_offers must be >= 1")
        self.stride = stride
        self.total_offers = total_offers
        self._epochs: Dict[int, _Epoch] = {}
        self._key_epoch: Dict[Key, int] = {}
        self._seen_offers: set = set()
        # (key -> (target, admitted_at)) for admitted-unresolved members;
        # the watermark family and expiry classification read it.
        self._pending: Dict[Key, Tuple[int, float]] = {}
        self._pending_by_target: Dict[int, int] = {}

        self._g_state = registry.gauge_vec(
            "repro_epoch_state",
            "Epochs currently in each lifecycle state (terminal states "
            "accumulate).",
            ("state",),
        )
        for state in (*EPOCH_STAGES, *EPOCH_TERMINAL_STATES):
            self._g_state.setdefault(state, 0)
        self._c_stranded = registry.counter_vec(
            "repro_epoch_stranded_total",
            "Epochs that wasted admitted work, by stranding cause.",
            ("cause",),
        )
        self._c_offered = registry.counter(
            "repro_epoch_offered_total", "Epochs that issued at least one offer."
        )
        self._c_solved = registry.counter(
            "repro_epoch_solved_total",
            "Epochs whose every admitted member completed in a detection.",
        )
        self._c_expired = registry.counter(
            "repro_epoch_expired_total",
            "Epochs shed whole (no member admitted, nothing wasted).",
        )
        self._dwell = {
            stage: registry.histogram(
                f"repro_epoch_dwell_seconds_{stage}",
                f"Seconds epochs spent in the {stage!r} stage before "
                "advancing.",
                EPOCH_DWELL_BUCKETS,
            )
            for stage in EPOCH_STAGES
        }
        self._c_queue_events = registry.counter_vec(
            "repro_epoch_queue_events_total",
            "Detection-queue lifecycle events observed for epoch members "
            "(enqueue / prune_solution / prune_incompat).",
            ("event",),
        )
        self._g_depth = registry.gauge_vec(
            "repro_epoch_queue_depth_watermark",
            "High watermark of epoch members pending per target process.",
            ("target",),
        )
        self._g_age = registry.gauge_vec(
            "repro_epoch_queue_age_watermark_seconds",
            "High watermark of the oldest pending epoch member's age per "
            "target process.",
            ("target",),
        )

    # ------------------------------------------------------------------
    # id assignment helpers
    # ------------------------------------------------------------------
    def epoch_for_offer(self, index: int) -> int:
        return index // self.stride

    def expected_members(self, epoch: int) -> int:
        return max(0, min(self.stride, self.total_offers - epoch * self.stride))

    def epoch_of(self, key: Key) -> Optional[int]:
        """The epoch an admitted interval key belongs to (``None`` for
        keys the ledger never admitted) — what rides the frame ``_meta``
        sidecar next to span coordinates."""
        return self._key_epoch.get(key)

    # ------------------------------------------------------------------
    # transitions (fed by the load session)
    # ------------------------------------------------------------------
    def _get(self, epoch: int, now: float) -> _Epoch:
        record = self._epochs.get(epoch)
        if record is None:
            record = _Epoch(epoch, self.expected_members(epoch), now)
            self._epochs[epoch] = record
            self._g_state["offered"] = self._g_state.get("offered", 0) + 1
            self._c_offered.inc()
        return record

    def _advance(self, record: _Epoch, stage: str, now: float) -> None:
        """Move a live epoch forward (stages are ranked; regressions are
        ignored — a second member enqueueing must not pull the epoch
        back from ``matched``)."""
        if record.state is not None:
            return
        if _STAGE_RANK[stage] <= _STAGE_RANK[record.stage]:
            return
        self._leave_stage(record, now)
        self._g_state[stage] = self._g_state.get(stage, 0) + 1
        record.stage = stage
        record.stage_since = now

    def _leave_stage(self, record: _Epoch, now: float) -> None:
        self._dwell[record.stage].observe(max(0.0, now - record.stage_since))
        self._g_state[record.stage] = self._g_state.get(record.stage, 0) - 1

    def note_offered(self, epoch: int, index: int, now: float) -> None:
        """A generator issued member *index*; idempotent per index (a
        deferred offer re-enters intake under the same index)."""
        if index in self._seen_offers:
            return
        self._seen_offers.add(index)
        record = self._get(epoch, now)
        record.offered += 1
        # A deferred retry can be the last member to *offer* after its
        # siblings already resolved — the epoch may complete right here.
        self._maybe_resolve(record, now)

    def note_shed(
        self, epoch: int, index: int, reason: str, now: float,
        target: Optional[int] = None,
    ) -> None:
        record = self._get(epoch, now)
        record.shed += 1
        record.sheds.append((reason, target))
        self._maybe_resolve(record, now)

    def note_admitted(
        self, epoch: int, index: int, key: Key, target: int, now: float
    ) -> None:
        record = self._get(epoch, now)
        record.admitted += 1
        self._key_epoch[key] = epoch
        self._pending[key] = (target, now)
        depth = self._pending_by_target.get(target, 0) + 1
        self._pending_by_target[target] = depth
        if depth > self._g_depth.get(target, 0):
            self._g_depth[target] = depth
        self._advance(record, "admitted", now)

    def note_completed(self, key: Key, now: float) -> Optional[int]:
        """A detection consumed *key*; returns its epoch (``None`` if
        the key was never admitted or already resolved)."""
        entry = self._pending.pop(key, None)
        if entry is None:
            return None
        target, _ = entry
        self._pending_by_target[target] -= 1
        epoch = self._key_epoch[key]
        record = self._epochs[epoch]
        record.completed += 1
        self._advance(record, "matched", now)
        self._maybe_resolve(record, now)
        return epoch

    def note_abandoned(self, key: Key, reason: str, now: float) -> None:
        entry = self._pending.pop(key, None)
        if entry is None:
            return
        target, _ = entry
        self._pending_by_target[target] -= 1
        epoch = self._key_epoch[key]
        record = self._epochs[epoch]
        record.abandoned += 1
        record.abandons.append((key, reason, target))
        self._maybe_resolve(record, now)

    def expiry_cause(self, key: Key, *, target_alive: bool = True) -> str:
        """Why a pending member is about to die — the expiry-reason
        label :class:`~repro.load.latency.LatencyStore` records:
        ``dead-target`` when its target is gone, ``shed-sibling`` when
        a sibling of its epoch was shed, else ``pending-timeout``."""
        if not target_alive:
            return "dead-target"
        epoch = self._key_epoch.get(key)
        if epoch is not None:
            record = self._epochs.get(epoch)
            if record is not None and record.sheds:
                if any(r in _DEAD_TARGET_REASONS for r, _ in record.sheds):
                    return "dead-target"
                return "shed-sibling"
        return "pending-timeout"

    # ------------------------------------------------------------------
    # queue hooks (fed by detection cores)
    # ------------------------------------------------------------------
    def core_observer(self, clock, node: Optional[int] = None) -> Callable:
        """An ``observer(event, key, interval)`` compatible with
        :class:`~repro.detect.core.RepeatedDetectionCore` — chain it
        (:meth:`~repro.detect.core.RepeatedDetectionCore.add_observer`)
        onto the core(s) the admitted intervals flow through.

        Only *concrete* members are folded: with ``node`` set (one
        hierarchical node's core) events are accepted for intervals the
        node itself produced (``interval.owner == node`` — child
        aggregates carry the child's owner, so they never collide);
        without it (the centralized sink, every queue concrete) the
        queue key must equal the owner.
        """
        pending = self._key_epoch

        def observe(event: str, key, interval) -> None:
            owner = interval.owner
            if node is not None:
                if owner != node:
                    return
            elif key != owner:
                return
            epoch = pending.get((owner, interval.seq))
            if epoch is None:
                return
            self._c_queue_events[event] += 1
            record = self._epochs[epoch]
            now = clock.now
            if event == "enqueue":
                self._advance(record, "queued", now)
            elif event == "prune_solution":
                self._advance(record, "matched", now)

        return observe

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _maybe_resolve(self, record: _Epoch, now: float) -> None:
        if record.state is not None:
            return
        if record.offered < record.expected:
            return
        if record.resolved_members < record.expected:
            return
        if record.admitted == 0:
            state, cause = "expired", None
            self._c_expired.inc()
        elif record.completed == record.admitted:
            state, cause = "solved", None
            self._c_solved.inc()
        else:
            state = "stranded"
            cause = self._stranding_cause(record)
            self._c_stranded[cause] += 1
        self._leave_stage(record, now)
        self._g_state[state] = self._g_state.get(state, 0) + 1
        record.state = state
        record.cause = cause

    @staticmethod
    def _stranding_cause(record: _Epoch) -> str:
        reasons = [r for r, _ in record.sheds]
        reasons.extend(r for _, r, _ in record.abandons)
        if any(r in _DEAD_TARGET_REASONS for r in reasons):
            return "dead-target"
        if record.sheds:
            return "shed-sibling"
        return "pending-timeout"

    # ------------------------------------------------------------------
    # watermarks
    # ------------------------------------------------------------------
    def tick(self, now: float) -> None:
        """Refresh the per-target queue-age watermark from the pending
        map (called from the session's sweep; depth watermarks update
        inline at admit time)."""
        oldest: Dict[int, float] = {}
        for target, admitted_at in self._pending.values():
            age = now - admitted_at
            if age > oldest.get(target, 0.0):
                oldest[target] = age
        for target, age in oldest.items():
            if age > self._g_age.get(target, 0.0):
                self._g_age[target] = round(age, 6)

    def watermarks(self) -> Dict[int, dict]:
        return {
            target: {
                "depth": int(self._g_depth.get(target, 0)),
                "age_s": float(self._g_age.get(target, 0.0)),
            }
            for target in sorted(set(self._g_depth) | set(self._g_age))
        }

    # ------------------------------------------------------------------
    # introspection / wire forms
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Admitted epochs not yet terminal."""
        return sum(
            1
            for record in self._epochs.values()
            if record.state is None and record.admitted > 0
        )

    def stranded_by_cause(self) -> Dict[str, int]:
        return {
            str(cause): int(count)
            for cause, count in sorted(self._c_stranded.items())
        }

    def stranded_details(self, limit: int = MAX_STRANDED_DETAIL) -> List[dict]:
        """The stranding report rows, oldest epoch first, detail capped
        at *limit* (the summary counts always cover every epoch)."""
        rows = [
            record.detail()
            for _, record in sorted(self._epochs.items())
            if record.state == "stranded"
        ]
        return rows[:limit]

    def summary(self) -> dict:
        """The run summary's ``epochs`` block — the ledger line that
        explains the goodput cliff.  ``admitted_epochs == solved +
        stranded + in_flight`` holds at every instant; ``in_flight``
        is 0 once the session drains."""
        states = {
            state: sum(
                1 for r in self._epochs.values()
                if (r.state or r.stage) == state
            )
            for state in (*EPOCH_STAGES, *EPOCH_TERMINAL_STATES)
        }
        admitted_epochs = sum(
            1 for r in self._epochs.values() if r.admitted > 0
        )
        return {
            "stride": self.stride,
            "total": math.ceil(self.total_offers / self.stride),
            "offered_epochs": len(self._epochs),
            "admitted_epochs": admitted_epochs,
            "solved": states["solved"],
            "stranded": states["stranded"],
            "expired": states["expired"],
            "in_flight": self.in_flight,
            "stranded_by_cause": self.stranded_by_cause(),
            "states": states,
            "watermarks": {
                str(target): marks
                for target, marks in self.watermarks().items()
            },
        }

    def to_dict(self) -> dict:
        """JSON wire form for the cluster admin protocol (the ``epochs``
        scrape payload :mod:`repro.obs.cluster` folds)."""
        return {
            "summary": self.summary(),
            "stranded_detail": self.stranded_details(),
            "stranded_detail_truncated": max(
                0,
                sum(1 for r in self._epochs.values() if r.state == "stranded")
                - MAX_STRANDED_DETAIL,
            ),
        }


class StrandingWatchdog:
    """Latch when the stranded fraction of admitted epochs crosses a
    threshold.

    The cluster's SLO loop calls :meth:`check` periodically; the first
    crossing returns the breach payload (value = stranded/admitted
    epochs) and latches — stranding totals are monotone, so repeats
    would only restate the same fact.  ``min_admitted`` suppresses the
    check while the sample is too small to mean anything (one stranded
    epoch out of two is startup noise, not an SLO event).
    """

    def __init__(
        self, ledger: EpochLedger, threshold: float, *, min_admitted: int = 4
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"stranded-epoch-rate threshold must be in (0, 1], got {threshold}"
            )
        self.ledger = ledger
        self.threshold = float(threshold)
        self.min_admitted = min_admitted
        self.latched = False

    def check(self) -> Optional[dict]:
        if self.latched:
            return None
        summary = self.ledger.summary()
        admitted = summary["admitted_epochs"]
        if admitted < self.min_admitted:
            return None
        rate = summary["stranded"] / admitted
        if rate <= self.threshold:
            return None
        self.latched = True
        return {
            "value": round(rate, 6),
            "threshold": self.threshold,
            "stranded": summary["stranded"],
            "admitted_epochs": admitted,
            "by_cause": summary["stranded_by_cause"],
        }
