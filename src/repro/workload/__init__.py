"""Workload generation: epoch waves, random chatter, predicate models,
and the paper's scripted figure scenarios."""

from .distributions import ARRIVAL_KINDS, InterarrivalSampler, exponential_gap
from .generator import EpochConfig, EpochProcess, EpochWorkload, RandomWorkload
from .predicates import PeriodicPhases, RandomToggle, ThresholdSensor
from .regional import RegionalConfig, RegionalProcess, RegionalWorkload
from .scenarios import (
    ScriptedExecution,
    figure1_nested_execution,
    figure1_staggered_execution,
    figure2_execution,
    figure2_tree,
    figure3_execution,
)

__all__ = [
    "ARRIVAL_KINDS",
    "EpochConfig",
    "EpochProcess",
    "EpochWorkload",
    "InterarrivalSampler",
    "PeriodicPhases",
    "RandomToggle",
    "RandomWorkload",
    "RegionalConfig",
    "RegionalProcess",
    "RegionalWorkload",
    "ScriptedExecution",
    "ThresholdSensor",
    "exponential_gap",
    "figure1_nested_execution",
    "figure1_staggered_execution",
    "figure2_execution",
    "figure2_tree",
    "figure3_execution",
]
