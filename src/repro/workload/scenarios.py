"""Scripted executions, including the paper's illustrative figures.

:class:`ScriptedExecution` builds an execution event by event —
maintaining real vector clocks and recording a real
:class:`~repro.sim.trace.ExecutionTrace` — without the discrete-event
simulator.  The paper's Figures 1–3 are reproduced as exact scenarios;
tests assert the interval relations the paper derives from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..clocks import Timestamp, VectorClock
from ..intervals import Interval
from ..sim.trace import EventKind, ExecutionTrace

__all__ = [
    "ScriptedExecution",
    "figure1_nested_execution",
    "figure1_staggered_execution",
    "figure2_execution",
    "figure2_tree",
    "figure3_execution",
]


class ScriptedExecution:
    """Deterministic hand-built execution with correct vector clocks.

    Messages are identified by string tags; a ``recv`` consumes the
    timestamp stored by the matching ``send`` (so causality is exactly
    what the script says, with no simulated delays involved).
    """

    def __init__(self, n: int, initial_predicate: Optional[Sequence[bool]] = None):
        self.n = n
        self.trace = ExecutionTrace(n, initial_predicate)
        self.clocks = [VectorClock(n, i) for i in range(n)]
        self.predicate = list(self.trace.initial_predicate)
        self._in_flight: Dict[str, Timestamp] = {}

    # ------------------------------------------------------------------
    def internal(self, p: int) -> Timestamp:
        ts = self.clocks[p].tick()
        self.trace.record(
            p, ts, EventKind.INTERNAL, self.predicate[p], time=float(self.trace._order)
        )
        return ts

    def set_pred(self, p: int, value: bool) -> Timestamp:
        """Flip the local predicate with an internal event (the event
        carries the new value, matching
        :meth:`repro.sim.process.MonitoredProcess.set_predicate`)."""
        self.predicate[p] = bool(value)
        return self.internal(p)

    def send(self, p: int, tag: str) -> Timestamp:
        if tag in self._in_flight:
            raise ValueError(f"message tag {tag!r} already in flight")
        ts = self.clocks[p].send()
        self.trace.record(
            p, ts, EventKind.SEND, self.predicate[p], time=float(self.trace._order)
        )
        self._in_flight[tag] = ts
        return ts

    def recv(self, p: int, tag: str) -> Timestamp:
        piggyback = self._in_flight.pop(tag)
        ts = self.clocks[p].receive(piggyback)
        self.trace.record(
            p, ts, EventKind.RECV, self.predicate[p], time=float(self.trace._order)
        )
        return ts

    # ------------------------------------------------------------------
    def intervals(self) -> Dict[int, List[Interval]]:
        return self.trace.all_intervals()


# ----------------------------------------------------------------------
# Figure 1: a Definitely(Φ) solution set need not be nested
# ----------------------------------------------------------------------
def figure1_staggered_execution() -> ScriptedExecution:
    """Two processes whose (unique) ``Definitely`` solution set is
    *staggered* — ``min(x1) ≺ min(x2)`` and ``max(x1) ≺ max(x2)`` —
    violating the nesting assumption [7]'s hierarchical sketch relies on
    (paper Section III-A, point 1)."""
    ex = ScriptedExecution(2)
    ex.set_pred(0, True)  # min(x1)
    ex.send(0, "m1")
    ex.recv(1, "m1")
    ex.set_pred(1, True)  # min(x2): causally after min(x1)
    ex.send(1, "m2")
    ex.recv(0, "m2")  # inside x1: min(x2) ≺ max(x1)
    ex.send(0, "m3")  # max(x1)
    ex.set_pred(0, False)  # x1 complete
    ex.recv(1, "m3")  # inside x2: max(x1) ≺ this event ≤ max(x2)
    ex.set_pred(1, False)  # x2 complete
    return ex


def figure1_nested_execution() -> ScriptedExecution:
    """The *nested* configuration Figure 1 actually draws — the special
    case [7]'s hierarchical sketch assumed:
    ``min(x1) ≺ min(x2)`` and ``max(x2) ≺ max(x1)`` (x2 inside x1)."""
    ex = ScriptedExecution(2)
    ex.set_pred(0, True)  # min(x1)
    ex.send(0, "m1")
    ex.recv(1, "m1")
    ex.set_pred(1, True)  # min(x2): after min(x1)
    ex.send(1, "m2")  # max(x2)
    ex.set_pred(1, False)  # x2 complete (inside x1)
    ex.recv(0, "m2")  # inside x1: max(x2) ≺ max(x1)
    ex.internal(0)  # max(x1)
    ex.set_pred(0, False)
    return ex


# ----------------------------------------------------------------------
# Figure 2: repeated detection is necessary; P3's failure is survivable
# ----------------------------------------------------------------------
def figure2_tree() -> dict:
    """The Figure 2(a) spanning tree, with the paper's P1…P4 mapped to
    ids 0…3: root P3 (=2) has children P2 (=1) and P4 (=3); P2 has
    child P1 (=0)."""
    return {"root": 2, "parent": {2: None, 1: 2, 3: 2, 0: 1}}


def figure2_execution() -> ScriptedExecution:
    """The Figure 2(b) timing diagram.

    Intervals (paper names → here): ``x1`` at P1(=0), ``x2`` then
    ``x3`` at P2(=1), ``x4`` at P3(=2), ``x5`` at P4(=3), such that

    * ``overlap({x1, x2})`` — first solution at P2,
    * ``overlap({x1, x3})`` — second solution at P2 (repeated detection),
    * ``overlap({x1, x2, x4, x5})`` is FALSE (x2 ends too early),
    * ``overlap({x1, x3, x4, x5})`` is TRUE — the global detection that
      a one-shot algorithm at P2 would make impossible.
    """
    ex = ScriptedExecution(4)
    # --- x1 begins at P1 and stays true for the whole run
    ex.set_pred(0, True)  # min(x1)
    ex.send(0, "a1")
    # --- x2 at P2: overlaps x1 in both directions, ends early
    ex.set_pred(1, True)  # min(x2)
    ex.recv(1, "a1")  # min(x1) ≺ this ≤ max(x2)
    ex.send(1, "b1")  # max(x2)
    ex.set_pred(1, False)  # x2 complete
    ex.recv(0, "b1")  # inside x1: min(x2) ≺ max(x1)
    # --- x3 at P2, x4 at P3, x5 at P4 begin
    ex.set_pred(1, True)  # min(x3)
    ex.set_pred(2, True)  # min(x4)
    ex.set_pred(3, True)  # min(x5)
    # --- gather at P3 (the hub): everyone's min flows into x4
    ex.send(0, "g1")
    ex.send(1, "g2")
    ex.send(3, "g4")
    ex.recv(2, "g1")
    ex.recv(2, "g2")
    ex.recv(2, "g4")
    # --- broadcast from P3: x4's knowledge flows into everyone's max
    ex.send(2, "h1")
    ex.send(2, "h2")
    ex.send(2, "h4")  # max(x4)
    ex.set_pred(2, False)  # x4 complete
    ex.recv(0, "h1")  # max(x1)
    ex.set_pred(0, False)  # x1 complete
    ex.recv(1, "h2")  # max(x3)
    ex.set_pred(1, False)  # x3 complete
    ex.recv(3, "h4")  # max(x5)
    ex.set_pred(3, False)  # x5 complete
    return ex


# ----------------------------------------------------------------------
# Figure 3: aggregation of two solution sets X and Y
# ----------------------------------------------------------------------
def figure3_execution() -> ScriptedExecution:
    """Four processes where ``X = {x1@P1, x2@P3}`` and
    ``Y = {y1@P2, y2@P4}`` each satisfy overlap, and so does ``X ∪ Y`` —
    the Figure 3 setting for the ``⊓`` construction (Eq. 5–6).

    Built with a gather/broadcast through P1: every interval's start
    causally precedes every interval's end, so *all* pairs overlap and
    any bipartition into X and Y exercises Theorem 1's ⇒ direction.
    """
    ex = ScriptedExecution(4)
    for p in range(4):
        ex.set_pred(p, True)
    for p in (1, 2, 3):
        ex.send(p, f"g{p}")
    for p in (1, 2, 3):
        ex.recv(0, f"g{p}")
    for p in (1, 2, 3):
        ex.send(0, f"h{p}")
    ex.set_pred(0, False)
    for p in (1, 2, 3):
        ex.recv(p, f"h{p}")
        ex.set_pred(p, False)
    return ex
