"""Regional workload — group-local predicate episodes.

Section I motivates hierarchical detection with "finer-grained
monitoring in those large-scale networks where grouping is established
and the monitoring happens at the group level".  This workload makes
that concrete: each episode picks one spanning-tree *region* (the
subtree under a random interior node) and runs a causality wave only
inside it — every member's interval overlaps every other member's, but
processes outside the region stay silent.

Consequences the tests and experiments verify:

* the region's root detects the episode (a partial predicate over its
  group) and reports the aggregate upward;
* the global root detects *nothing* for region-local episodes (some
  global queue stays empty), yet the monitoring system still produced
  actionable group alarms — no central component ever saw the raw
  intervals;
* episodes that pick the global root's subtree are global occurrences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..sim.kernel import Simulator
from ..topology.spanning_tree import SpanningTree
from .generator import EpochProcess

__all__ = ["RegionalConfig", "RegionalWorkload"]


@dataclass
class RegionalConfig:
    episodes: int = 12
    episode_length: Optional[float] = None
    start_jitter: float = 0.4
    drain_time: float = 60.0
    # Probability an episode spans the whole network instead of a region.
    global_prob: float = 0.2

    def resolved_episode_length(self, height: int, max_delay: float) -> float:
        if self.episode_length is not None:
            return self.episode_length
        return (2.0 * height + 4.0) * max_delay + self.start_jitter + 2.0


class RegionalWorkload:
    """Episode scheduler over subtree regions.

    Reuses :class:`~repro.workload.generator.EpochProcess`'s wave
    protocol, but scoped: for a region rooted at ``r``, the wave runs on
    the *subtree* of ``r`` (non-members never raise their predicate, so
    their queues — and any ancestor's detection — stay untouched).
    """

    def __init__(
        self,
        sim: Simulator,
        processes: Dict[int, "RegionalProcess"],
        tree: SpanningTree,
        config: RegionalConfig,
        *,
        max_delay: float = 1.5,
    ) -> None:
        self.sim = sim
        self.processes = processes
        self.tree = tree
        self.config = config
        self.episode_length = config.resolved_episode_length(tree.height, max_delay)
        self.regions_by_episode: List[int] = []

    @property
    def end_time(self) -> float:
        return self.config.episodes * self.episode_length + self.config.drain_time

    def _interior_nodes(self) -> List[int]:
        return [pid for pid in self.tree.nodes if not self.tree.is_leaf(pid)]

    def install(self) -> None:
        rng = self.sim.rng("workload")
        interiors = self._interior_nodes() or [self.tree.root]
        for episode in range(self.config.episodes):
            base = episode * self.episode_length
            if rng.random() < self.config.global_prob:
                region_root = self.tree.root
            else:
                region_root = int(rng.choice(interiors))
            self.regions_by_episode.append(region_root)
            members = set(self.tree.subtree_nodes(region_root))
            for pid in sorted(members):
                process = self.processes[pid]
                jitter = float(rng.uniform(0, self.config.start_jitter))
                self.sim.schedule_at(
                    base + jitter,
                    lambda p=process, e=episode, m=frozenset(members), r=region_root:
                        p.begin_regional_epoch(e, m, r),
                )
        self.sim.schedule_at(
            self.config.episodes * self.episode_length + self.config.drain_time / 2,
            self._finish_all,
        )

    def _finish_all(self) -> None:
        for process in self.processes.values():
            if process.alive:
                process.finish()


class RegionalProcess(EpochProcess):
    """EpochProcess whose waves are scoped to an episode's region."""

    def __init__(self, pid, sim, network, trace, role, tree):
        super().__init__(pid, sim, network, trace, role, tree)
        self._region: frozenset = frozenset()
        self._region_root: Optional[int] = None

    def begin_regional_epoch(self, epoch: int, members: frozenset, region_root: int) -> None:
        self._region = members
        self._region_root = region_root
        self.begin_epoch(epoch, defector=False)

    # Scope the wave to the region: children outside it do not report,
    # and the region root acts as the wave's "root".
    def _children(self):
        return [c for c in self.tree.children(self.pid) if c in self._region]

    def _maybe_send_up(self, epoch: int) -> None:
        if epoch not in self._began or epoch in self._up_sent:
            return
        if self._up_count.get(epoch, 0) < len(self._children()):
            return
        self._up_sent.add(epoch)
        if self.pid == self._region_root:
            for child in self._children():
                self.send_app(child, ("down", epoch))
            self._on_wave_down(epoch)
        else:
            parent = self.tree.parent_of(self.pid)
            if parent is not None:
                self.send_app(parent, ("up", epoch))
