"""Local-predicate signal models.

The detection algorithms are agnostic to *why* a local predicate
toggles; these models give the examples realistic sources:

* :class:`PeriodicPhases` — duty-cycled activity (e.g. a sensor's
  sampling window), with jitter;
* :class:`RandomToggle` — memoryless on/off alternation;
* :class:`ThresholdSensor` — a bounded random walk crossed against a
  threshold, the classic "temperature above limit" WSN predicate the
  paper's introduction motivates.

Each model is an iterator of ``(duration, value)`` phases, consumed by
drivers that schedule ``set_predicate`` flips.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["PeriodicPhases", "RandomToggle", "ThresholdSensor"]


class PeriodicPhases:
    """Alternating on/off phases of fixed nominal length plus jitter."""

    def __init__(
        self,
        on_duration: float,
        off_duration: float,
        jitter: float = 0.0,
        *,
        start_on: bool = False,
    ) -> None:
        if on_duration <= 0 or off_duration <= 0:
            raise ValueError("durations must be positive")
        self.on_duration = on_duration
        self.off_duration = off_duration
        self.jitter = jitter
        self.start_on = start_on

    def phases(self, rng: np.random.Generator) -> Iterator[Tuple[float, bool]]:
        value = self.start_on
        while True:
            nominal = self.on_duration if value else self.off_duration
            duration = max(1e-6, nominal + float(rng.uniform(-1, 1)) * self.jitter)
            yield duration, value
            value = not value


class RandomToggle:
    """Exponentially distributed on/off phases."""

    def __init__(self, mean_on: float, mean_off: float, *, start_on: bool = False):
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError("means must be positive")
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.start_on = start_on

    def phases(self, rng: np.random.Generator) -> Iterator[Tuple[float, bool]]:
        value = self.start_on
        while True:
            mean = self.mean_on if value else self.mean_off
            yield float(rng.exponential(mean)), value
            value = not value


class ThresholdSensor:
    """A sampled random-walk reading compared against a threshold.

    The predicate is "reading > threshold".  Produces one phase per
    threshold crossing; consecutive samples are ``sample_period``
    apart, and the reading follows a mean-reverting walk so crossings
    recur indefinitely.
    """

    def __init__(
        self,
        threshold: float = 0.7,
        sample_period: float = 1.0,
        *,
        step: float = 0.15,
        reversion: float = 0.1,
        initial: float = 0.5,
    ) -> None:
        self.threshold = threshold
        self.sample_period = sample_period
        self.step = step
        self.reversion = reversion
        self.initial = initial

    def readings(self, rng: np.random.Generator) -> Iterator[float]:
        x = self.initial
        while True:
            yield x
            x += float(rng.normal(0, self.step)) - self.reversion * (x - 0.5)

    def phases(self, rng: np.random.Generator) -> Iterator[Tuple[float, bool]]:
        readings = self.readings(rng)
        value = next(readings) > self.threshold
        duration = self.sample_period
        for reading in readings:
            above = reading > self.threshold
            if above == value:
                duration += self.sample_period
            else:
                yield duration, value
                value = above
                duration = self.sample_period
