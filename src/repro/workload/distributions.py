"""Seeded gap distributions shared by the sim workload and the traffic
plane.

Every interarrival / holding-time draw in the repository funnels through
this module so the simulator's :class:`~repro.workload.generator.RandomWorkload`
and the socket-plane generators in :mod:`repro.load` cannot drift: both
worlds sample the same named distributions from the same
``numpy.random.Generator`` streams, one draw per gap, in schedule order.

Three arrival models (the ``kind`` strings the CLI and
:class:`repro.load.LoadSpec` accept):

* ``"poisson"`` — exponential gaps (memoryless; the open-loop default).
* ``"uniform"`` — gaps uniform on ``[0.5·mean, 1.5·mean]``: the same
  average rate with bounded jitter and no heavy tail.
* ``"bursty"`` — a two-phase modulated process: a persistent *burst*
  phase emits at ``burstiness``× the base rate, the *idle* phase is
  stretched so the long-run mean gap stays ``mean``.  Phase residency is
  a small Markov chain (stationary burst fraction ``burst_frac``), which
  produces the clumped arrivals open-loop saturation studies need.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["ARRIVAL_KINDS", "InterarrivalSampler", "exponential_gap"]

#: Arrival models understood by :class:`InterarrivalSampler` (and by the
#: ``--load-arrival`` CLI knob).
ARRIVAL_KINDS: Tuple[str, ...] = ("poisson", "uniform", "bursty")


def exponential_gap(rng: np.random.Generator, mean: float) -> float:
    """One exponential gap with the given *mean* — exactly one draw from
    *rng*, so callers replacing an inline ``rng.exponential(mean)`` keep
    a byte-identical draw sequence."""
    return float(rng.exponential(mean))


class InterarrivalSampler:
    """Stateful gap sampler for one arrival stream.

    One instance owns one stream's phase state (only ``"bursty"`` has
    any); the ``numpy`` generator is passed per draw so a caller can
    route different streams through differently named, deterministic
    rng streams (``clock.rng(name)``).
    """

    #: Burst-phase persistence per draw; with stationary fraction ``f``
    #: the idle→burst entry probability becomes ``f·(1-stay)/(1-f)``.
    BURST_STAY = 0.9

    def __init__(
        self,
        kind: str,
        mean: float,
        *,
        burstiness: float = 8.0,
        burst_frac: float = 0.2,
    ) -> None:
        if kind not in ARRIVAL_KINDS:
            raise ValueError(f"arrival kind must be one of {ARRIVAL_KINDS}, got {kind!r}")
        if mean <= 0:
            raise ValueError("mean gap must be positive")
        if burstiness <= 1.0:
            raise ValueError("burstiness must exceed 1.0")
        if not 0.0 < burst_frac < 1.0:
            raise ValueError("burst_frac must be in (0, 1)")
        self.kind = kind
        self.mean = mean
        self.burstiness = burstiness
        self.burst_frac = burst_frac
        # Burst gaps are mean/burstiness; the idle mean is stretched so
        # the stationary mix preserves the overall mean gap.
        self._burst_mean = mean / burstiness
        self._idle_mean = (
            mean * (1.0 - burst_frac / burstiness) / (1.0 - burst_frac)
        )
        self._enter_burst = burst_frac * (1.0 - self.BURST_STAY) / (1.0 - burst_frac)
        self._in_burst = False

    def next(self, rng: np.random.Generator) -> float:
        """Sample the next gap (seconds) from *rng*."""
        if self.kind == "poisson":
            return exponential_gap(rng, self.mean)
        if self.kind == "uniform":
            return float(rng.uniform(0.5 * self.mean, 1.5 * self.mean))
        # bursty: advance the phase chain, then draw the phase's gap.
        flip = float(rng.random())
        if self._in_burst:
            self._in_burst = flip < self.BURST_STAY
        else:
            self._in_burst = flip < self._enter_burst
        phase_mean = self._burst_mean if self._in_burst else self._idle_mean
        return exponential_gap(rng, phase_mean)
