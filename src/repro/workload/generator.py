"""Workload generators for the simulation experiments.

Two drivers:

* :class:`EpochWorkload` — the controllable workload behind the
  message-complexity experiments.  Execution proceeds in *epochs*; in
  each epoch every process raises its local predicate once (so the
  number of epochs is the paper's ``p``).  In a *synchronized* epoch a
  convergecast/broadcast wave over the spanning tree threads causality
  through every interval — each interval's start happens-before every
  interval's end — producing a global ``Definitely(Φ)`` occurrence.  In
  a *broken* epoch a random subset of processes defect: they end their
  interval before the wave reaches them, so subtrees containing a
  defector fail to aggregate while defector-free subtrees still detect
  locally.  The two knobs (``sync_prob``, ``defect_frac``) steer the
  realized per-level aggregation probability — the paper's ``α``.

* :class:`RandomWorkload` — uncoordinated random predicate toggling and
  peer-to-peer chatter; the adversarial input for property-based and
  differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..sim.kernel import Simulator
from ..sim.network import Network
from ..sim.process import DetectorRole, MonitoredProcess
from ..sim.trace import ExecutionTrace
from ..topology.spanning_tree import SpanningTree
from .distributions import exponential_gap

__all__ = ["EpochConfig", "EpochProcess", "EpochWorkload", "RandomWorkload"]


@dataclass
class EpochConfig:
    """Knobs for :class:`EpochWorkload`."""

    epochs: int = 10  # the paper's p: intervals per process
    sync_prob: float = 0.7  # P(epoch has no defectors at all)
    defect_frac: float = 0.25  # defector fraction within a broken epoch
    start_jitter: float = 0.4  # per-process interval-start jitter
    defect_end: float = 0.6  # defectors end this long after starting
    epoch_length: Optional[float] = None  # derived from tree height if None
    drain_time: float = 60.0  # settle time after the last epoch
    # Processes that defect in EVERY epoch (their predicate never joins
    # a global occurrence) — the starvation experiment's knob.
    permanent_defectors: tuple = ()

    def resolved_epoch_length(self, height: int, max_delay: float) -> float:
        if self.epoch_length is not None:
            return self.epoch_length
        # A wave needs ~2(h-1) hops; leave generous slack for jitter.
        return (2.0 * height + 4.0) * max_delay + self.start_jitter + 2.0


class EpochProcess(MonitoredProcess):
    """A monitored process executing the epoch wave protocol."""

    def __init__(self, pid, sim, network, trace, role, tree: SpanningTree):
        super().__init__(pid, sim, network, trace, role)
        self.tree = tree
        self.current_epoch = -1
        self.is_defector = False
        self._began: Set[int] = set()
        self._up_count: Dict[int, int] = {}
        self._up_sent: Set[int] = set()

    # ------------------------------------------------------------------
    def begin_epoch(self, epoch: int, defector: bool) -> None:
        if not self.alive:
            return
        if self.predicate:
            # Previous epoch's wave never arrived (e.g. broken epoch or
            # failures); close that interval before opening the next.
            self.set_predicate(False)
        self.current_epoch = epoch
        self.is_defector = defector
        self._began.add(epoch)
        self.set_predicate(True)  # min(x) for this epoch's interval
        self._maybe_send_up(epoch)

    def end_epoch_early(self, epoch: int) -> None:
        """Defector: drop the predicate before the wave returns."""
        if self.alive and self.predicate and self.current_epoch == epoch:
            self.set_predicate(False)

    # ------------------------------------------------------------------
    def _children(self) -> List[int]:
        # Prefer the detector role's live view: tree repair rewires the
        # hierarchy at the roles, and the wave must follow it (the
        # static tree object is only mutated on the coordinator path).
        role = self.role
        core = getattr(role, "core", None)
        if core is not None and hasattr(core, "children"):
            return list(core.children)
        return self.tree.children(self.pid)

    def _wave_parent(self) -> Optional[int]:
        role = self.role
        core = getattr(role, "core", None)
        if core is not None and hasattr(role, "parent_id"):
            return role.parent_id
        return self.tree.parent_of(self.pid)

    def _maybe_send_up(self, epoch: int) -> None:
        """Forward the convergecast once our subtree has reported and we
        have begun the epoch ourselves."""
        if epoch not in self._began or epoch in self._up_sent:
            return
        if self._up_count.get(epoch, 0) < len(self._children()):
            return
        self._up_sent.add(epoch)
        parent = self._wave_parent()
        if parent is None:
            # Root: the convergecast is complete; start the broadcast.
            for child in self._children():
                self.send_app(child, ("down", epoch))
            self._on_wave_down(epoch)
        else:
            self.send_app(parent, ("up", epoch))

    def _on_wave_down(self, epoch: int) -> None:
        if self.current_epoch == epoch and not self.is_defector and self.predicate:
            # The wave (or, at the root, the last convergecast receive)
            # is inside the interval: max(x) now dominates every min.
            self.set_predicate(False)

    def on_app_message(self, src: int, payload: object, ts) -> None:
        kind, epoch = payload
        if kind == "up":
            self._up_count[epoch] = self._up_count.get(epoch, 0) + 1
            self._maybe_send_up(epoch)
        elif kind == "down":
            for child in self._children():
                self.send_app(child, ("down", epoch))
            self._on_wave_down(epoch)


class EpochWorkload:
    """Schedules the epoch protocol across all processes."""

    def __init__(
        self,
        sim: Simulator,
        processes: Dict[int, EpochProcess],
        tree: SpanningTree,
        config: EpochConfig,
        *,
        max_delay: float = 1.5,
        start_time: float = 0.0,
    ) -> None:
        self.sim = sim
        self.processes = processes
        self.tree = tree
        self.config = config
        self.epoch_length = config.resolved_epoch_length(tree.height, max_delay)
        self.start_time = start_time
        self.defectors_by_epoch: List[Set[int]] = []

    @property
    def end_time(self) -> float:
        return (
            self.start_time
            + self.config.epochs * self.epoch_length
            + self.config.drain_time
        )

    def install(self) -> None:
        """Pre-schedule every epoch (deterministic given the sim seed)."""
        rng = self.sim.rng("workload")
        pids = sorted(self.processes)
        for epoch in range(self.config.epochs):
            base = self.start_time + epoch * self.epoch_length
            if rng.random() < self.config.sync_prob:
                defectors: Set[int] = set()
            else:
                k = max(1, round(self.config.defect_frac * len(pids)))
                defectors = set(
                    int(x) for x in rng.choice(pids, size=k, replace=False)
                )
            defectors.update(self.config.permanent_defectors)
            self.defectors_by_epoch.append(defectors)
            for pid in pids:
                process = self.processes[pid]
                jitter = float(rng.uniform(0, self.config.start_jitter))
                is_defector = pid in defectors
                self.sim.schedule_at(
                    base + jitter,
                    lambda p=process, e=epoch, d=is_defector: p.begin_epoch(e, d),
                )
                if is_defector:
                    self.sim.schedule_at(
                        base + jitter + self.config.defect_end,
                        lambda p=process, e=epoch: p.end_epoch_early(e),
                    )
        # Close any trailing intervals so every epoch's workload counts.
        self.sim.schedule_at(
            self.start_time
            + self.config.epochs * self.epoch_length
            + self.config.drain_time / 2,
            self._finish_all,
        )

    def _finish_all(self) -> None:
        for process in self.processes.values():
            if process.alive:
                process.finish()


class RandomWorkload:
    """Uncoordinated toggling + random neighbour chatter.

    Every process alternates predicate-off and predicate-on phases with
    exponentially distributed durations and sends application messages
    to uniformly random graph neighbours at exponential spacings.
    """

    def __init__(
        self,
        sim: Simulator,
        processes: Dict[int, MonitoredProcess],
        *,
        duration: float = 100.0,
        mean_on: float = 4.0,
        mean_off: float = 4.0,
        msg_rate: float = 0.5,
    ) -> None:
        self.sim = sim
        self.processes = processes
        self.duration = duration
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.msg_rate = msg_rate

    def install(self) -> None:
        rng = self.sim.rng("workload")
        for pid in sorted(self.processes):
            process = self.processes[pid]
            # Pre-sample the whole toggle schedule for determinism; gaps
            # come from the shared distribution helper so the sim and
            # the socket traffic plane (repro.load) sample identically.
            t = exponential_gap(rng, self.mean_off)
            state = True
            while t < self.duration:
                self.sim.schedule_at(
                    t,
                    lambda p=process, s=state: p.alive and p.set_predicate(s),
                )
                t += exponential_gap(
                    rng, self.mean_on if state else self.mean_off
                )
                state = not state
            # Random chatter to graph neighbours.
            if self.msg_rate > 0:
                t = exponential_gap(rng, 1.0 / self.msg_rate)
                while t < self.duration:
                    neighbours = sorted(process.network.graph.neighbors(pid))
                    if neighbours:
                        dst = int(rng.choice(neighbours))
                        self.sim.schedule_at(
                            t,
                            lambda p=process, d=dst: p.alive
                            and p.network.is_alive(d)
                            and p.send_app(d, "chatter"),
                        )
                    t += exponential_gap(rng, 1.0 / self.msg_rate)
        self.sim.schedule_at(self.duration + 1.0, self._finish_all)

    def _finish_all(self) -> None:
        for process in self.processes.values():
            if process.alive:
                process.finish()
