"""Crash-stop failure injection.

Failures are scheduled on the simulation clock; a crashed process stops
executing application events, its detector stops, and the network drops
every message to, from, or routed through it (Section III-F's model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..sim.kernel import Simulator
from ..sim.process import MonitoredProcess

__all__ = ["FailureInjector"]


@dataclass
class FailureInjector:
    """Schedules and records crashes."""

    sim: Simulator
    processes: Dict[int, MonitoredProcess]
    crashed: List[tuple] = field(default_factory=list)  # (time, pid)

    def crash_at(self, time: float, pid: int) -> None:
        """Crash *pid* at absolute simulation time *time*."""
        if pid not in self.processes:
            raise KeyError(f"unknown process {pid}")
        self.sim.schedule_at(time, lambda: self._crash(pid))

    def crash_random(self, time: float, *, exclude: tuple = ()) -> int:
        """Crash a uniformly chosen process at *time*; returns the pid."""
        candidates = sorted(
            pid
            for pid, proc in self.processes.items()
            if proc.alive and pid not in exclude
        )
        if not candidates:
            raise RuntimeError("no live process to crash")
        pid = int(self.sim.rng("failures").choice(candidates))
        self.crash_at(time, pid)
        return pid

    def _crash(self, pid: int) -> None:
        proc = self.processes[pid]
        if proc.alive:
            proc.crash()
            self.crashed.append((self.sim.now, pid))
            self.sim.emit("crash", node=pid)
