"""Failure injection, heartbeat detection and tree-repair coordination."""

from .coordinator import RepairableRole, RepairCoordinator
from .discovery import SelfHealingRole
from .heartbeat import HeartbeatMonitor
from .injector import FailureInjector
from .rejoin import RejoinManager

__all__ = [
    "FailureInjector",
    "HeartbeatMonitor",
    "RejoinManager",
    "RepairCoordinator",
    "RepairableRole",
    "SelfHealingRole",
]
