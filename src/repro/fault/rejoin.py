"""Node recovery — rejoining the hierarchy after a crash.

The paper's model is crash-stop, but any long-running deployment
eventually restarts nodes.  Recovery composes cleanly with the
hierarchical algorithm precisely *because* detection is per-subtree:

* the recovered process resumes its vector clock and interval numbering
  from stable storage, so its local event order stays monotone;
* its detector restarts **empty** (queues are soft state — their
  contents were aggregates of intervals that were already announced or
  are gone for good);
* it rejoins as a *leaf* under any live neighbour (re-adopting former
  children would require recovering their queues' positions; leaving
  them where repair put them is simpler and equally correct);
* from that moment the global predicate widens back to include the
  recovered process: the root's next detections cover the full
  membership again.

Nothing about past detections needs revisiting — they were correct for
the memberships that existed when they were announced.
"""

from __future__ import annotations

from typing import Optional

from .coordinator import RepairCoordinator

__all__ = ["RejoinManager"]


class RejoinManager:
    """Coordinates process revival with the repair machinery.

    Shares the coordinator's tree/graph/roles view; like repair,
    neighbour discovery is idealized (DESIGN.md substitutions) while
    all detector-layer consequences are executed faithfully.
    """

    def __init__(self, coordinator: RepairCoordinator, processes: dict) -> None:
        self.coordinator = coordinator
        self.processes = processes

    def schedule_rejoin(self, time: float, pid: int) -> None:
        self.coordinator.sim.schedule_at(time, lambda: self.rejoin(pid))

    def rejoin(self, pid: int) -> None:
        """Revive *pid* and attach it as a leaf under the best live
        graph neighbour (smallest tree depth, then smallest id)."""
        process = self.processes[pid]
        if process.alive:
            raise RuntimeError(f"P{pid} is not crashed")
        tree = self.coordinator.tree
        graph = self.coordinator.graph
        candidates = [
            nb
            for nb in graph.neighbors(pid)
            if nb in tree.parent and self.coordinator._is_alive(nb)
        ]
        if not candidates:
            raise RuntimeError(f"P{pid} has no live neighbour to rejoin through")
        adopter = min(candidates, key=lambda nb: (tree.depth(nb), nb))

        process.revive()
        tree.add_leaf(pid, adopter)
        # Allow a future crash of this node to be handled afresh.
        self.coordinator._handled.discard(pid)

        role = self.coordinator.roles[pid]
        role.rebirth(adopter)
        self.coordinator.roles[adopter].gain_child(pid)
        self.coordinator.sim.emit("rejoin", node=pid, adopter=adopter)
