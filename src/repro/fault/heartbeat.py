"""Heartbeat-based crash detection (Section III-F).

"Each process in the spanning tree sends heartbeat messages to its
parent and children.  So, when a process ``P_i`` fails, both its parent
and children will stop receiving heartbeat messages from ``P_i`` and
know about ``P_i``'s failure."

:class:`HeartbeatMonitor` implements exactly that: a periodic tick
sends a :class:`~repro.sim.messages.Heartbeat` to every watched peer
and declares any peer not heard from within *timeout* suspected.  The
peer set tracks the node's current tree neighbours and is updated by
the repair machinery as the tree is rewired.

The timeout must exceed ``period + max one-hop delay`` or live peers
get falsely suspected; the defaults leave a generous margin.  (With
crash-stop failures and reliable channels a suspicion is always
accurate once that bound holds.)
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from ..sim.kernel import Simulator
from ..sim.messages import Heartbeat

__all__ = ["HeartbeatMonitor"]


class HeartbeatMonitor:
    """Liveness tracking of a node's tree neighbours."""

    def __init__(
        self,
        sim: Simulator,
        owner: int,
        send: Callable[[int, object], None],
        on_suspect: Callable[[int], None],
        *,
        period: float = 5.0,
        timeout: float = 16.0,
    ) -> None:
        if timeout <= period:
            raise ValueError("timeout must exceed the heartbeat period")
        self.sim = sim
        self.owner = owner
        self._send = send
        self._on_suspect = on_suspect
        self.period = period
        self.timeout = timeout
        self._last_seen: Dict[int, float] = {}
        self._suspected: Set[int] = set()
        self._running = False
        registry = sim.telemetry.registry
        self._c_beats = registry.counter_vec(
            "repro_heartbeats_sent_total",
            "Heartbeat messages sent, per node.",
            ("node",),
        )
        self._c_suspicions = registry.counter_vec(
            "repro_suspicions_total",
            "Peers declared suspected, per suspecting node.",
            ("node",),
        )

    # ------------------------------------------------------------------
    @property
    def peers(self) -> Set[int]:
        return set(self._last_seen)

    def add_peer(self, peer: int) -> None:
        """Start exchanging heartbeats with *peer* (grace starts now)."""
        self._last_seen.setdefault(peer, self.sim.now)
        self._suspected.discard(peer)

    def remove_peer(self, peer: int) -> None:
        self._last_seen.pop(peer, None)
        self._suspected.discard(peer)

    def beat_from(self, peer: int) -> None:
        if peer in self._last_seen:
            self._last_seen[peer] = self.sim.now

    def is_suspected(self, peer: int) -> bool:
        return peer in self._suspected

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        # Desynchronize ticks across nodes deterministically.
        offset = float(self.sim.rng("heartbeat").uniform(0, self.period))
        self.sim.schedule(offset, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        beat = Heartbeat(sender=self.owner)
        peers = list(self._last_seen)
        for peer in peers:
            self._send(peer, beat)
        self._c_beats[self.owner] += len(peers)
        deadline = self.sim.now - self.timeout
        for peer, last in list(self._last_seen.items()):
            if last < deadline and peer not in self._suspected:
                self._suspected.add(peer)
                self._c_suspicions[self.owner] += 1
                self.sim.emit(
                    "suspect", node=self.owner, peer=peer, last_seen=round(last, 3)
                )
                self._on_suspect(peer)
        self.sim.schedule(self.period, self._tick)
