"""Fully message-driven tree repair (non-root failures).

The default repair path uses an idealized coordinator (see
:mod:`repro.fault.coordinator`).  This module removes that substitution
for the common case — a *non-root* crash, one failure at a time — by
implementing the paper's Section III-F sentence as an actual protocol
over the simulated network:

    "[each subtree will] reconnect itself to the system-wide spanning
    tree by establishing a link between a node in the subtree and its
    neighbor which is still in the spanning tree."

Protocol, run by the orphaned subtree's root ``O`` after its heartbeat
monitor declares the parent dead:

1. **Probe.**  ``O`` floods ``Probe`` down its subtree (tree edges).
   Every member marks itself orphaned and acks up with ``ProbeAck``;
   every node the ack passes through records which child it came via,
   giving each hop a routing table toward every member below it.
2. **Query.**  Each member asks its *graph* neighbours ``StatusQuery``;
   neighbours answer ``StatusReply(in_tree, depth)`` from local state —
   a node is ``in_tree`` unless it is itself marked orphaned.
3. **Candidates.**  Members forward positive replies up to ``O`` as
   ``CandidateReport(member, neighbour, depth)``.
4. **Decision.**  After a collection window (covering a subtree
   round-trip), ``O`` discards candidates whose neighbour is actually a
   subtree member (it may have answered before its own Probe arrived),
   then picks the lowest ``(depth, neighbour, member)`` survivor.
5. **Re-root & attach.**  ``O`` sends ``RerootCmd(target, new_parent)``
   toward the chosen member along the recorded routes; every hop flips
   its edge (fresh queues both sides, the coordinator's exact flip
   semantics) and forwards.  The target sends ``AttachRequest2`` to the
   chosen neighbour, which opens a queue and answers
   ``AttachAccept2(depth)``; the target adopts it and floods
   ``Cleared`` over the re-rooted subtree.  Reports stay buffered while
   a node is marked orphaned (non-FIFO channels could otherwise race a
   report past the adopter's queue creation) and flush on ``Cleared``.
6. **No candidates** ⇒ partition: ``O`` promotes itself to partition
   root and keeps monitoring its partial predicate.

The dead node's old *parent* needs no protocol: its own heartbeat
suspicion drops the child queue locally.  Root failures and overlapping
concurrent repairs still use the coordinator (distributed leader
election is beyond the paper's scope); tests pin the supported cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..detect.roles import HierarchicalRole

__all__ = [
    "Probe",
    "ProbeAck",
    "StatusQuery",
    "StatusReply",
    "CandidateReport",
    "RerootCmd",
    "AttachRequest2",
    "AttachAccept2",
    "Cleared",
    "SelfHealingRole",
]


@dataclass(frozen=True)
class Probe:
    token: int
    orphan_root: int


@dataclass(frozen=True)
class ProbeAck:
    token: int
    member: int


@dataclass(frozen=True)
class StatusQuery:
    token: int


@dataclass(frozen=True)
class StatusReply:
    token: int
    in_tree: bool
    depth: int


@dataclass(frozen=True)
class CandidateReport:
    token: int
    member: int
    neighbour: int
    depth: int


@dataclass(frozen=True)
class RerootCmd:
    token: int
    target: int
    new_parent: int


@dataclass(frozen=True)
class AttachRequest2:
    token: int
    child: int


@dataclass(frozen=True)
class AttachAccept2:
    token: int
    depth: int


@dataclass(frozen=True)
class Cleared:
    token: int


class SelfHealingRole(HierarchicalRole):
    """HierarchicalRole whose parent-loss handling is message-driven.

    Child-loss handling is inherited (the queue is dropped locally on
    suspicion).  ``collect_window`` must cover a subtree round-trip
    (≈ ``4 × height × max_delay``).
    """

    def __init__(self, parent, children, *, heartbeat, collect_window: float = 20.0):
        super().__init__(parent, children, heartbeat=heartbeat, coordinator=None)
        self.collect_window = collect_window
        self.orphaned = False
        self.depth_estimate = 0
        self._repair_token: Optional[int] = None
        self._acked: Set[int] = set()
        self._candidates: List[CandidateReport] = []
        self._routes: Dict[int, int] = {}  # subtree member -> child hop

    # ------------------------------------------------------------------
    # reporting: hold aggregates while repair is in flight
    # ------------------------------------------------------------------
    def _report(self, aggregate) -> None:
        if self.orphaned:
            self._pending.append(aggregate)
            return
        super()._report(aggregate)

    def _flush_pending(self) -> None:
        pending, self._pending = self._pending, []
        for aggregate in pending:
            self._report(aggregate)

    # ------------------------------------------------------------------
    # suspicion: parent death triggers the discovery protocol
    # ------------------------------------------------------------------
    def _suspect(self, peer: int) -> None:
        if self.monitor is not None:
            self.monitor.remove_peer(peer)
        if peer == self.parent_id:
            self._start_repair()
        elif peer in self._buffers:
            self.child_failed(peer)

    def _start_repair(self) -> None:
        me = self.process.pid
        self.parent_id = None
        self.orphaned = True
        self._repair_token = token = self.process.sim.events_executed
        self._acked = {me}
        self._candidates = []
        self._routes = {}
        self.process.sim.emit("repair_probe", node=me)
        self._flood_children(Probe(token, me))
        self._query_neighbours(token)
        self.process.sim.schedule(self.collect_window, lambda: self._decide(token))

    def _flood_children(self, message) -> None:
        for child in self.core.children:
            self.process.send_control(child, message)

    def _query_neighbours(self, token: int) -> None:
        me = self.process.pid
        for nb in sorted(self.process.network.graph.neighbors(me)):
            if self.process.network.is_alive(nb):
                self.process.send_control(nb, StatusQuery(token))

    # ------------------------------------------------------------------
    def on_control_message(self, src: int, message: object) -> None:
        if isinstance(message, Probe):
            self.orphaned = True
            self._repair_token = message.token
            self._routes = {}
            self._flood_children(message)
            if self.parent_id is not None:
                self.process.send_control(
                    self.parent_id, ProbeAck(message.token, self.process.pid)
                )
            self._query_neighbours(message.token)
        elif isinstance(message, ProbeAck):
            self._routes[message.member] = src
            if self._is_orphan_root():
                self._acked.add(message.member)
            elif self.parent_id is not None:
                self.process.send_control(self.parent_id, message)
        elif isinstance(message, StatusQuery):
            self.process.send_control(
                src,
                StatusReply(
                    message.token,
                    in_tree=not self.orphaned,
                    depth=self.depth_estimate,
                ),
            )
        elif isinstance(message, StatusReply):
            if message.in_tree and self.orphaned:
                self._collect_or_forward(
                    CandidateReport(
                        message.token, self.process.pid, src, message.depth
                    )
                )
        elif isinstance(message, CandidateReport):
            self._collect_or_forward(message)
        elif isinstance(message, RerootCmd):
            self._apply_reroot(src, message)
        elif isinstance(message, AttachRequest2):
            self.gain_child(message.child)
            self.process.send_control(
                message.child, AttachAccept2(message.token, self.depth_estimate)
            )
        elif isinstance(message, AttachAccept2):
            self.depth_estimate = message.depth + 1
            self.set_parent(src)
            self.orphaned = False
            self.process.sim.emit(
                "repair_attached", node=self.process.pid, parent=src
            )
            self._flush_pending()
            self._flood_children(Cleared(message.token))
        elif isinstance(message, Cleared):
            self.orphaned = False
            self._flush_pending()
            self._flood_children(message)
        else:
            super().on_control_message(src, message)

    def _collect_or_forward(self, report: CandidateReport) -> None:
        if self._is_orphan_root():
            self._candidates.append(report)
        elif self.parent_id is not None:
            self.process.send_control(self.parent_id, report)

    def _is_orphan_root(self) -> bool:
        return self.orphaned and self.parent_id is None

    # ------------------------------------------------------------------
    def _decide(self, token: int) -> None:
        if not self._is_orphan_root() or self._repair_token != token:
            return  # already repaired or superseded by a newer probe
        viable = [c for c in self._candidates if c.neighbour not in self._acked]
        if not viable:
            self.process.sim.emit("repair_partitioned", node=self.process.pid)
            self.become_root()
            self.orphaned = False
            self._flush_pending()
            self._flood_children(Cleared(token))
            return
        best = min(viable, key=lambda c: (c.depth, c.neighbour, c.member))
        me = self.process.pid
        if best.member == me:
            self.process.send_control(best.neighbour, AttachRequest2(token, me))
            return
        nxt = self._routes[best.member]
        self._flip_toward(nxt)
        self.process.send_control(nxt, RerootCmd(token, best.member, best.neighbour))

    def _flip_toward(self, child: int) -> None:
        """Reverse the edge to *child*: it becomes our parent-to-be.
        parent_id is set but reports keep buffering (orphaned holds)."""
        self.drop_child(child)
        self.set_parent(child)

    def _apply_reroot(self, src: int, command: RerootCmd) -> None:
        me = self.process.pid
        self.orphaned = True
        self._repair_token = command.token
        self.gain_child(src)  # the upstream hop is now our child
        if me == command.target:
            self.parent_id = None
            self.process.send_control(
                command.new_parent, AttachRequest2(command.token, me)
            )
            return
        nxt = self._routes[command.target]
        self._flip_toward(nxt)
        self.process.send_control(nxt, command)
