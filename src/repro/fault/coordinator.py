"""Tree-repair coordination after a detected crash.

The paper specifies *what* repair achieves — each orphaned subtree
"reconnect[s] itself … by establishing a link between a node in the
subtree and its neighbor which is still in the spanning tree" — but not
the discovery protocol.  This module provides that glue as an idealized
coordinator (see DESIGN.md substitutions): when any role reports a
suspected crash, the coordinator computes the deterministic repair plan
(:func:`repro.topology.repair.apply_repair`) once, waits a configurable
repair latency standing in for the neighbour-discovery handshake, and
then drives the affected detector roles through their local rewiring
steps:

* the surviving parent drops the dead child's queue (which can unblock
  detections immediately),
* a promoted node becomes the new root (its future solutions are global
  detections, not reports),
* re-rooted edges flip parent/child queues,
* each reattached subtree root starts reporting to its adopter, which
  opens a fresh queue and reorder buffer,
* unreachable subtrees become independent detection domains — partial
  predicates keep being monitored, the paper's headline property.

The detection-layer consequences (who keeps which queue, where reports
flow, what is lost) are exactly the paper's; only neighbour discovery
is abstracted.
"""

from __future__ import annotations

from typing import Dict, Protocol, Set

import networkx as nx

from ..sim.kernel import Simulator
from ..topology.repair import RepairPlan, apply_repair
from ..topology.spanning_tree import SpanningTree

__all__ = ["RepairableRole", "RepairCoordinator"]


class RepairableRole(Protocol):
    """The rewiring interface detector roles expose to the coordinator."""

    def child_failed(self, child: int) -> None: ...

    def become_root(self) -> None: ...

    def set_parent(self, parent: int) -> None: ...

    def gain_child(self, child: int) -> None: ...

    def drop_child(self, child: int) -> None: ...


class RepairCoordinator:
    """Computes and applies one repair plan per failed node."""

    def __init__(
        self,
        sim: Simulator,
        tree: SpanningTree,
        graph: nx.Graph,
        roles: Dict[int, RepairableRole],
        *,
        repair_latency: float = 2.0,
        is_alive=None,
    ) -> None:
        self.sim = sim
        self.tree = tree
        self.graph = graph
        self.roles = roles
        self.repair_latency = repair_latency
        self._is_alive = is_alive or (lambda pid: True)
        self._handled: Set[int] = set()
        self.plans: Dict[int, RepairPlan] = {}

    def report_failure(self, failed: int, reporter: int) -> None:
        """A role suspects *failed*; idempotent across reporters."""
        if failed in self._handled:
            return
        if self._is_alive(failed):
            raise RuntimeError(
                f"P{reporter} falsely suspected live P{failed}: heartbeat "
                f"timeout too small for the network's delay bound"
            )
        self._handled.add(failed)
        plan = apply_repair(self.tree, self.graph, failed)
        self.plans[failed] = plan
        self.sim.emit("repair_planned", node=reporter, failed=failed)
        self.sim.schedule(self.repair_latency, lambda: self._apply(plan))

    # ------------------------------------------------------------------
    def _apply(self, plan: RepairPlan) -> None:
        roles = self.roles
        if plan.old_parent is not None and self._is_alive(plan.old_parent):
            roles[plan.old_parent].child_failed(plan.failed)
        if plan.new_root is not None:
            roles[plan.new_root].become_root()
        for att in plan.attachments:
            # Flip re-rooted edges first: each (par, child) edge reverses.
            for par, child in att.flipped_edges:
                roles[par].drop_child(child)
                roles[child].gain_child(par)
                roles[par].set_parent(child)
            roles[att.new_parent].gain_child(att.subtree_root)
            roles[att.subtree_root].set_parent(att.new_parent)
            self.sim.emit(
                "reattached",
                node=att.subtree_root,
                new_parent=att.new_parent,
                rerooted=bool(att.flipped_edges),
            )
        for orphan in plan.partitioned:
            roles[orphan].become_root()
            self.sim.emit("partitioned", node=orphan)
        if plan.new_root is not None:
            self.sim.emit("root_promoted", node=plan.new_root, failed=plan.failed)
