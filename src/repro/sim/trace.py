"""Execution traces: the recorded ``(E, ≺)`` of a run.

A trace records, per process, the totally-ordered local sequence of
events together with their vector timestamps and the local predicate
value *after* each event.  From a trace we can

* extract the per-process intervals (maximal runs of events at which
  the local predicate is true) that drive the detectors, and
* hand the full event structure to the offline ground-truth checkers
  (:mod:`repro.detect.offline`).

Traces come from two producers: the discrete-event simulator
(:mod:`repro.sim.kernel` / :mod:`repro.sim.process`) and the scripted
scenario builder (:mod:`repro.workload.scenarios`) used to reproduce
the paper's figures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..clocks import Timestamp
from ..intervals import Interval

__all__ = ["EventKind", "ProcessEvent", "ExecutionTrace"]


class EventKind:
    INTERNAL = "internal"
    SEND = "send"
    RECV = "recv"


@dataclass(frozen=True)
class ProcessEvent:
    """One application-plane event.

    ``index`` is 1-based and equals the process's own vector-clock
    component at the event.  ``global_order`` is the order in which the
    producer recorded events — any producer records causes before
    effects, so it is a valid linearization of ``(E, ≺)``.  ``time`` is
    the producer's wall clock (simulation time for DES runs, the global
    order for scripted executions); the algorithms never read it — it
    exists for latency measurements and rendering only.
    """

    process: int
    index: int
    timestamp: Timestamp
    kind: str
    predicate: bool
    global_order: int
    time: float = 0.0


class ExecutionTrace:
    """The recorded events of one distributed execution."""

    def __init__(self, n: int, initial_predicate: Optional[Sequence[bool]] = None):
        self.n = n
        self.events: List[List[ProcessEvent]] = [[] for _ in range(n)]
        self.initial_predicate: List[bool] = (
            list(initial_predicate) if initial_predicate is not None else [False] * n
        )
        if len(self.initial_predicate) != n:
            raise ValueError("initial_predicate must have one entry per process")
        self._order = 0

    def record(
        self,
        process: int,
        timestamp: Timestamp,
        kind: str,
        predicate: bool,
        time: float = 0.0,
    ) -> ProcessEvent:
        """Append one event to *process*'s local sequence."""
        seq = self.events[process]
        index = len(seq) + 1
        if int(timestamp[process]) != index:
            raise ValueError(
                f"timestamp component {int(timestamp[process])} does not match "
                f"local event index {index} at P{process}"
            )
        event = ProcessEvent(
            process=process,
            index=index,
            timestamp=timestamp,
            kind=kind,
            predicate=predicate,
            global_order=self._order,
            time=time,
        )
        self._order += 1
        seq.append(event)
        return event

    # ------------------------------------------------------------------
    def event_count(self) -> int:
        return sum(len(seq) for seq in self.events)

    def predicate_after(self, process: int, k: int) -> bool:
        """Local predicate value after *process* executed ``k`` events."""
        if k == 0:
            return self.initial_predicate[process]
        return self.events[process][k - 1].predicate

    def intervals(self, process: int) -> List[Interval]:
        """Maximal runs of predicate-true events at *process*, in order."""
        out: List[Interval] = []
        run_start: Optional[ProcessEvent] = None
        last_true: Optional[ProcessEvent] = None
        for event in self.events[process]:
            if event.predicate:
                if run_start is None:
                    run_start = event
                last_true = event
            else:
                if run_start is not None:
                    out.append(
                        Interval(
                            owner=process,
                            seq=len(out),
                            lo=run_start.timestamp,
                            hi=last_true.timestamp,
                        )
                    )
                    run_start = None
                    last_true = None
        if run_start is not None:
            out.append(
                Interval(
                    owner=process,
                    seq=len(out),
                    lo=run_start.timestamp,
                    hi=last_true.timestamp,
                )
            )
        return out

    def all_intervals(self) -> Dict[int, List[Interval]]:
        return {p: self.intervals(p) for p in range(self.n)}

    def interval_close_time(self, interval: Interval) -> float:
        """Wall time of the event at which *interval*'s predicate run
        ended (its ``max(x)`` event)."""
        events = self.events[interval.owner]
        return events[int(interval.hi[interval.owner]) - 1].time

    def intervals_in_completion_order(self) -> List[Interval]:
        """All processes' intervals ordered by the global order of their
        closing event — the natural delivery order for a centralized
        sink replay with instantaneous channels."""

        def close_order(interval: Interval) -> int:
            events = self.events[interval.owner]
            # hi component at owner is the 1-based index of the closing event
            return events[int(interval.hi[interval.owner]) - 1].global_order

        flat = [iv for p in range(self.n) for iv in self.intervals(p)]
        flat.sort(key=close_order)
        return flat
