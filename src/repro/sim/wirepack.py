"""Packed binary bodies for the control-plane message dataclasses.

:mod:`repro.sim.serialize` defines the canonical *JSON* forms of every
:mod:`repro.sim.messages` dataclass; this module defines the equivalent
*packed* forms — the payload layer of the binary wire protocol
(:class:`repro.net.FrameCodec` with ``wire="binary"``).  Both layers
serialize exactly the same information, so the round-trip contract is
shared: ``unpack_message(*pack_message(m)) == m`` for every message
type, pinned by the property suite in ``tests/property/test_wire.py``.

Layout conventions
------------------
* **uvarint** — LEB128 unsigned varint (7 bits per byte, little-endian
  groups, continuation bit 0x80).  Used for counts, lengths, sequence
  numbers and vector sizes.
* **svarint** — zigzag-mapped uvarint (``(v << 1) ^ (v >> 63)`` in the
  signed sense, but unbounded — Python ints never truncate).  Used for
  every value field that could conceivably be negative, and for
  timestamp components in sparse/differential payloads: a ``2**62``
  component costs 9 bytes instead of 19 JSON digits.
* **bounds** — an interval's ``lo``/``hi`` vectors are each a one-byte
  scheme tag (:data:`SCHEME_RAW` / :data:`SCHEME_SPARSE` /
  :data:`SCHEME_DIFFERENTIAL`) followed by the scheme payload:

  - raw: ``n`` big-endian int64s (``8*n`` bytes, bulk-copied via numpy);
  - sparse / differential: ``uvarint count`` then ``count`` pairs of
    ``uvarint index, svarint value`` (the :mod:`repro.clocks.encoding`
    pair lists, packed).

  The *choice* of scheme and the per-channel reference chains live in
  the frame codec, injected through the ``bounds`` hooks below; the
  default hooks (used for nested aggregation provenance, which never
  compresses) handle raw and reference-free sparse payloads.

Message tags are part of the stable wire schema, mirroring the JSON
``type`` strings one-to-one (:data:`MESSAGE_TAGS`).  Tag 0 is reserved
by the frame layer for the JSON escape hatch (meta frames and message
types unknown to the packer), so packed message tags start at 1.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..clocks.encoding import decode_differential, decode_sparse
from ..intervals import Interval

__all__ = [
    "TAG_JSON",
    "TAG_INTERVAL_REPORT",
    "TAG_HEARTBEAT",
    "TAG_APP_MESSAGE",
    "TAG_ATTACH_REQUEST",
    "TAG_ATTACH_ACCEPT",
    "TAG_DETACH_NOTICE",
    "TAG_ACK",
    "MESSAGE_TAGS",
    "SCHEME_RAW",
    "SCHEME_SPARSE",
    "SCHEME_DIFFERENTIAL",
    "SCHEME_NAMES",
    "write_uvarint",
    "read_uvarint",
    "write_svarint",
    "read_svarint",
    "pack_message",
    "unpack_message",
    "default_decode_bound",
]

#: Frame-layer escape hatch: the body is a JSON object (a ``__``-meta
#: frame, or a message type this packer does not know).
TAG_JSON = 0
TAG_INTERVAL_REPORT = 1
TAG_HEARTBEAT = 2
TAG_APP_MESSAGE = 3
TAG_ATTACH_REQUEST = 4
TAG_ATTACH_ACCEPT = 5
TAG_DETACH_NOTICE = 6
#: Transport acknowledgement (``{"type": "__ack__", "n": N}``): packed
#: by the frame codec itself (a single uvarint body), listed here so the
#: tag space has one home.
TAG_ACK = 7

#: JSON ``type`` string -> packed tag, one-to-one.
MESSAGE_TAGS = {
    "IntervalReport": TAG_INTERVAL_REPORT,
    "Heartbeat": TAG_HEARTBEAT,
    "AppMessage": TAG_APP_MESSAGE,
    "AttachRequest": TAG_ATTACH_REQUEST,
    "AttachAccept": TAG_ATTACH_ACCEPT,
    "DetachNotice": TAG_DETACH_NOTICE,
}

SCHEME_RAW = 0
SCHEME_SPARSE = 1
SCHEME_DIFFERENTIAL = 2
#: scheme byte -> the :func:`repro.clocks.encoding.best_encoding` name.
SCHEME_NAMES = {
    SCHEME_RAW: "raw",
    SCHEME_SPARSE: "sparse",
    SCHEME_DIFFERENTIAL: "differential",
}

#: Hard cap on varint length: 10 bytes covers 70 bits, enough for any
#: zigzagged int64.  Longer runs indicate a corrupt or hostile stream.
_MAX_VARINT_BYTES = 10

#: Encode hook signature: ``(slot, timestamp) -> (scheme, payload bytes)``
#: where ``slot`` is 0 for ``lo`` and 1 for ``hi``.
EncodeBound = Callable[[int, np.ndarray], Tuple[int, bytes]]
#: Decode hook signature: ``(slot, scheme, payload, n) -> timestamp``
#: where ``payload`` is an int64 array (raw) or an ``(index, value)``
#: pair list (sparse/differential).
DecodeBound = Callable[[int, int, object, int], np.ndarray]


# ----------------------------------------------------------------------
# varint primitives
# ----------------------------------------------------------------------
def write_uvarint(buf: bytearray, value: int) -> None:
    """Append *value* (non-negative int) to *buf* as a LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def read_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    """Read a LEB128 varint from ``data[offset:]``; returns
    ``(value, new_offset)``.  Truncated or over-long runs raise
    :class:`ValueError` (the frame layer treats that as a poisoned
    stream)."""
    value = 0
    shift = 0
    limit = len(data)
    for count in range(_MAX_VARINT_BYTES):
        if offset >= limit:
            raise ValueError("truncated varint in packed frame body")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
    raise ValueError("over-long varint in packed frame body")


def write_svarint(buf: bytearray, value: int) -> None:
    """Append a signed int as a zigzag-mapped varint."""
    write_uvarint(buf, (value << 1) ^ (value >> 63) if value < 0 else value << 1)


def read_svarint(data: bytes, offset: int) -> Tuple[int, int]:
    raw, offset = read_uvarint(data, offset)
    return (raw >> 1) ^ -(raw & 1), offset


# ----------------------------------------------------------------------
# bounds (timestamp vectors)
# ----------------------------------------------------------------------
def _write_pairs(buf: bytearray, pairs: List[Tuple[int, int]]) -> None:
    write_uvarint(buf, len(pairs))
    for index, value in pairs:
        write_uvarint(buf, int(index))
        write_svarint(buf, int(value))


def _pack_bound(
    buf: bytearray, ts: np.ndarray, slot: int, bounds: Optional[EncodeBound]
) -> None:
    if bounds is None:
        buf.append(SCHEME_RAW)
        buf += np.ascontiguousarray(ts, dtype=np.int64).astype(">i8").tobytes()
        return
    scheme, payload = bounds(slot, ts)
    buf.append(scheme)
    buf += payload


def _unpack_bound(
    data: bytes,
    offset: int,
    n: int,
    slot: int,
    bounds: Optional[DecodeBound],
) -> Tuple[np.ndarray, int]:
    if offset >= len(data):
        raise ValueError("truncated interval bounds in packed frame body")
    scheme = data[offset]
    offset += 1
    if scheme == SCHEME_RAW:
        end = offset + 8 * n
        if end > len(data):
            raise ValueError("truncated raw timestamp in packed frame body")
        payload: object = np.frombuffer(data, dtype=">i8", count=n, offset=offset).astype(
            np.int64
        )
        offset = end
    elif scheme in (SCHEME_SPARSE, SCHEME_DIFFERENTIAL):
        count, offset = read_uvarint(data, offset)
        pairs = []
        for _ in range(count):
            index, offset = read_uvarint(data, offset)
            value, offset = read_svarint(data, offset)
            pairs.append((index, value))
        payload = pairs
    else:
        raise ValueError(f"unknown timestamp scheme byte {scheme}")
    decode = bounds if bounds is not None else default_decode_bound
    return decode(slot, scheme, payload, n), offset


def default_decode_bound(slot: int, scheme: int, payload: object, n: int) -> np.ndarray:
    """Reference-free bound decoding (nested provenance, tests): raw
    arrays pass through, pair lists decode as sparse (a differential
    payload with no reference *is* sparse, per
    :func:`repro.clocks.encoding.decode_differential`)."""
    if scheme == SCHEME_RAW:
        return np.asarray(payload, dtype=np.int64)
    if scheme == SCHEME_SPARSE:
        return np.asarray(decode_sparse(payload, n), dtype=np.int64)
    return np.asarray(decode_differential(payload, None, n), dtype=np.int64)


# ----------------------------------------------------------------------
# intervals
# ----------------------------------------------------------------------
def _pack_interval(
    buf: bytearray,
    interval: Interval,
    *,
    include_parts: bool,
    bounds: Optional[EncodeBound],
) -> None:
    write_svarint(buf, interval.owner)
    write_uvarint(buf, interval.seq)
    write_uvarint(buf, interval.n)
    _pack_bound(buf, interval.lo, 0, bounds)
    _pack_bound(buf, interval.hi, 1, bounds)
    members = sorted(interval.members)
    write_uvarint(buf, len(members))
    for member in members:
        write_svarint(buf, int(member))
    parts = interval.parts if include_parts else ()
    write_uvarint(buf, len(parts))
    for part in parts:
        # Provenance bounds stay raw and reference-free, exactly like
        # the JSON path: the compression chain is tied to the *head*
        # timestamps only, keeping both ends' state trivially in
        # lockstep (see FrameCodec._compress_interval).
        _pack_interval(buf, part, include_parts=include_parts, bounds=None)


def _unpack_interval(
    data: bytes, offset: int, *, bounds: Optional[DecodeBound]
) -> Tuple[Interval, int]:
    owner, offset = read_svarint(data, offset)
    seq, offset = read_uvarint(data, offset)
    n, offset = read_uvarint(data, offset)
    lo, offset = _unpack_bound(data, offset, n, 0, bounds)
    hi, offset = _unpack_bound(data, offset, n, 1, bounds)
    count, offset = read_uvarint(data, offset)
    members = []
    for _ in range(count):
        member, offset = read_svarint(data, offset)
        members.append(member)
    count, offset = read_uvarint(data, offset)
    parts = []
    for _ in range(count):
        part, offset = _unpack_interval(data, offset, bounds=None)
        parts.append(part)
    interval = Interval(
        owner=owner,
        seq=seq,
        lo=np.asarray(lo, dtype=np.int64),
        hi=np.asarray(hi, dtype=np.int64),
        members=frozenset(members),
        parts=tuple(parts),
    )
    return interval, offset


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
def pack_message(
    message: object,
    *,
    include_parts: bool = True,
    bounds: Optional[EncodeBound] = None,
) -> Optional[Tuple[int, bytes]]:
    """One dataclass -> ``(tag, packed body)``, or ``None`` when the
    type has no packed form (the caller falls back to the JSON escape
    hatch, so unknown/cold types keep working on a binary wire)."""
    from .messages import (
        AppMessage,
        AttachAccept,
        AttachRequest,
        DetachNotice,
        Heartbeat,
        IntervalReport,
    )

    buf = bytearray()
    if isinstance(message, IntervalReport):
        write_svarint(buf, message.origin)
        write_svarint(buf, message.dest)
        write_uvarint(buf, message.transport_seq)
        _pack_interval(
            buf, message.interval, include_parts=include_parts, bounds=bounds
        )
        return TAG_INTERVAL_REPORT, bytes(buf)
    if isinstance(message, Heartbeat):
        write_svarint(buf, message.sender)
        return TAG_HEARTBEAT, bytes(buf)
    if isinstance(message, AppMessage):
        payload = json.dumps(message.payload, separators=(",", ":")).encode("utf-8")
        write_uvarint(buf, len(payload))
        buf += payload
        piggyback = message.piggyback
        write_uvarint(buf, int(piggyback.shape[0]))
        for component in piggyback.tolist():
            write_svarint(buf, component)
        return TAG_APP_MESSAGE, bytes(buf)
    if isinstance(message, AttachRequest):
        write_svarint(buf, message.child)
        subtree = sorted(int(m) for m in message.subtree)
        write_uvarint(buf, len(subtree))
        for member in subtree:
            write_svarint(buf, member)
        return TAG_ATTACH_REQUEST, bytes(buf)
    if isinstance(message, AttachAccept):
        write_svarint(buf, message.parent)
        return TAG_ATTACH_ACCEPT, bytes(buf)
    if isinstance(message, DetachNotice):
        write_svarint(buf, message.child)
        return TAG_DETACH_NOTICE, bytes(buf)
    return None


def unpack_message(
    tag: int,
    data: bytes,
    offset: int = 0,
    *,
    bounds: Optional[DecodeBound] = None,
) -> Tuple[object, int]:
    """Invert :func:`pack_message`; returns ``(message, new_offset)`` so
    the frame layer can read a trailing sidecar.  Unknown tags and any
    structural damage (truncation, bad scheme bytes) raise
    :class:`ValueError`."""
    from .messages import (
        AppMessage,
        AttachAccept,
        AttachRequest,
        DetachNotice,
        Heartbeat,
        IntervalReport,
    )

    if tag == TAG_INTERVAL_REPORT:
        origin, offset = read_svarint(data, offset)
        dest, offset = read_svarint(data, offset)
        transport_seq, offset = read_uvarint(data, offset)
        interval, offset = _unpack_interval(data, offset, bounds=bounds)
        return (
            IntervalReport(
                origin=origin,
                dest=dest,
                interval=interval,
                transport_seq=transport_seq,
            ),
            offset,
        )
    if tag == TAG_HEARTBEAT:
        sender, offset = read_svarint(data, offset)
        return Heartbeat(sender=sender), offset
    if tag == TAG_APP_MESSAGE:
        length, offset = read_uvarint(data, offset)
        end = offset + length
        if end > len(data):
            raise ValueError("truncated AppMessage payload in packed frame body")
        payload = json.loads(data[offset:end].decode("utf-8"))
        offset = end
        n, offset = read_uvarint(data, offset)
        components = []
        for _ in range(n):
            component, offset = read_svarint(data, offset)
            components.append(component)
        piggyback = np.asarray(components, dtype=np.int64)
        return AppMessage(payload=payload, piggyback=piggyback), offset
    if tag == TAG_ATTACH_REQUEST:
        child, offset = read_svarint(data, offset)
        count, offset = read_uvarint(data, offset)
        members = []
        for _ in range(count):
            member, offset = read_svarint(data, offset)
            members.append(member)
        return AttachRequest(child=child, subtree=frozenset(members)), offset
    if tag == TAG_ATTACH_ACCEPT:
        parent, offset = read_svarint(data, offset)
        return AttachAccept(parent=parent), offset
    if tag == TAG_DETACH_NOTICE:
        child, offset = read_svarint(data, offset)
        return DetachNotice(child=child), offset
    raise ValueError(f"unknown packed message tag {tag}")
