"""Trace (de)serialization.

Executions are valuable artifacts: a trace captured from a live run (or
a scripted scenario) can be archived, shipped in a bug report, replayed
through any detector offline, and diffed across library versions.  The
JSON schema is deliberately flat and stable:

```json
{
  "version": 1,
  "n": 4,
  "initial_predicate": [false, false, false, false],
  "events": [
    {"p": 0, "ts": [1, 0, 0, 0], "kind": "internal", "pred": true},
    ...
  ]
}
```

Events appear in global recording order, so a round-trip preserves the
linearization (and therefore ``intervals_in_completion_order`` and
every replay built on it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .trace import ExecutionTrace, ProcessEvent

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace"]

_SCHEMA_VERSION = 1


def trace_to_dict(trace: ExecutionTrace) -> dict:
    """The JSON-ready representation of a trace."""
    events = sorted(
        (event for seq in trace.events for event in seq),
        key=lambda e: e.global_order,
    )
    return {
        "version": _SCHEMA_VERSION,
        "n": trace.n,
        "initial_predicate": list(trace.initial_predicate),
        "events": [
            {
                "p": e.process,
                "ts": e.timestamp.tolist(),
                "kind": e.kind,
                "pred": e.predicate,
                "t": e.time,
            }
            for e in events
        ],
    }


def trace_from_dict(data: dict) -> ExecutionTrace:
    """Rebuild a trace; validates the schema and every timestamp."""
    version = data.get("version")
    if version != _SCHEMA_VERSION:
        raise ValueError(f"unsupported trace schema version: {version!r}")
    trace = ExecutionTrace(int(data["n"]), data.get("initial_predicate"))
    import numpy as np

    for entry in data["events"]:
        trace.record(
            int(entry["p"]),
            np.array(entry["ts"], dtype=np.int64),
            str(entry["kind"]),
            bool(entry["pred"]),
            time=float(entry.get("t", 0.0)),
        )
    return trace


def save_trace(trace: ExecutionTrace, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> ExecutionTrace:
    return trace_from_dict(json.loads(Path(path).read_text()))
