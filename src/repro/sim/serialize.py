"""Trace and detection (de)serialization.

Executions are valuable artifacts: a trace captured from a live run (or
a scripted scenario) can be archived, shipped in a bug report, replayed
through any detector offline, and diffed across library versions.
Detection records round-trip too — the sharded experiment runner
returns them across process boundaries, so both the JSON forms here and
plain pickling must reproduce them exactly (the test-suite pins both).
The JSON schema is deliberately flat and stable:

```json
{
  "version": 1,
  "n": 4,
  "initial_predicate": [false, false, false, false],
  "events": [
    {"p": 0, "ts": [1, 0, 0, 0], "kind": "internal", "pred": true},
    ...
  ]
}
```

Events appear in global recording order, so a round-trip preserves the
linearization (and therefore ``intervals_in_completion_order`` and
every replay built on it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from .trace import ExecutionTrace, ProcessEvent
from .wirepack import pack_message, unpack_message

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "interval_to_dict",
    "interval_from_dict",
    "detection_to_dict",
    "detection_from_dict",
    "detections_to_dicts",
    "detections_from_dicts",
    "message_to_dict",
    "message_from_dict",
    "pack_message",
    "unpack_message",
]

_SCHEMA_VERSION = 1


def trace_to_dict(trace: ExecutionTrace) -> dict:
    """The JSON-ready representation of a trace."""
    events = sorted(
        (event for seq in trace.events for event in seq),
        key=lambda e: e.global_order,
    )
    return {
        "version": _SCHEMA_VERSION,
        "n": trace.n,
        "initial_predicate": list(trace.initial_predicate),
        "events": [
            {
                "p": e.process,
                "ts": e.timestamp.tolist(),
                "kind": e.kind,
                "pred": e.predicate,
                "t": e.time,
            }
            for e in events
        ],
    }


def trace_from_dict(data: dict) -> ExecutionTrace:
    """Rebuild a trace; validates the schema and every timestamp."""
    version = data.get("version")
    if version != _SCHEMA_VERSION:
        raise ValueError(f"unsupported trace schema version: {version!r}")
    trace = ExecutionTrace(int(data["n"]), data.get("initial_predicate"))
    import numpy as np

    for entry in data["events"]:
        trace.record(
            int(entry["p"]),
            np.array(entry["ts"], dtype=np.int64),
            str(entry["kind"]),
            bool(entry["pred"]),
            time=float(entry.get("t", 0.0)),
        )
    return trace


# ----------------------------------------------------------------------
# intervals and detection records
# ----------------------------------------------------------------------
def interval_to_dict(interval) -> dict:
    """JSON-ready form of an :class:`~repro.intervals.Interval`,
    recursing through aggregation provenance (``parts``)."""
    out = {
        "owner": interval.owner,
        "seq": interval.seq,
        "lo": interval.lo.tolist(),
        "hi": interval.hi.tolist(),
        "members": sorted(interval.members),
    }
    if interval.parts:
        out["parts"] = [interval_to_dict(part) for part in interval.parts]
    return out


def interval_from_dict(data: dict):
    import numpy as np

    from ..intervals import Interval

    return Interval(
        owner=int(data["owner"]),
        seq=int(data["seq"]),
        lo=np.array(data["lo"], dtype=np.int64),
        hi=np.array(data["hi"], dtype=np.int64),
        members=frozenset(int(m) for m in data["members"]),
        parts=tuple(interval_from_dict(part) for part in data.get("parts", ())),
    )


def _key_to_json(key):
    """Queue keys are ints (pids / the local-queue 0) or strings; encode
    the type so ``0`` and ``"0"`` survive distinctly."""
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise TypeError(f"unserializable queue key {key!r} (want int or str)")
    return ["i", key] if isinstance(key, int) else ["s", key]


def _key_from_json(tagged):
    tag, value = tagged
    if tag == "i":
        return int(value)
    if tag == "s":
        return str(value)
    raise ValueError(f"unknown queue-key tag {tag!r}")


def detection_to_dict(record) -> dict:
    """JSON-ready form of a
    :class:`~repro.detect.roles.DetectionRecord`."""
    solution = record.solution
    return {
        "time": record.time,
        "detector": record.detector,
        "solution": {
            "detector": solution.detector,
            "index": solution.index,
            "heads": [
                [_key_to_json(key), interval_to_dict(interval)]
                for key, interval in solution.heads.items()
            ],
        },
        "aggregate": (
            interval_to_dict(record.aggregate)
            if record.aggregate is not None
            else None
        ),
    }


def detection_from_dict(data: dict):
    from ..detect.base import Solution
    from ..detect.roles import DetectionRecord

    payload = data["solution"]
    solution = Solution(
        detector=int(payload["detector"]),
        index=int(payload["index"]),
        heads={
            _key_from_json(key): interval_from_dict(interval)
            for key, interval in payload["heads"]
        },
    )
    aggregate = data.get("aggregate")
    return DetectionRecord(
        time=float(data["time"]),
        detector=int(data["detector"]),
        solution=solution,
        aggregate=interval_from_dict(aggregate) if aggregate is not None else None,
    )


def detections_to_dicts(records) -> List[dict]:
    return [detection_to_dict(record) for record in records]


def detections_from_dicts(data) -> list:
    return [detection_from_dict(entry) for entry in data]


# ----------------------------------------------------------------------
# control/application-plane messages
# ----------------------------------------------------------------------
def message_to_dict(message, *, include_parts: bool = True) -> dict:
    """JSON-ready form of any :mod:`repro.sim.messages` dataclass.

    Every message type round-trips exactly through
    :func:`message_from_dict`; this is the JSON payload layer of the
    :class:`repro.net.FrameCodec` wire protocol, so the ``type`` tag is
    part of the stable schema (the packed twin lives in
    :mod:`repro.sim.wirepack` — same information, same round-trip
    contract).  ``include_parts=False`` strips aggregation provenance
    from interval payloads (the paper's wire model ships bounds only;
    see ``payload_entries``).
    """
    from .messages import (
        AppMessage,
        AttachAccept,
        AttachRequest,
        DetachNotice,
        Heartbeat,
        IntervalReport,
    )

    if isinstance(message, AppMessage):
        return {
            "type": "AppMessage",
            "payload": message.payload,
            "piggyback": message.piggyback.tolist(),
        }
    if isinstance(message, IntervalReport):
        interval = message.interval
        if not include_parts and interval.parts:
            from ..intervals import Interval

            interval = Interval(
                owner=interval.owner,
                seq=interval.seq,
                lo=interval.lo,
                hi=interval.hi,
                members=interval.members,
            )
        return {
            "type": "IntervalReport",
            "origin": message.origin,
            "dest": message.dest,
            "transport_seq": message.transport_seq,
            "interval": interval_to_dict(interval),
        }
    if isinstance(message, Heartbeat):
        return {"type": "Heartbeat", "sender": message.sender}
    if isinstance(message, AttachRequest):
        return {
            "type": "AttachRequest",
            "child": message.child,
            "subtree": sorted(int(m) for m in message.subtree),
        }
    if isinstance(message, AttachAccept):
        return {"type": "AttachAccept", "parent": message.parent}
    if isinstance(message, DetachNotice):
        return {"type": "DetachNotice", "child": message.child}
    raise TypeError(f"unserializable message type {type(message).__name__}")


def message_from_dict(data: dict):
    import numpy as np

    from .messages import (
        AppMessage,
        AttachAccept,
        AttachRequest,
        DetachNotice,
        Heartbeat,
        IntervalReport,
    )

    kind = data.get("type")
    if kind == "AppMessage":
        return AppMessage(
            payload=data["payload"],
            piggyback=np.array(data["piggyback"], dtype=np.int64),
        )
    if kind == "IntervalReport":
        return IntervalReport(
            origin=int(data["origin"]),
            dest=int(data["dest"]),
            interval=interval_from_dict(data["interval"]),
            transport_seq=int(data["transport_seq"]),
        )
    if kind == "Heartbeat":
        return Heartbeat(sender=int(data["sender"]))
    if kind == "AttachRequest":
        return AttachRequest(
            child=int(data["child"]),
            subtree=frozenset(int(m) for m in data["subtree"]),
        )
    if kind == "AttachAccept":
        return AttachAccept(parent=int(data["parent"]))
    if kind == "DetachNotice":
        return DetachNotice(child=int(data["child"]))
    raise ValueError(f"unknown message type tag {kind!r}")


def save_trace(trace: ExecutionTrace, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> ExecutionTrace:
    return trace_from_dict(json.loads(Path(path).read_text()))
