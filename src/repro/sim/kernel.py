"""Discrete-event simulation kernel.

A minimal, deterministic DES: a binary heap of timed callbacks with a
monotone tie-break counter.  Determinism is a first-class requirement
(DESIGN.md §4): all randomness flows through named
``numpy.random.Generator`` streams forked from a single seed, so a
``(seed, workload, topology)`` triple reproduces the exact same trace,
detections and metric counters on every run.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

import numpy as np

__all__ = ["Simulator", "ScheduledEvent"]

#: Seeds accepted by :class:`Simulator` — a plain int (legacy, keeps the
#: historical stream derivation byte-stable) or a
#: :class:`numpy.random.SeedSequence`, typically one spawned per shard
#: by :class:`~repro.experiments.parallel.ShardedRunner`.
SimSeed = Union[int, np.random.SeedSequence]


@dataclass(order=True)
class ScheduledEvent:
    time: float
    tie: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)
    #: owning simulator while the event sits in its heap; cleared on pop
    #: so late cancels of executed events don't skew the tombstone count
    _sim: Optional["Simulator"] = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()


class Simulator:
    """Event loop with named deterministic RNG streams.

    Parameters
    ----------
    seed:
        Master seed.  Stream identity depends only on a stream's name,
        never on creation order:

        * an **int** seed keeps the historical derivation
          ``SeedSequence([seed, crc32(name)])`` byte-stable — the compat
          path every pre-existing experiment (and the sharded runner's
          ``workers=1`` determinism contract) relies on;
        * a :class:`numpy.random.SeedSequence` (e.g. a child spawned via
          ``SeedSequence.spawn`` for one shard of a parallel sweep)
          derives each stream by *extending the spawn key* with the
          name's raw UTF-8 bytes.  No hashing is involved, so two
          distinct shard seeds can never collide on a stream the way two
          ints colliding with a crc32 could — the spawn-key tree keys
          streams apart by construction.
    """

    def __init__(self, seed: SimSeed = 0, *, log_capacity: Optional[int] = None) -> None:
        from ..obs.telemetry import Telemetry
        from .eventlog import EventLog

        self.now: float = 0.0
        self.seed = seed
        self._seedseq: Optional[np.random.SeedSequence] = (
            seed if isinstance(seed, np.random.SeedSequence) else None
        )
        self._heap: list[ScheduledEvent] = []
        self._tie = 0
        self._cancelled_in_heap = 0
        self.heap_compactions = 0
        self._rngs: Dict[str, np.random.Generator] = {}
        self.events_executed = 0
        #: structured observability log (see repro.sim.eventlog);
        #: ``log_capacity`` bounds it to a ring buffer for long runs
        self.log = EventLog(capacity=log_capacity)
        #: metrics registry + causal span tracker (see repro.obs)
        self.telemetry = Telemetry()

    def emit(self, kind: str, node=None, **fields) -> None:
        """Record a structured observability event at the current time."""
        self.log.emit(self.now, kind, node, **fields)

    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """The named RNG stream (created on first use)."""
        gen = self._rngs.get(name)
        if gen is None:
            if self._seedseq is not None:
                # Collision-free: the stream is a SeedSequence child
                # keyed by the name's raw bytes under this simulator's
                # own spawn key — no hash, so distinct (shard, name)
                # pairs are distinct by construction.
                sequence = np.random.SeedSequence(
                    entropy=self._seedseq.entropy,
                    spawn_key=tuple(self._seedseq.spawn_key)
                    + tuple(name.encode("utf-8")),
                )
            else:
                # Legacy int-seed shim: byte-stable with every recorded
                # baseline (regression-tested in tests/sim/test_kernel).
                key = zlib.crc32(name.encode("utf-8"))
                sequence = np.random.SeedSequence([self.seed, key])
            gen = np.random.default_rng(sequence)
            self._rngs[name] = gen
        return gen

    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> ScheduledEvent:
        """Run *action* ``delay`` time units from now (``delay >= 0``)."""
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> ScheduledEvent:
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        event = ScheduledEvent(time=time, tie=self._tie, action=action, _sim=self)
        self._tie += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # lazy tombstone compaction
    #
    # Cancelled events stay in the heap as tombstones until popped; with
    # heavy timer churn (heartbeat resets every message) they can come to
    # dominate the heap and inflate every push/pop by O(log dead).  When
    # the dead fraction exceeds half (past a small absolute floor, so
    # tiny sims never bother) the heap is rebuilt with the live events
    # only.  ``heapify`` keeps determinism: pop order is the strict
    # (time, tie) total order regardless of internal layout.
    _COMPACT_MIN_CANCELLED = 64

    def _note_cancelled(self) -> None:
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > self._COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.heap_compactions += 1

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event; False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._sim = None
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self.now = event.time
            event.action()
            self.events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event heap, optionally bounded by time or count."""
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                head._sim = None
                self._cancelled_in_heap -= 1
                continue
            if until is not None and head.time > until:
                self.now = until
                return
            if not self.step():
                return
            executed += 1
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events awaiting execution — O(1) now
        that tombstones are counted instead of scanned."""
        return len(self._heap) - self._cancelled_in_heap
