"""Message types for the two planes of the simulation.

Application plane (drives vector clocks and the predicate):

* :class:`AppMessage` — the monitored computation's own traffic; its
  piggybacked timestamp updates the receiver's vector clock per the
  rules of Section II-A.

Control plane (the detection overlay; does *not* tick application
vector clocks):

* :class:`IntervalReport` — a (possibly aggregated) interval sent to a
  parent (hierarchical) or routed hop-by-hop to the sink (centralized).
* :class:`Heartbeat` — the liveness signal of Section III-F.
* :class:`AttachRequest` / :class:`AttachAccept` — spanning-tree repair
  handshake after a failure.
* :class:`DetachNotice` — an orphaned subtree root telling a stale
  parent's replacement bookkeeping it moved (used when repair reattaches
  a subtree below a different parent than before).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..clocks import Timestamp
from ..intervals import Interval

__all__ = [
    "AppMessage",
    "IntervalReport",
    "Heartbeat",
    "AttachRequest",
    "AttachAccept",
    "DetachNotice",
]


@dataclass(frozen=True)
class AppMessage:
    """Application traffic: payload plus piggybacked vector timestamp."""

    payload: object
    piggyback: Timestamp


@dataclass(frozen=True)
class IntervalReport:
    """An interval travelling the control plane.

    ``origin`` is the process whose detector emitted the interval (the
    interval's owner); ``dest`` is the final recipient — for the
    hierarchical algorithm always the immediate parent (one hop), for
    the centralized algorithm the sink, reached by forwarding along the
    tree (each hop is counted as one message, per Section IV-A).

    ``transport_seq`` numbers reports 0, 1, 2, … within one
    origin→dest attachment epoch; receivers reorder on it because
    channels are not FIFO.  It is distinct from the interval's own
    per-owner ``seq``, which survives re-attachments.
    """

    origin: int
    dest: int
    interval: Interval
    transport_seq: int = 0


@dataclass(frozen=True)
class Heartbeat:
    sender: int


@dataclass(frozen=True)
class AttachRequest:
    """Orphaned subtree root asks a neighbour to adopt it."""

    child: int
    # Set of processes in the requesting subtree, so the new parent can
    # sanity-check it is not creating a cycle.
    subtree: frozenset


@dataclass(frozen=True)
class AttachAccept:
    parent: int


@dataclass(frozen=True)
class DetachNotice:
    child: int


def payload_entries(message: object) -> int:
    """Wire size of a message in integer *entries* (the unit of the
    paper's O(n)-per-message analysis: one vector component).

    * AppMessage: the piggybacked vector timestamp (n) + 1 for payload;
    * IntervalReport: the interval's two bounds (2n) + 2 ids + seq —
      aggregated intervals ship only their bounds, which is the whole
      point of ``⊓`` (provenance is a simulation artifact, not wire
      data);
    * token messages (see roles_token): present candidates (2n each) +
      the needs set (n) — counted via duck typing to avoid an import
      cycle;
    * everything else (heartbeats, repair handshakes): O(1).
    """
    if isinstance(message, AppMessage):
        return int(message.piggyback.shape[0]) + 1
    if isinstance(message, IntervalReport):
        return 2 * message.interval.n + 3
    state = getattr(message, "state", None)
    if state is not None and hasattr(state, "heads"):
        n = len(state.heads)
        present = sum(1 for iv in state.heads.values() if iv is not None)
        vector_len = next(
            (iv.n for iv in state.heads.values() if iv is not None), n
        )
        return 2 * vector_len * present + n + 2
    return 2
