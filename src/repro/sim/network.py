"""The simulated network: asynchronous, reliable, non-FIFO channels.

Channels follow the paper's model (Section II-A): message delivery is
asynchronous with unbounded, variable delay and *no* FIFO guarantee —
each message samples its own per-hop delay, so later messages can
overtake earlier ones.  Channels are reliable between live nodes;
messages to, from, or routed *through* a crashed node are dropped
(crash-stop failures, Section III-F).

Two delivery primitives:

* :meth:`Network.send` — one hop along an edge of the communication
  graph.  Used for application traffic between neighbours, hierarchical
  interval reports (always to the immediate parent) and heartbeats.
* :meth:`Network.send_routed` — hop-by-hop forwarding along an explicit
  route.  Used by the centralized baseline, whose reports must reach
  the sink across ``h - level`` hops; every hop increments the message
  counters, exactly the accounting of Eq. (12)–(14).

All message counts are recorded per plane/type for the experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Sequence, Tuple

import networkx as nx

from ..clocks.encoding import best_encoding
from .kernel import Simulator
from .messages import IntervalReport, payload_entries

__all__ = [
    "Network",
    "WireCodec",
    "DelayModel",
    "uniform_delay",
    "exponential_delay",
    "lognormal_delay",
    "distance_delay",
]

#: Samples a one-hop latency: ``(rng, src, dst) -> float``.
DelayModel = Callable[[object, int, int], float]


def uniform_delay(low: float = 0.5, high: float = 1.5) -> DelayModel:
    """Per-hop delay uniform in ``[low, high)`` — non-FIFO for high > low."""

    def sample(rng, src: int, dst: int) -> float:
        return float(rng.uniform(low, high))

    return sample


def exponential_delay(mean: float = 1.0) -> DelayModel:
    """Memoryless per-hop delay (heavily non-FIFO)."""

    def sample(rng, src: int, dst: int) -> float:
        return float(rng.exponential(mean))

    return sample


def lognormal_delay(median: float = 1.0, sigma: float = 0.5) -> DelayModel:
    """Heavy-tailed per-hop delay — the shape real RTT distributions
    take; occasional stragglers exercise the reorder buffers hard."""

    import math

    mu = math.log(median)

    def sample(rng, src: int, dst: int) -> float:
        return float(rng.lognormal(mu, sigma))

    return sample


def distance_delay(
    positions, *, propagation: float = 1.0, jitter: float = 0.2
) -> DelayModel:
    """Per-hop delay proportional to Euclidean distance plus jitter.

    For geometric (WSN) topologies whose nodes carry coordinates —
    pass ``nx.get_node_attributes(g, "pos")`` or any ``{node: (x, y)}``
    mapping.  Nodes without coordinates fall back to unit distance.
    """

    import math

    def sample(rng, src: int, dst: int) -> float:
        a, b = positions.get(src), positions.get(dst)
        if a is None or b is None:
            dist = 1.0
        else:
            dist = math.dist(a, b)
        return propagation * dist + float(rng.uniform(0, jitter))

    return sample


class WireCodec:
    """Adaptive timestamp compression for :class:`IntervalReport` wire
    accounting (Section IV's O(n)-per-message factor).

    Models a sender that picks the cheapest of raw / sparse /
    differential (:func:`repro.clocks.best_encoding`) for each of a
    report's two bounds, with the differential reference being the
    previous report sent on the same ``origin → dest`` channel — the
    Singhal–Kshemkalyani idealization (sender and receiver share the
    reference; reordering is resolved by ``transport_seq`` before the
    reference advances).

    Only the *entries* accounting changes: the simulator still delivers
    the original message object, so detection output is untouched.
    Encoding is priced **once per report**: the memo (a small LRU keyed
    by ``(origin, dest, transport_seq, interval.key())``) lets the
    centralized baseline's hop-by-hop forwarding charge every hop
    without re-encoding at each one.
    """

    __slots__ = ("_refs", "_memo", "_memo_capacity", "encoded_reports", "memo_hits")

    def __init__(self, memo_capacity: int = 4096) -> None:
        self._refs: Dict[Tuple[int, int], tuple] = {}
        self._memo: OrderedDict = OrderedDict()
        self._memo_capacity = memo_capacity
        self.encoded_reports = 0
        self.memo_hits = 0

    def entries(self, message: IntervalReport) -> int:
        """Wire cost of *message* in integer entries (bounds + 2 ids + seq)."""
        interval = message.interval
        memo_key = (message.origin, message.dest, message.transport_seq, interval.key())
        memo = self._memo
        cached = memo.get(memo_key)
        if cached is not None:
            self.memo_hits += 1
            memo.move_to_end(memo_key)
            return cached
        channel = (message.origin, message.dest)
        lo_ref, hi_ref = self._refs.get(channel, (None, None))
        _, lo_cost = best_encoding(interval.lo, lo_ref)
        _, hi_cost = best_encoding(interval.hi, hi_ref)
        entries = lo_cost + hi_cost + 3
        self._refs[channel] = (interval.lo, interval.hi)
        memo[memo_key] = entries
        if len(memo) > self._memo_capacity:
            memo.popitem(last=False)
        self.encoded_reports += 1
        return entries


class Network:
    """Message fabric over a communication graph.

    With ``wire_encoding=True``, :class:`IntervalReport` bandwidth is
    accounted through a :class:`WireCodec` (compressed entries) instead
    of :func:`payload_entries` (raw ``2n + 3``); all other counters and
    all delivery behavior are unchanged.
    """

    def __init__(
        self,
        sim: Simulator,
        graph: nx.Graph,
        delay_model: Optional[DelayModel] = None,
        *,
        enforce_edges: bool = True,
        wire_encoding: bool = False,
    ) -> None:
        self.sim = sim
        self.graph = graph
        self.delay_model = delay_model or uniform_delay()
        self.enforce_edges = enforce_edges
        self.codec: Optional[WireCodec] = WireCodec() if wire_encoding else None
        self._handlers: Dict[int, Callable[[int, object, str], None]] = {}
        self._dead: set[int] = set()
        # Message counters live in the run's metrics registry
        # (repro.obs): Counter semantics are unchanged — each is a
        # collections.Counter — but the registry exposes them to the
        # Prometheus exporter and the repro-trace CLI for free.
        registry = sim.telemetry.registry
        self.sent = registry.counter_vec(
            "repro_net_sent_total",
            "Messages sent, hop-counted, by plane and message type.",
            ("plane", "type"),
        )
        self.sent_entries = registry.counter_vec(  # bandwidth, vector entries
            "repro_net_sent_entries_total",
            "Transmitted volume in vector entries, by plane and type.",
            ("plane", "type"),
        )
        self.delivered = registry.counter_vec(
            "repro_net_delivered_total",
            "Messages delivered to a live handler, by plane and type.",
            ("plane", "type"),
        )
        self.dropped = registry.counter_vec(
            "repro_net_dropped_total",
            "Messages dropped (dead node or no handler), by plane and type.",
            ("plane", "type"),
        )
        self.per_node_sent = registry.counter_vec(
            "repro_net_node_sent_total",
            "Messages sent per node, hop-counted.",
            ("node",),
        )

    # ------------------------------------------------------------------
    def attach(self, node_id: int, handler: Callable[[int, object, str], None]) -> None:
        """Register *handler(src, message, plane)* for deliveries to *node_id*."""
        self._handlers[node_id] = handler

    def fail(self, node_id: int) -> None:
        """Crash-stop *node_id*: it neither sends nor receives from now on."""
        self._dead.add(node_id)

    def revive(self, node_id: int) -> None:
        """Bring a crashed node back (see repro.fault.rejoin)."""
        self._dead.discard(node_id)

    def is_alive(self, node_id: int) -> bool:
        return node_id not in self._dead

    def _delay(self, src: int, dst: int) -> float:
        return self.delay_model(self.sim.rng("net"), src, dst)

    def _check_edge(self, src: int, dst: int) -> None:
        if self.enforce_edges and not self.graph.has_edge(src, dst):
            raise ValueError(f"no communication link between {src} and {dst}")

    def _key(self, plane: str, message: object) -> tuple:
        return (plane, type(message).__name__)

    def _entries(self, message: object) -> int:
        if self.codec is not None and isinstance(message, IntervalReport):
            return self.codec.entries(message)
        return payload_entries(message)

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: object, plane: str = "app") -> None:
        """One-hop send along an edge (counts one message)."""
        self._check_edge(src, dst)
        key = self._key(plane, message)
        if src in self._dead:
            return
        self.sent[key] += 1
        self.sent_entries[key] += self._entries(message)
        self.per_node_sent[src] += 1
        delay = self._delay(src, dst)

        def deliver() -> None:
            if dst in self._dead or src in self._dead:
                self.dropped[key] += 1
                return
            handler = self._handlers.get(dst)
            if handler is None:
                self.dropped[key] += 1
                return
            self.delivered[key] += 1
            handler(src, message, plane)

        self.sim.schedule(delay, deliver)

    def send_routed(
        self, route: Sequence[int], message: object, plane: str = "control"
    ) -> None:
        """Forward *message* hop-by-hop along *route* (``route[0]`` is the
        sender, ``route[-1]`` the destination).  Each hop is one message;
        a dead node anywhere on the path silently drops it."""
        if len(route) < 2:
            raise ValueError("route needs at least two nodes")
        self._advance(list(route), 0, message, plane)

    def _advance(self, route: list, hop: int, message: object, plane: str) -> None:
        src, dst = route[hop], route[hop + 1]
        self._check_edge(src, dst)
        key = self._key(plane, message)
        if src in self._dead:
            self.dropped[key] += 1
            return
        self.sent[key] += 1
        self.sent_entries[key] += self._entries(message)
        self.per_node_sent[src] += 1
        delay = self._delay(src, dst)

        def deliver() -> None:
            if dst in self._dead:
                self.dropped[key] += 1
                return
            if hop + 2 == len(route):
                handler = self._handlers.get(dst)
                if handler is None:
                    self.dropped[key] += 1
                    return
                self.delivered[key] += 1
                handler(route[0], message, plane)
            else:
                self._advance(route, hop + 1, message, plane)

        self.sim.schedule(delay, deliver)

    # ------------------------------------------------------------------
    def messages_sent(self, plane: Optional[str] = None) -> int:
        """Total messages sent (hop count), optionally for one plane."""
        if plane is None:
            return sum(self.sent.values())
        return sum(v for (p, _t), v in self.sent.items() if p == plane)

    def messages_by_type(self) -> Dict[tuple, int]:
        return dict(self.sent)

    def bandwidth_entries(self, plane: Optional[str] = None) -> int:
        """Total transmitted volume in vector entries (hop-counted),
        optionally restricted to one plane."""
        if plane is None:
            return sum(self.sent_entries.values())
        return sum(v for (p, _t), v in self.sent_entries.items() if p == plane)
