"""Discrete-event simulation substrate (asynchronous non-FIFO network)."""

from .eventlog import EventLog, LogRecord
from .kernel import ScheduledEvent, Simulator
from .messages import (
    AppMessage,
    AttachAccept,
    AttachRequest,
    DetachNotice,
    Heartbeat,
    IntervalReport,
)
from .network import (
    Network,
    WireCodec,
    distance_delay,
    exponential_delay,
    lognormal_delay,
    uniform_delay,
)
from .process import DetectorRole, MonitoredProcess
from .serialize import (
    detection_from_dict,
    detection_to_dict,
    detections_from_dicts,
    detections_to_dicts,
    interval_from_dict,
    interval_to_dict,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from .trace import EventKind, ExecutionTrace, ProcessEvent

__all__ = [
    "AppMessage",
    "AttachAccept",
    "AttachRequest",
    "DetachNotice",
    "DetectorRole",
    "EventLog",
    "EventKind",
    "ExecutionTrace",
    "Heartbeat",
    "IntervalReport",
    "LogRecord",
    "MonitoredProcess",
    "Network",
    "ProcessEvent",
    "ScheduledEvent",
    "Simulator",
    "WireCodec",
    "distance_delay",
    "exponential_delay",
    "lognormal_delay",
    "load_trace",
    "save_trace",
    "detection_to_dict",
    "detection_from_dict",
    "detections_to_dicts",
    "detections_from_dicts",
    "interval_to_dict",
    "interval_from_dict",
    "trace_from_dict",
    "trace_to_dict",
    "uniform_delay",
]
