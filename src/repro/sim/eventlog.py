"""Structured simulation event log.

Operations-level observability for runs: detectors, heartbeat monitors
and the repair machinery emit structured records (kind + fields) into
the simulator's log, so an experiment, example or debugging session can
reconstruct *why* the system did what it did without print-debugging.

The log is always on (appending a dataclass is cheap at simulation
scale) and queryable by kind; ``render()`` produces the narrated
timeline the fault-tolerance example prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["LogRecord", "EventLog"]


@dataclass(frozen=True)
class LogRecord:
    time: float
    kind: str
    node: Optional[int]
    fields: tuple  # sorted (key, value) pairs, hashable

    def get(self, key: str, default=None):
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def __str__(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in self.fields)
        who = f"P{self.node}" if self.node is not None else "-"
        return f"[{self.time:10.2f}] {who:>5} {self.kind:<18} {detail}"


class EventLog:
    """Append-only structured log with kind-indexed queries."""

    def __init__(self) -> None:
        self.records: List[LogRecord] = []
        self._by_kind: Dict[str, List[LogRecord]] = {}

    def emit(self, time: float, kind: str, node: Optional[int] = None, **fields) -> None:
        record = LogRecord(
            time=time,
            kind=kind,
            node=node,
            fields=tuple(sorted(fields.items())),
        )
        self.records.append(record)
        self._by_kind.setdefault(kind, []).append(record)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def of_kind(self, kind: str) -> List[LogRecord]:
        return list(self._by_kind.get(kind, []))

    def kinds(self) -> List[str]:
        return sorted(self._by_kind)

    def between(self, start: float, end: float) -> Iterator[LogRecord]:
        return (r for r in self.records if start <= r.time <= end)

    def render(self, *, kinds: Optional[List[str]] = None, limit: int = 0) -> str:
        records = self.records
        if kinds is not None:
            wanted = set(kinds)
            records = [r for r in records if r.kind in wanted]
        if limit and len(records) > limit:
            records = records[-limit:]
        return "\n".join(str(r) for r in records)
