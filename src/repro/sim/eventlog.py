"""Structured simulation event log.

Operations-level observability for runs: detectors, heartbeat monitors
and the repair machinery emit structured records (kind + fields) into
the simulator's log, so an experiment, example or debugging session can
reconstruct *why* the system did what it did without print-debugging.

The log is always on (appending a dataclass is cheap at simulation
scale) and queryable by kind; ``render()`` produces the narrated
timeline the fault-tolerance example prints.  Two features keep it
viable at million-event scale:

* ``EventLog(capacity=...)`` turns it into a ring buffer that retains
  only the newest *capacity* records (``dropped`` counts evictions);
* ``subscribe(kind, callback)`` streams records to a callback as they
  are emitted, so consumers that only need a live feed (exporters,
  alerting hooks) never require retention at all.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["LogRecord", "EventLog"]


@dataclass(frozen=True)
class LogRecord:
    time: float
    kind: str
    node: Optional[int]
    fields: tuple  # sorted (key, value) pairs, hashable

    def as_dict(self) -> dict:
        """Field view as a dict (built once, cached on the record)."""
        cached = getattr(self, "_dict", None)
        if cached is None:
            cached = dict(self.fields)
            object.__setattr__(self, "_dict", cached)
        return cached

    def get(self, key: str, default=None):
        return self.as_dict().get(key, default)

    def __str__(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in self.fields)
        who = f"P{self.node}" if self.node is not None else "-"
        return f"[{self.time:10.2f}] {who:>5} {self.kind:<18} {detail}"


class EventLog:
    """Structured log with kind-indexed and time-range queries.

    Parameters
    ----------
    capacity:
        ``None`` (default) retains every record — the right mode for
        tests and short runs.  An integer turns the log into a ring
        buffer of that many records; evictions are counted in
        ``dropped`` and subscribers still see every record.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be a positive integer or None")
        self.capacity = capacity
        self.records: "deque[LogRecord] | List[LogRecord]" = (
            [] if capacity is None else deque()
        )
        self.dropped = 0
        self._by_kind: Dict[str, deque] = {}
        self._subscribers: Dict[Optional[str], List[Callable[[LogRecord], None]]] = {}
        # emit() keeps _times in lockstep with records (unbounded mode
        # only) so between() can bisect instead of scanning.
        self._times: List[float] = []
        self._sorted = True

    def emit(self, time: float, kind: str, node: Optional[int] = None, **fields) -> None:
        record = LogRecord(
            time=time,
            kind=kind,
            node=node,
            fields=tuple(sorted(fields.items())),
        )
        if self.capacity is not None and len(self.records) >= self.capacity:
            oldest = self.records.popleft()
            # The globally oldest record is also the oldest of its kind.
            self._by_kind[oldest.kind].popleft()
            self.dropped += 1
        self.records.append(record)
        self._by_kind.setdefault(kind, deque()).append(record)
        if self.capacity is None:
            if self._times and time < self._times[-1]:
                self._sorted = False
            self._times.append(time)
        for callback in self._subscribers.get(kind, ()):
            callback(record)
        for callback in self._subscribers.get(None, ()):
            callback(record)

    # ------------------------------------------------------------------
    def subscribe(
        self, kind: Optional[str], callback: Callable[[LogRecord], None]
    ) -> Callable[[], None]:
        """Stream records of *kind* (``None`` = every kind) to *callback*
        as they are emitted; returns an unsubscribe function."""
        callbacks = self._subscribers.setdefault(kind, [])
        callbacks.append(callback)

        def unsubscribe() -> None:
            try:
                callbacks.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def of_kind(self, kind: str) -> List[LogRecord]:
        return list(self._by_kind.get(kind, ()))

    def kinds(self) -> List[str]:
        return sorted(k for k, records in self._by_kind.items() if records)

    def between(self, start: float, end: float) -> List[LogRecord]:
        """Records with ``start <= time <= end``.  O(log n + k) in the
        common case (unbounded log, monotone emit times)."""
        if self.capacity is None and self._sorted:
            lo = bisect_left(self._times, start)
            hi = bisect_right(self._times, end)
            return self.records[lo:hi]
        return [r for r in self.records if start <= r.time <= end]

    def render(self, *, kinds: Optional[List[str]] = None, limit: int = 0) -> str:
        records = list(self.records)
        if kinds is not None:
            wanted = set(kinds)
            records = [r for r in records if r.kind in wanted]
        if limit and len(records) > limit:
            records = records[-limit:]
        return "\n".join(str(r) for r in records)
