"""Simulated application processes.

A :class:`MonitoredProcess` executes the *application plane*: internal
events, sends and receives, all driving its vector clock per the rules
of Section II-A, with a boolean local predicate attached to its state.
Maximal runs of predicate-true events become
:class:`~repro.intervals.Interval` objects; whenever one completes (the
predicate falls), the process hands it to its *detector role* — the
control-plane personality plugged in by the experiment harness
(hierarchical node, centralized reporter/sink, …).

Keeping the two planes separate mirrors the theory: detection traffic
must not perturb the happens-before structure of the monitored
computation, so control messages never touch the application vector
clock.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from ..clocks import Timestamp, VectorClock
from ..intervals import Interval
from .kernel import Simulator
from .messages import AppMessage
from .network import Network
from .trace import EventKind, ExecutionTrace

__all__ = ["DetectorRole", "MonitoredProcess"]


class DetectorRole(Protocol):
    """Control-plane personality plugged into a :class:`MonitoredProcess`."""

    def bind(self, process: "MonitoredProcess") -> None:
        """Called once when attached to its process."""

    def on_local_interval(self, interval: Interval) -> None:
        """A local-predicate interval completed at the host process."""

    def on_control_message(self, src: int, message: object) -> None:
        """A control-plane message arrived."""

    def on_start(self) -> None:
        """The simulation is starting (schedule heartbeats etc.)."""


class MonitoredProcess:
    """One process of the monitored distributed computation."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        network: Network,
        trace: ExecutionTrace,
        role: Optional[DetectorRole] = None,
    ) -> None:
        self.pid = pid
        self.sim = sim
        self.network = network
        self.trace = trace
        self.clock = VectorClock(trace.n, pid)
        self.predicate = trace.initial_predicate[pid]
        self.role = role
        self.alive = True
        self._run_start: Optional[Timestamp] = None
        self._run_start_time: Optional[float] = None
        self._run_last: Optional[Timestamp] = None
        self._interval_seq = 0
        self.local_intervals: List[Interval] = []
        self._count_interval = sim.telemetry.registry.counter_handle(
            "repro_intervals_total",
            "Local predicate intervals completed, per node.",
            ("node",),
            key=pid,
        )
        # Completed intervals are counted when the span queue folds —
        # record entries arrive under the ``None`` event key.
        sim.telemetry.spans.on_flush(
            pid,
            lambda counts, _inc=self._count_interval: (
                counts.get(None) and _inc(counts[None])
            ),
        )
        network.attach(pid, self._on_message)
        if role is not None:
            role.bind(self)

    # ------------------------------------------------------------------
    # application-plane events
    # ------------------------------------------------------------------
    def _record(self, ts: Timestamp, kind: str) -> None:
        self.trace.record(self.pid, ts, kind, self.predicate, time=self.sim.now)
        if self.predicate:
            if self._run_start is None:
                self._run_start = ts
                self._run_start_time = self.sim.now
            self._run_last = ts
        elif self._run_start is not None:
            self._close_interval()

    def _close_interval(self) -> None:
        interval = Interval(
            owner=self.pid,
            seq=self._interval_seq,
            lo=self._run_start,
            hi=self._run_last,
        )
        self._interval_seq += 1
        self._run_start = None
        self._run_last = None
        self.local_intervals.append(interval)
        # Every interval opens a span keyed by its identity, so the
        # detection layers can parent reports and alarms back onto it.
        # ``record_interval`` is the tracker's queued fast path; the
        # per-node interval counter folds from the same queue entry.
        now = self.sim.now
        self.sim.telemetry.spans.record_interval(
            interval,
            self._run_start_time if self._run_start_time is not None else now,
            now,
            self.pid,
        )
        self._run_start_time = None
        if self.role is not None:
            self.role.on_local_interval(interval)

    def internal_event(self) -> Timestamp:
        """Execute an internal event (current predicate value applies)."""
        if not self.alive:
            raise RuntimeError(f"P{self.pid} is crashed")
        ts = self.clock.tick()
        self._record(ts, EventKind.INTERNAL)
        return ts

    def set_predicate(self, value: bool) -> Timestamp:
        """Change the local predicate with an internal event.

        The event carries the *new* value: a rising edge's event is the
        interval's ``min(x)``; a falling edge's event is the first
        event after ``max(x)`` and completes the interval.
        """
        self.predicate = bool(value)
        return self.internal_event()

    def send_app(self, dst: int, payload: object = None) -> Timestamp:
        """Send an application message to a neighbour (send event)."""
        if not self.alive:
            raise RuntimeError(f"P{self.pid} is crashed")
        ts = self.clock.send()
        self._record(ts, EventKind.SEND)
        self.network.send(self.pid, dst, AppMessage(payload, ts), plane="app")
        return ts

    # ------------------------------------------------------------------
    # control-plane helpers for roles
    # ------------------------------------------------------------------
    def send_control(self, dst: int, message: object) -> None:
        self.network.send(self.pid, dst, message, plane="control")

    def send_control_routed(self, route, message: object) -> None:
        self.network.send_routed(route, message, plane="control")

    # ------------------------------------------------------------------
    def _on_message(self, src: int, message: object, plane: str) -> None:
        if not self.alive:
            return
        if plane == "app":
            assert isinstance(message, AppMessage)
            ts = self.clock.receive(message.piggyback)
            self._record(ts, EventKind.RECV)
            self.on_app_message(src, message.payload, ts)
        else:
            if self.role is not None:
                self.role.on_control_message(src, message)

    def on_app_message(self, src: int, payload: object, ts: Timestamp) -> None:
        """Hook for workload drivers; default is a plain receive event."""

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.role is not None:
            self.role.on_start()

    def crash(self) -> None:
        """Crash-stop: flush nothing, say nothing (Section III-F model)."""
        self.alive = False
        self.network.fail(self.pid)
        on_crash = getattr(self.role, "on_crash", None)
        if on_crash is not None:
            on_crash()

    def revive(self) -> None:
        """Restart after a crash (stable storage keeps the vector
        clock and interval numbering, so the local event order stays
        monotone across incarnations).  The detector role must be
        re-wired separately — see :mod:`repro.fault.rejoin`."""
        self.alive = True
        self.network.revive(self.pid)
        self.predicate = False
        self._run_start = None
        self._run_start_time = None
        self._run_last = None

    def finish(self) -> None:
        """End-of-run: close a trailing open interval, if any.

        Real monitoring never needs this (an open interval simply has
        not completed), but experiments want the full workload counted.
        """
        if self.alive and self._run_start is not None:
            self.set_predicate(False)
