"""Unit tests: run summaries."""

from repro.analysis import render_summary, summarize_run
from repro.experiments import run_hierarchical
from repro.topology import SpanningTree, tree_with_chords
from repro.workload import EpochConfig


def run_with_failure():
    tree = SpanningTree.regular(2, 3)
    graph = tree_with_chords(tree.as_graph(), extra_edges=8, seed=1)
    return run_hierarchical(
        tree, graph=graph, seed=1,
        config=EpochConfig(epochs=10, sync_prob=1.0, drain_time=100.0),
        failures=[(60.0, 5)], revivals=[(140.0, 5)],
    )


class TestSummarizeRun:
    def test_counts_consistent(self):
        result = run_with_failure()
        summary = summarize_run(result)
        assert summary.n == 7
        assert summary.detections == len(result.detections)
        assert summary.full_detections + summary.partial_detections == summary.detections
        assert summary.partial_detections > 0  # the 6-member window
        assert summary.crashes == 1 and summary.rejoins == 1
        assert summary.control_messages == result.metrics.control_messages
        assert summary.latency_mean is not None and summary.latency_mean > 0

    def test_alpha_levels_present(self):
        summary = summarize_run(run_with_failure())
        assert summary.realized_alpha_by_level.get(1) == 1.0
        assert all(0 <= a <= 1 for a in summary.realized_alpha_by_level.values())

    def test_render_contains_key_lines(self):
        summary = summarize_run(run_with_failure())
        text = render_summary(summary, title="My run")
        assert text.startswith("My run")
        assert "detections (full / partial)" in text
        assert "crashes / rejoins / partitions" in text
        assert "realized alpha" in text

    def test_no_failure_run_omits_failure_line(self):
        result = run_hierarchical(
            SpanningTree.regular(2, 2), seed=1, config=EpochConfig(epochs=3)
        )
        text = render_summary(summarize_run(result))
        assert "crashes" not in text
