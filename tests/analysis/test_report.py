"""Unit tests: plain-text table/series rendering."""

from repro.analysis import render_kv, render_series, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["name", "value"], [["alpha", 1], ["b", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "alpha" in lines[2] and "22" in lines[3]
        # Columns align: every row has the separator at the same offset.
        sep = lines[1]
        assert set(sep.replace(" ", "")) == {"-"}

    def test_wide_cells_stretch_columns(self):
        out = render_table(["x"], [["very-long-cell-content"]])
        assert "very-long-cell-content" in out


class TestRenderSeries:
    def test_series_columns(self):
        out = render_series(
            "My figure", [2, 3], {"curve": [1.5, 2.5], "other": [0.1, 0.2]}
        )
        assert out.startswith("My figure")
        assert "curve" in out and "other" in out
        assert "2.5" in out


class TestRenderKv:
    def test_pairs(self):
        out = render_kv("Stats", {"messages": 10, "alpha": 0.4})
        assert "Stats" in out
        assert "messages" in out and "10" in out

    def test_empty(self):
        assert render_kv("T", {}) == "T"
