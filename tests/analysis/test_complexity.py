"""Unit tests: the Section IV closed forms (and the Eq. 14 erratum)."""

import pytest

from repro.analysis import (
    centralized_messages,
    centralized_messages_paper_eq14,
    centralized_messages_sum,
    centralized_time_bound,
    hierarchical_messages,
    hierarchical_messages_sum,
    hierarchical_time_bound,
    paper_n,
    space_bound,
    table1_rows,
    tree_nodes,
)


class TestClosedFormsMatchDefinitions:
    def test_hierarchical_eq11_equals_direct_sum(self):
        for d in (2, 3, 4, 6):
            for h in range(2, 9):
                for alpha in (0.0, 0.1, 0.45, 0.9, 1.0):
                    closed = hierarchical_messages(20, d, h, alpha)
                    direct = hierarchical_messages_sum(20, d, h, alpha)
                    assert closed == pytest.approx(direct, rel=1e-12)

    def test_centralized_corrected_equals_eq12_sum(self):
        for d in (1, 2, 3, 4, 6):
            for h in range(2, 9):
                closed = centralized_messages(20, d, h)
                direct = centralized_messages_sum(20, d, h)
                assert closed == pytest.approx(direct, rel=1e-12)

    def test_paper_eq14_is_wrong(self):
        """The erratum: the printed Eq. (14) disagrees with its own
        definition Eq. (12) — e.g. 2p vs 10p at d=2, h=3, and it even
        goes negative at h=2."""
        assert centralized_messages_sum(1, 2, 3) == 10
        assert centralized_messages_paper_eq14(1, 2, 3) == 2
        assert centralized_messages_paper_eq14(1, 2, 2) < 0

    def test_eq14_undefined_at_d1(self):
        with pytest.raises(ValueError):
            centralized_messages_paper_eq14(1, 1, 3)


class TestShapes:
    def test_hierarchical_beats_centralized(self):
        """The paper's headline comparison holds with the corrected
        formula, for every practical (d, h, alpha)."""
        for d in (2, 3, 4):
            for h in range(3, 9):
                for alpha in (0.1, 0.45, 0.9):
                    hier = hierarchical_messages(20, d, h, alpha)
                    cent = centralized_messages(20, d, h)
                    assert hier < cent

    def test_gap_grows_with_height(self):
        ratios = [
            centralized_messages(20, 2, h) / hierarchical_messages(20, 2, h, 0.45)
            for h in range(3, 10)
        ]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))

    def test_smaller_alpha_fewer_messages(self):
        low = hierarchical_messages(20, 2, 6, 0.1)
        high = hierarchical_messages(20, 2, 6, 0.45)
        assert low < high

    def test_p_is_linear(self):
        assert hierarchical_messages(40, 2, 5, 0.3) == pytest.approx(
            2 * hierarchical_messages(20, 2, 5, 0.3)
        )
        assert centralized_messages(40, 2, 5) == pytest.approx(
            2 * centralized_messages(20, 2, 5)
        )

    def test_alpha_one_limit(self):
        # Eq. (11) at alpha -> 1 equals p d^(h-1) (h-1).
        assert hierarchical_messages(10, 2, 4, 1.0) == 10 * 8 * 3
        near = hierarchical_messages(10, 2, 4, 1 - 1e-12)
        assert near == pytest.approx(10 * 8 * 3, rel=1e-6)


class TestBoundsAndSizes:
    def test_tree_nodes(self):
        assert tree_nodes(2, 3) == 7
        assert tree_nodes(1, 5) == 5
        assert paper_n(2, 3) == 8
        with pytest.raises(ValueError):
            tree_nodes(0, 3)

    def test_time_bounds_ordering(self):
        """O(d^2 p n^2) < O(p n^3) whenever d^2 < n (h > 2)."""
        for d in (2, 3, 4):
            for h in (3, 4, 5):
                n = tree_nodes(d, h)
                assert hierarchical_time_bound(10, n, d) < centralized_time_bound(10, n)

    def test_space_bound(self):
        assert space_bound(10, 7) == 490

    def test_table1_rows_complete(self):
        rows = table1_rows()
        assert [r["metric"] for r in rows] == [
            "Space Complexity",
            "Time Complexity",
            "Message Complexity",
        ]
        assert all("hierarchical" in r and "centralized" in r for r in rows)

    def test_degenerate_heights(self):
        assert hierarchical_messages(10, 2, 1, 0.5) == 0.0
        assert centralized_messages(10, 2, 1) == 0.0
        with pytest.raises(ValueError):
            hierarchical_messages(10, 2, 0, 0.5)
