"""Unit tests: ASCII timing-diagram rendering."""

from repro.analysis import render_timeline
from repro.sim import ExecutionTrace
from repro.workload import ScriptedExecution, figure1_staggered_execution


class TestRenderTimeline:
    def test_empty_trace(self):
        out = render_timeline(ExecutionTrace(2))
        assert out.splitlines() == ["P0 |", "P1 |"]

    def test_lanes_and_marks(self):
        ex = ScriptedExecution(2)
        ex.set_pred(0, True)   # col 0: internal, predicate True -> 'I'
        ex.send(0, "m")        # col 1: send, True -> 'S'
        ex.recv(1, "m")        # col 2: recv at P1, False -> 'r'
        ex.set_pred(0, False)  # col 3: internal, False -> 'i'
        lines = render_timeline(ex.trace).splitlines()
        # P0 stays true through the recv gap (col 2 shaded '#').
        assert lines[0] == "P0 |IS#i"
        assert lines[1] == "P1 |..r."

    def test_shading_between_events(self):
        ex = ScriptedExecution(2)
        ex.set_pred(0, True)
        ex.internal(1)
        ex.internal(1)
        ex.set_pred(0, False)
        p0 = render_timeline(ex.trace).splitlines()[0]
        # Between its two events, P0's lane is shaded '#'.
        assert p0 == "P0 |I##i"

    def test_figure1_shows_staggered_intervals(self):
        out = render_timeline(figure1_staggered_execution().trace)
        p0, p1 = out.splitlines()
        # P0's predicate-true span starts before P1's and ends before it.
        assert p0.index("I") < p1.index("I")
        assert p0.rstrip("#.").rindex("S") < len(p1.rstrip("."))

    def test_width_padding(self):
        ex = ScriptedExecution(1)
        ex.internal(0)
        out = render_timeline(ex.trace, width=5)
        assert out == "P0 |i...."
