"""Unit tests: empirical metric collection."""

from repro.analysis import RunMetrics
from repro.analysis.metrics import NodeMetrics
from repro.experiments.harness import run_centralized, run_hierarchical
from repro.topology import SpanningTree
from repro.workload import EpochConfig


def node(pid, comparisons, queue=0, level=1):
    return NodeMetrics(
        pid=pid,
        level=level,
        comparisons=comparisons,
        detections=0,
        peak_queue_intervals=queue,
        messages_sent=0,
    )


class TestRunMetrics:
    def test_aggregates(self):
        m = RunMetrics(control_messages=5, app_messages=7)
        m.per_node = [node(0, 10, queue=2), node(1, 30, queue=4)]
        assert m.total_comparisons == 40
        assert m.max_comparisons_per_node == 30
        assert m.max_queue_per_node == 4
        assert m.total_peak_queue == 6

    def test_gini_extremes(self):
        even = RunMetrics(0, 0)
        even.per_node = [node(i, 10) for i in range(8)]
        assert even.comparisons_gini() == 0.0
        concentrated = RunMetrics(0, 0)
        concentrated.per_node = [node(0, 1000)] + [node(i, 0) for i in range(1, 8)]
        assert concentrated.comparisons_gini() > 0.8

    def test_gini_empty(self):
        assert RunMetrics(0, 0).comparisons_gini() == 0.0


class TestCollection:
    def test_centralized_concentrates_work_hierarchical_spreads_it(self):
        config = EpochConfig(epochs=6, sync_prob=0.8)
        hier = run_hierarchical(SpanningTree.regular(2, 3), seed=2, config=config)
        cent = run_centralized(SpanningTree.regular(2, 3), seed=2, config=config)
        # The Table I qualitative claim, measured:
        assert cent.metrics.comparisons_gini() > hier.metrics.comparisons_gini()
        assert cent.metrics.max_comparisons_per_node > hier.metrics.max_comparisons_per_node
        assert cent.metrics.max_queue_per_node >= hier.metrics.max_queue_per_node

    def test_realized_alpha_bounds(self):
        result = run_hierarchical(
            SpanningTree.regular(2, 3),
            seed=2,
            config=EpochConfig(epochs=6, sync_prob=0.5),
        )
        for level, alpha in result.metrics.realized_alpha_by_level.items():
            assert 0.0 <= alpha <= 1.0
        # Leaves trivially "detect" every local interval.
        assert result.metrics.realized_alpha_by_level[1] == 1.0

    def test_per_node_message_accounting_totals(self):
        result = run_hierarchical(
            SpanningTree.regular(2, 3),
            seed=2,
            config=EpochConfig(epochs=4, sync_prob=1.0),
        )
        per_node_total = sum(m.messages_sent for m in result.metrics.per_node)
        assert per_node_total == result.network.messages_sent()
