"""Unit tests: MonitoredProcess — app events, clocks, interval extraction."""

import networkx as nx
import pytest

from repro.sim import ExecutionTrace, MonitoredProcess, Network, Simulator, uniform_delay


def make_pair():
    sim = Simulator(seed=0)
    g = nx.Graph()
    g.add_edge(0, 1)
    net = Network(sim, g, uniform_delay(0.5, 0.6))
    trace = ExecutionTrace(2)
    p0 = MonitoredProcess(0, sim, net, trace)
    p1 = MonitoredProcess(1, sim, net, trace)
    return sim, net, trace, p0, p1


class TestClockIntegration:
    def test_internal_events_advance_clock(self):
        sim, net, trace, p0, p1 = make_pair()
        assert p0.internal_event().tolist() == [1, 0]
        assert p0.internal_event().tolist() == [2, 0]

    def test_app_message_merges_clocks(self):
        sim, net, trace, p0, p1 = make_pair()
        p1.internal_event()
        p0.send_app(1, "hi")
        sim.run()
        # P1's receive merged P0's [1,0] and ticked its own component.
        assert trace.events[1][-1].timestamp.tolist() == [1, 2]
        assert trace.events[1][-1].kind == "recv"

    def test_control_messages_do_not_touch_app_clock(self):
        sim, net, trace, p0, p1 = make_pair()
        p0.send_control(1, "ctrl")
        sim.run()
        assert p1.clock.peek().tolist() == [0, 0]
        assert trace.events[1] == []


class TestIntervalExtraction:
    def test_simple_interval(self):
        sim, net, trace, p0, p1 = make_pair()
        p0.set_predicate(True)
        p0.internal_event()
        p0.set_predicate(False)
        assert len(p0.local_intervals) == 1
        interval = p0.local_intervals[0]
        assert interval.lo.tolist() == [1, 0]
        assert interval.hi.tolist() == [2, 0]
        assert interval.owner == 0 and interval.seq == 0

    def test_events_during_interval_extend_it(self):
        sim, net, trace, p0, p1 = make_pair()
        p0.set_predicate(True)
        p0.send_app(1, "m")  # send inside the interval
        p0.set_predicate(False)
        assert p0.local_intervals[0].hi.tolist() == [2, 0]

    def test_multiple_intervals_sequence_numbers(self):
        sim, net, trace, p0, p1 = make_pair()
        for _ in range(3):
            p0.set_predicate(True)
            p0.set_predicate(False)
        assert [iv.seq for iv in p0.local_intervals] == [0, 1, 2]

    def test_interval_reported_to_role(self):
        class Recorder:
            def __init__(self):
                self.intervals = []

            def bind(self, process):
                pass

            def on_local_interval(self, interval):
                self.intervals.append(interval)

            def on_control_message(self, src, message):
                pass

            def on_start(self):
                pass

        sim = Simulator()
        g = nx.Graph()
        g.add_node(0)
        net = Network(sim, g)
        trace = ExecutionTrace(1)
        role = Recorder()
        p = MonitoredProcess(0, sim, net, trace, role)
        p.set_predicate(True)
        p.set_predicate(False)
        assert len(role.intervals) == 1

    def test_finish_closes_open_interval(self):
        sim, net, trace, p0, p1 = make_pair()
        p0.set_predicate(True)
        assert p0.local_intervals == []
        p0.finish()
        assert len(p0.local_intervals) == 1

    def test_finish_noop_when_closed(self):
        sim, net, trace, p0, p1 = make_pair()
        p0.set_predicate(True)
        p0.set_predicate(False)
        p0.finish()
        assert len(p0.local_intervals) == 1


class TestCrash:
    def test_crashed_process_rejects_events(self):
        sim, net, trace, p0, p1 = make_pair()
        p0.crash()
        with pytest.raises(RuntimeError):
            p0.internal_event()
        with pytest.raises(RuntimeError):
            p0.send_app(1, "x")

    def test_crashed_process_ignores_deliveries(self):
        sim, net, trace, p0, p1 = make_pair()
        p0.send_app(1, "x")
        p1.crash()
        sim.run()
        assert trace.events[1] == []
