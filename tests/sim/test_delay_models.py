"""Unit tests: the one-hop delay models."""

import numpy as np

from repro.detect import replay_centralized
from repro.experiments.harness import run_hierarchical
from repro.sim import (
    distance_delay,
    exponential_delay,
    lognormal_delay,
    uniform_delay,
)
from repro.topology import SpanningTree
from repro.workload import EpochConfig


RNG = np.random.default_rng(0)


class TestDelayModels:
    def test_uniform_bounds(self):
        model = uniform_delay(0.5, 1.5)
        samples = [model(RNG, 0, 1) for _ in range(200)]
        assert all(0.5 <= s < 1.5 for s in samples)

    def test_exponential_mean(self):
        model = exponential_delay(2.0)
        samples = [model(RNG, 0, 1) for _ in range(4000)]
        assert 1.8 < np.mean(samples) < 2.2

    def test_lognormal_median_and_tail(self):
        model = lognormal_delay(median=1.0, sigma=0.5)
        samples = np.array([model(RNG, 0, 1) for _ in range(4000)])
        assert 0.9 < np.median(samples) < 1.1
        assert samples.max() > 3.0  # heavy tail

    def test_distance_delay_scales_with_distance(self):
        positions = {0: (0.0, 0.0), 1: (0.0, 1.0), 2: (0.0, 3.0)}
        model = distance_delay(positions, propagation=1.0, jitter=0.0)
        assert model(RNG, 0, 1) == 1.0
        assert model(RNG, 0, 2) == 3.0

    def test_distance_delay_fallback_without_position(self):
        model = distance_delay({0: (0.0, 0.0)}, propagation=2.0, jitter=0.0)
        assert model(RNG, 0, 99) == 2.0


class TestDetectionUnderHeavyTails:
    def test_hierarchical_correct_under_lognormal_reordering(self):
        """Heavy-tailed delays stress the transport reorder buffers;
        detections must still match the offline reference exactly."""
        import networkx as nx

        from repro.detect.roles import HierarchicalRole
        from repro.sim import ExecutionTrace, MonitoredProcess, Network, Simulator
        from repro.workload.generator import EpochProcess, EpochWorkload

        tree = SpanningTree.regular(2, 3)
        sim = Simulator(seed=9)
        net = Network(sim, tree.as_graph(), lognormal_delay(median=1.0, sigma=0.9))
        trace = ExecutionTrace(tree.n)
        roles = {
            pid: HierarchicalRole(tree.parent_of(pid), tree.children(pid))
            for pid in tree.nodes
        }
        processes = {
            pid: EpochProcess(pid, sim, net, trace, roles[pid], tree)
            for pid in tree.nodes
        }
        config = EpochConfig(epochs=8, sync_prob=0.7, epoch_length=40.0)
        workload = EpochWorkload(sim, processes, tree, config, max_delay=6.0)
        workload.install()
        for p in processes.values():
            p.start()
        sim.run(until=workload.end_time + 100.0)
        reference = replay_centralized(trace, sink=0)
        assert len(roles[0].detections) == len(reference)
