"""Unit tests: the simulated network (non-FIFO channels, routing,
crash drops, message accounting)."""

import networkx as nx
import pytest

from repro.sim import Network, Simulator, exponential_delay, uniform_delay


def line_graph(n=4):
    g = nx.Graph()
    g.add_edges_from((i, i + 1) for i in range(n - 1))
    return g


def make_net(graph=None, delay=None, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, graph or line_graph(), delay or uniform_delay(0.5, 1.5))
    return sim, net


class TestOneHop:
    def test_delivery_to_handler(self):
        sim, net = make_net()
        got = []
        net.attach(1, lambda src, msg, plane: got.append((src, msg, plane)))
        net.send(0, 1, "hello", plane="app")
        sim.run()
        assert got == [(0, "hello", "app")]

    def test_edge_enforcement(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.send(0, 2, "no-link")

    def test_non_fifo_possible(self):
        """With variable delays, later sends can overtake earlier ones."""
        sim, net = make_net(delay=exponential_delay(1.0), seed=3)
        got = []
        net.attach(1, lambda src, msg, plane: got.append(msg))
        for i in range(40):
            net.send(0, 1, i)
        sim.run()
        assert sorted(got) == list(range(40))
        assert got != sorted(got)  # at least one overtake at this seed

    def test_counters(self):
        sim, net = make_net()
        net.attach(1, lambda *a: None)
        net.send(0, 1, "x", plane="app")
        net.send(0, 1, "y", plane="control")
        sim.run()
        assert net.messages_sent() == 2
        assert net.messages_sent("app") == 1
        assert net.messages_sent("control") == 1
        assert net.per_node_sent[0] == 2


class TestRouting:
    def test_routed_message_counts_every_hop(self):
        sim, net = make_net()
        got = []
        net.attach(3, lambda src, msg, plane: got.append((src, msg)))
        net.send_routed([0, 1, 2, 3], "report")
        sim.run()
        assert got == [(0, "report")]  # src is the origin, not the last hop
        assert net.messages_sent("control") == 3  # 3 hops = 3 messages

    def test_route_too_short(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.send_routed([0], "x")

    def test_dead_intermediate_drops(self):
        sim, net = make_net()
        got = []
        net.attach(3, lambda src, msg, plane: got.append(msg))
        net.fail(1)
        net.send_routed([0, 1, 2, 3], "report")
        sim.run()
        assert got == []


class TestCrashes:
    def test_dead_sender_sends_nothing(self):
        sim, net = make_net()
        got = []
        net.attach(1, lambda src, msg, plane: got.append(msg))
        net.fail(0)
        net.send(0, 1, "x")
        sim.run()
        assert got == [] and net.messages_sent() == 0

    def test_dead_receiver_drops_in_flight(self):
        sim, net = make_net()
        got = []
        net.attach(1, lambda src, msg, plane: got.append(msg))
        net.send(0, 1, "x")
        net.fail(1)  # crash before delivery
        sim.run()
        assert got == []
        assert net.dropped[("app", "str")] == 1

    def test_is_alive(self):
        sim, net = make_net()
        assert net.is_alive(0)
        net.fail(0)
        assert not net.is_alive(0)


class TestDeterminism:
    def test_same_seed_same_delivery_order(self):
        def run(seed):
            sim, net = make_net(delay=exponential_delay(1.0), seed=seed)
            got = []
            net.attach(1, lambda src, msg, plane: got.append(msg))
            for i in range(20):
                net.send(0, 1, i)
            sim.run()
            return got

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestWireEncoding:
    """IntervalReport bandwidth accounting through the WireCodec."""

    @staticmethod
    def _report(origin, dest, seq, lo, hi, iv_seq=None):
        import numpy as np

        from repro.intervals import Interval
        from repro.sim import IntervalReport

        interval = Interval(
            owner=origin,
            seq=seq if iv_seq is None else iv_seq,
            lo=np.array(lo),
            hi=np.array(hi),
        )
        return IntervalReport(
            origin=origin, dest=dest, interval=interval, transport_seq=seq
        )

    def test_disabled_by_default_uses_raw_entries(self):
        from repro.sim.messages import payload_entries

        sim, net = make_net()
        assert net.codec is None
        report = self._report(0, 1, 0, [1, 0, 0, 0], [2, 0, 0, 0])
        net.send(0, 1, report, plane="control")
        assert net.bandwidth_entries("control") == payload_entries(report)

    def test_first_report_uses_sparse_then_differential(self):
        sim = Simulator(seed=0)
        net = Network(sim, line_graph(), uniform_delay(), wire_encoding=True)
        # Mostly-zero bounds: sparse beats raw (2n+3 = 19 for n=8).
        first = self._report(0, 1, 0, [1] + [0] * 7, [2] + [0] * 7)
        net.send(0, 1, first, plane="control")
        first_cost = net.bandwidth_entries("control")
        assert first_cost < 19
        # Next report on the channel differs in one component per bound:
        # differential is 1 + 2 entries per bound, + 3 header.
        second = self._report(0, 1, 1, [3] + [0] * 7, [4] + [0] * 7)
        net.send(0, 1, second, plane="control")
        assert net.bandwidth_entries("control") - first_cost == (1 + 2) * 2 + 3

    def test_routed_report_encoded_once_charged_per_hop(self):
        sim = Simulator(seed=0)
        net = Network(sim, line_graph(4), uniform_delay(), wire_encoding=True)
        report = self._report(0, 3, 0, [1, 0, 0, 0], [2, 0, 0, 0])
        net.send_routed([0, 1, 2, 3], report, plane="control")
        sim.run()
        assert net.codec.encoded_reports == 1
        assert net.codec.memo_hits == 2  # hops 2 and 3 reuse the price
        per_hop = net.bandwidth_entries("control") // 3
        assert net.bandwidth_entries("control") == 3 * per_hop

    def test_references_are_per_channel(self):
        sim = Simulator(seed=0)
        net = Network(sim, line_graph(4), uniform_delay(), wire_encoding=True)
        net.send(0, 1, self._report(0, 1, 0, [5] * 4, [6] * 4), plane="control")
        dense_first = net.bandwidth_entries("control")
        assert dense_first == 2 * 4 + 3  # dense vectors: raw wins
        # A different origin->dest pair must not see channel (0,1)'s
        # reference: its first report prices from scratch.
        net.send(1, 2, self._report(1, 2, 0, [5] * 4, [6] * 4), plane="control")
        assert net.bandwidth_entries("control") == 2 * dense_first

    def test_delivery_payload_untouched(self):
        sim = Simulator(seed=0)
        net = Network(sim, line_graph(), uniform_delay(), wire_encoding=True)
        got = []
        net.attach(1, lambda src, message, plane: got.append(message))
        report = self._report(0, 1, 0, [1, 0], [2, 0])
        net.send(0, 1, report, plane="control")
        sim.run()
        assert got == [report]  # accounting only; the object rides through
