"""Unit tests: the simulated network (non-FIFO channels, routing,
crash drops, message accounting)."""

import networkx as nx
import pytest

from repro.sim import Network, Simulator, exponential_delay, uniform_delay


def line_graph(n=4):
    g = nx.Graph()
    g.add_edges_from((i, i + 1) for i in range(n - 1))
    return g


def make_net(graph=None, delay=None, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, graph or line_graph(), delay or uniform_delay(0.5, 1.5))
    return sim, net


class TestOneHop:
    def test_delivery_to_handler(self):
        sim, net = make_net()
        got = []
        net.attach(1, lambda src, msg, plane: got.append((src, msg, plane)))
        net.send(0, 1, "hello", plane="app")
        sim.run()
        assert got == [(0, "hello", "app")]

    def test_edge_enforcement(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.send(0, 2, "no-link")

    def test_non_fifo_possible(self):
        """With variable delays, later sends can overtake earlier ones."""
        sim, net = make_net(delay=exponential_delay(1.0), seed=3)
        got = []
        net.attach(1, lambda src, msg, plane: got.append(msg))
        for i in range(40):
            net.send(0, 1, i)
        sim.run()
        assert sorted(got) == list(range(40))
        assert got != sorted(got)  # at least one overtake at this seed

    def test_counters(self):
        sim, net = make_net()
        net.attach(1, lambda *a: None)
        net.send(0, 1, "x", plane="app")
        net.send(0, 1, "y", plane="control")
        sim.run()
        assert net.messages_sent() == 2
        assert net.messages_sent("app") == 1
        assert net.messages_sent("control") == 1
        assert net.per_node_sent[0] == 2


class TestRouting:
    def test_routed_message_counts_every_hop(self):
        sim, net = make_net()
        got = []
        net.attach(3, lambda src, msg, plane: got.append((src, msg)))
        net.send_routed([0, 1, 2, 3], "report")
        sim.run()
        assert got == [(0, "report")]  # src is the origin, not the last hop
        assert net.messages_sent("control") == 3  # 3 hops = 3 messages

    def test_route_too_short(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.send_routed([0], "x")

    def test_dead_intermediate_drops(self):
        sim, net = make_net()
        got = []
        net.attach(3, lambda src, msg, plane: got.append(msg))
        net.fail(1)
        net.send_routed([0, 1, 2, 3], "report")
        sim.run()
        assert got == []


class TestCrashes:
    def test_dead_sender_sends_nothing(self):
        sim, net = make_net()
        got = []
        net.attach(1, lambda src, msg, plane: got.append(msg))
        net.fail(0)
        net.send(0, 1, "x")
        sim.run()
        assert got == [] and net.messages_sent() == 0

    def test_dead_receiver_drops_in_flight(self):
        sim, net = make_net()
        got = []
        net.attach(1, lambda src, msg, plane: got.append(msg))
        net.send(0, 1, "x")
        net.fail(1)  # crash before delivery
        sim.run()
        assert got == []
        assert net.dropped[("app", "str")] == 1

    def test_is_alive(self):
        sim, net = make_net()
        assert net.is_alive(0)
        net.fail(0)
        assert not net.is_alive(0)


class TestDeterminism:
    def test_same_seed_same_delivery_order(self):
        def run(seed):
            sim, net = make_net(delay=exponential_delay(1.0), seed=seed)
            got = []
            net.attach(1, lambda src, msg, plane: got.append(msg))
            for i in range(20):
                net.send(0, 1, i)
            sim.run()
            return got

        assert run(5) == run(5)
        assert run(5) != run(6)
