"""Unit tests: execution traces."""

import pytest

from repro.clocks import freeze
from repro.sim import ExecutionTrace
from repro.workload.scenarios import ScriptedExecution, figure2_execution


class TestRecording:
    def test_timestamp_must_match_local_index(self):
        trace = ExecutionTrace(2)
        trace.record(0, freeze([1, 0]), "internal", False)
        with pytest.raises(ValueError):
            trace.record(0, freeze([5, 0]), "internal", False)  # index 2 expected

    def test_event_count_and_orders(self):
        trace = ExecutionTrace(2)
        trace.record(0, freeze([1, 0]), "internal", False)
        trace.record(1, freeze([0, 1]), "internal", True)
        assert trace.event_count() == 2
        assert trace.events[0][0].global_order == 0
        assert trace.events[1][0].global_order == 1

    def test_initial_predicate_validation(self):
        with pytest.raises(ValueError):
            ExecutionTrace(3, initial_predicate=[True])

    def test_predicate_after(self):
        trace = ExecutionTrace(1, initial_predicate=[True])
        assert trace.predicate_after(0, 0) is True
        trace.record(0, freeze([1]), "internal", False)
        assert trace.predicate_after(0, 1) is False


class TestIntervalExtraction:
    def test_open_interval_at_trace_end_is_closed(self):
        ex = ScriptedExecution(1)
        ex.set_pred(0, True)
        ex.internal(0)
        # No falling edge recorded: extraction still yields the run.
        intervals = ex.trace.intervals(0)
        assert len(intervals) == 1
        assert intervals[0].lo.tolist() == [1]
        assert intervals[0].hi.tolist() == [2]

    def test_back_to_back_intervals(self):
        ex = ScriptedExecution(1)
        for _ in range(2):
            ex.set_pred(0, True)
            ex.set_pred(0, False)
        intervals = ex.trace.intervals(0)
        assert len(intervals) == 2
        assert intervals[0].hi.tolist() == [1]
        assert intervals[1].lo.tolist() == [3]

    def test_figure2_interval_census(self):
        trace = figure2_execution().trace
        by_proc = trace.all_intervals()
        assert [len(by_proc[p]) for p in range(4)] == [1, 2, 1, 1]

    def test_completion_order_respects_closing_events(self):
        trace = figure2_execution().trace
        order = [(iv.owner, iv.seq) for iv in trace.intervals_in_completion_order()]
        # x2 (P2's first) completes first; x4 at P3 before x1/x3/x5.
        assert order[0] == (1, 0)
        assert set(order) == {(0, 0), (1, 0), (1, 1), (2, 0), (3, 0)}
        assert order.index((2, 0)) < order.index((0, 0))
