"""Unit tests: message-size (bandwidth) accounting."""

import numpy as np

from repro.clocks import freeze
from repro.detect import TokenMessage, TokenState
from repro.intervals import Interval
from repro.sim.messages import AppMessage, Heartbeat, IntervalReport, payload_entries


def interval(n=4):
    return Interval(owner=0, seq=0, lo=np.zeros(n, dtype=np.int64) + 1,
                    hi=np.zeros(n, dtype=np.int64) + 2)


class TestPayloadEntries:
    def test_app_message_is_piggyback_plus_payload(self):
        msg = AppMessage("x", freeze([1, 2, 3]))
        assert payload_entries(msg) == 4

    def test_interval_report_is_two_bounds(self):
        msg = IntervalReport(origin=0, dest=1, interval=interval(8))
        assert payload_entries(msg) == 2 * 8 + 3

    def test_heartbeat_is_constant(self):
        assert payload_entries(Heartbeat(sender=3)) == 2

    def test_token_counts_present_candidates(self):
        state = TokenState.initial(range(4))
        assert payload_entries(TokenMessage(state)) == 0 + 4 + 2  # no candidates yet
        state.heads[1] = interval(4)
        state.needs.discard(1)
        assert payload_entries(TokenMessage(state)) == 2 * 4 + 4 + 2

    def test_report_size_independent_of_provenance(self):
        """Aggregated intervals ship only their bounds: the wire size of
        a report does not grow with the number of aggregated parts —
        the entire point of the ⊓ operator."""
        from repro.intervals import aggregate

        parts = []
        los = np.zeros((3, 4), dtype=np.int64)
        for i in range(3):
            lo = los[i] + 1
            parts.append(Interval(owner=i, seq=0, lo=lo, hi=lo + 5))
        agg = aggregate(parts, owner=9, seq=0)
        single = IntervalReport(origin=9, dest=0, interval=parts[0])
        nested = IntervalReport(origin=9, dest=0, interval=agg)
        assert payload_entries(single) == payload_entries(nested)


class TestNetworkBandwidth:
    def test_bandwidth_counted_per_hop(self):
        import networkx as nx

        from repro.sim import Network, Simulator

        sim = Simulator()
        g = nx.path_graph(4)
        net = Network(sim, g)
        net.attach(3, lambda *a: None)
        msg = IntervalReport(origin=0, dest=3, interval=interval(4))
        net.send_routed([0, 1, 2, 3], msg)
        sim.run()
        assert net.bandwidth_entries("control") == 3 * payload_entries(msg)

    def test_hierarchical_cheaper_than_centralized_in_volume_too(self):
        from repro.experiments import run_centralized, run_hierarchical
        from repro.topology import SpanningTree
        from repro.workload import EpochConfig

        config = EpochConfig(epochs=6, sync_prob=0.8)
        hier = run_hierarchical(SpanningTree.regular(2, 4), seed=2, config=config)
        cent = run_centralized(SpanningTree.regular(2, 4), seed=2, config=config)
        assert hier.network.bandwidth_entries("control") < cent.network.bandwidth_entries(
            "control"
        )
