"""Unit tests: trace serialization round-trips."""

import json

import pytest

from repro.detect import replay_centralized
from repro.sim import load_trace, save_trace, trace_from_dict, trace_to_dict
from repro.workload import figure2_execution

from ..conftest import random_execution


class TestRoundTrip:
    def test_figure2_round_trip_preserves_everything(self):
        trace = figure2_execution().trace
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.n == trace.n
        assert rebuilt.event_count() == trace.event_count()
        for p in range(trace.n):
            for a, b in zip(trace.events[p], rebuilt.events[p]):
                assert a.timestamp.tolist() == b.timestamp.tolist()
                assert (a.kind, a.predicate, a.global_order) == (
                    b.kind, b.predicate, b.global_order,
                )

    def test_replay_identical_after_round_trip(self, rng):
        for _ in range(10):
            trace = random_execution(3, 30, rng).trace
            rebuilt = trace_from_dict(trace_to_dict(trace))
            original = [
                tuple(sorted((iv.owner, iv.seq) for iv in s.heads.values()))
                for s in replay_centralized(trace)
            ]
            replayed = [
                tuple(sorted((iv.owner, iv.seq) for iv in s.heads.values()))
                for s in replay_centralized(rebuilt)
            ]
            assert original == replayed

    def test_file_round_trip(self, tmp_path):
        trace = figure2_execution().trace
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        rebuilt = load_trace(path)
        assert rebuilt.event_count() == trace.event_count()
        # The file is plain, stable JSON.
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert data["n"] == 4

    def test_initial_predicate_preserved(self):
        from repro.workload import ScriptedExecution

        ex = ScriptedExecution(2, initial_predicate=[True, False])
        ex.internal(0)
        rebuilt = trace_from_dict(trace_to_dict(ex.trace))
        assert rebuilt.initial_predicate == [True, False]


class TestValidation:
    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            trace_from_dict({"version": 99, "n": 1, "events": []})

    def test_corrupted_timestamps_rejected(self):
        trace = figure2_execution().trace
        data = trace_to_dict(trace)
        data["events"][0]["ts"] = [5, 5, 5, 5]  # wrong local index
        with pytest.raises(ValueError):
            trace_from_dict(data)
