"""Unit tests: trace serialization round-trips."""

import json

import pytest

from repro.detect import replay_centralized
from repro.sim import load_trace, save_trace, trace_from_dict, trace_to_dict
from repro.workload import figure2_execution

from ..conftest import random_execution


class TestRoundTrip:
    def test_figure2_round_trip_preserves_everything(self):
        trace = figure2_execution().trace
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.n == trace.n
        assert rebuilt.event_count() == trace.event_count()
        for p in range(trace.n):
            for a, b in zip(trace.events[p], rebuilt.events[p]):
                assert a.timestamp.tolist() == b.timestamp.tolist()
                assert (a.kind, a.predicate, a.global_order) == (
                    b.kind, b.predicate, b.global_order,
                )

    def test_replay_identical_after_round_trip(self, rng):
        for _ in range(10):
            trace = random_execution(3, 30, rng).trace
            rebuilt = trace_from_dict(trace_to_dict(trace))
            original = [
                tuple(sorted((iv.owner, iv.seq) for iv in s.heads.values()))
                for s in replay_centralized(trace)
            ]
            replayed = [
                tuple(sorted((iv.owner, iv.seq) for iv in s.heads.values()))
                for s in replay_centralized(rebuilt)
            ]
            assert original == replayed

    def test_file_round_trip(self, tmp_path):
        trace = figure2_execution().trace
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        rebuilt = load_trace(path)
        assert rebuilt.event_count() == trace.event_count()
        # The file is plain, stable JSON.
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert data["n"] == 4

    def test_initial_predicate_preserved(self):
        from repro.workload import ScriptedExecution

        ex = ScriptedExecution(2, initial_predicate=[True, False])
        ex.internal(0)
        rebuilt = trace_from_dict(trace_to_dict(ex.trace))
        assert rebuilt.initial_predicate == [True, False]


class TestValidation:
    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            trace_from_dict({"version": 99, "n": 1, "events": []})

    def test_corrupted_timestamps_rejected(self):
        trace = figure2_execution().trace
        data = trace_to_dict(trace)
        data["events"][0]["ts"] = [5, 5, 5, 5]  # wrong local index
        with pytest.raises(ValueError):
            trace_from_dict(data)


class TestDetectionRoundTrip:
    """Detection records cross process boundaries (sharded runner) and
    archive as JSON — both representations must reproduce exactly."""

    @staticmethod
    def _detections():
        from repro.experiments import run_hierarchical
        from repro.topology import SpanningTree
        from repro.workload.generator import EpochConfig

        result = run_hierarchical(
            SpanningTree.regular(2, 3), seed=7, config=EpochConfig(epochs=4)
        )
        assert result.detections
        return result.detections

    @staticmethod
    def _signature(record):
        return (
            record.time,
            record.detector,
            record.solution.detector,
            record.solution.index,
            sorted(
                (key, iv.owner, iv.seq, iv.lo.tolist(), iv.hi.tolist(),
                 sorted(iv.members), len(iv.parts))
                for key, iv in record.solution.heads.items()
            ),
            record.aggregate.key() if record.aggregate is not None else None,
        )

    def test_json_round_trip(self):
        import json

        from repro.sim import detections_from_dicts, detections_to_dicts

        records = self._detections()
        payload = json.loads(json.dumps(detections_to_dicts(records)))
        rebuilt = detections_from_dicts(payload)
        assert [self._signature(r) for r in rebuilt] == [
            self._signature(r) for r in records
        ]
        # aggregation provenance must survive, recursively
        assert [
            len(list(r.aggregate.concrete_leaves()))
            for r in rebuilt
            if r.aggregate is not None
        ] == [
            len(list(r.aggregate.concrete_leaves()))
            for r in records
            if r.aggregate is not None
        ]

    def test_pickle_round_trip(self):
        import pickle

        records = self._detections()
        rebuilt = pickle.loads(pickle.dumps(records))
        assert [self._signature(r) for r in rebuilt] == [
            self._signature(r) for r in records
        ]

    def test_trace_pickle_round_trip(self):
        import pickle

        trace = figure2_execution().trace
        rebuilt = pickle.loads(pickle.dumps(trace))
        assert rebuilt.n == trace.n
        assert rebuilt.event_count() == trace.event_count()
        assert trace_to_dict(rebuilt) == trace_to_dict(trace)

    def test_queue_key_tagging_keeps_types(self):
        from repro.sim.serialize import _key_from_json, _key_to_json

        assert _key_from_json(_key_to_json(0)) == 0
        assert _key_from_json(_key_to_json("0")) == "0"
        assert _key_to_json(0) != _key_to_json("0")
        with pytest.raises(TypeError):
            _key_to_json(True)
        with pytest.raises(TypeError):
            _key_to_json(1.5)


class TestMessageRoundTrip:
    """Every control/app message dataclass survives the JSON wire form
    (the payload layer of repro.net's frame codec)."""

    def _interval(self, owner=1, seq=2, parts=()):
        import numpy as np

        from repro.intervals import Interval

        return Interval(
            owner=owner,
            seq=seq,
            lo=np.array([1, 0, 2], dtype=np.int64),
            hi=np.array([4, 1, 2], dtype=np.int64),
            members=frozenset({owner}),
            parts=tuple(parts),
        )

    def _messages(self):
        import numpy as np

        from repro.sim.messages import (
            AppMessage,
            AttachAccept,
            AttachRequest,
            DetachNotice,
            Heartbeat,
            IntervalReport,
        )

        return [
            AppMessage(payload={"k": [1, 2]}, piggyback=np.array([7, 0, 3], dtype=np.int64)),
            IntervalReport(origin=1, dest=0, interval=self._interval(), transport_seq=9),
            Heartbeat(sender=2),
            AttachRequest(child=4, subtree=frozenset({4, 5, 6})),
            AttachAccept(parent=1),
            DetachNotice(child=4),
        ]

    def test_every_type_round_trips_through_json(self):
        from repro.sim.messages import AppMessage, IntervalReport
        from repro.sim.serialize import message_from_dict, message_to_dict

        for message in self._messages():
            data = json.loads(json.dumps(message_to_dict(message)))
            rebuilt = message_from_dict(data)
            assert type(rebuilt) is type(message)
            if isinstance(message, AppMessage):
                assert rebuilt.payload == message.payload
                assert rebuilt.piggyback.tolist() == message.piggyback.tolist()
            elif isinstance(message, IntervalReport):
                assert rebuilt.interval.key() == message.interval.key()
                assert (rebuilt.origin, rebuilt.dest, rebuilt.transport_seq) == (
                    message.origin, message.dest, message.transport_seq,
                )
            else:
                assert rebuilt == message

    def test_aggregated_report_keeps_provenance(self):
        from repro.sim.messages import IntervalReport
        from repro.sim.serialize import message_from_dict, message_to_dict

        part = self._interval(owner=2, seq=0)
        aggregate = self._interval(owner=1, seq=3, parts=[part])
        report = IntervalReport(origin=1, dest=0, interval=aggregate)
        rebuilt = message_from_dict(message_to_dict(report))
        assert [p.key() for p in rebuilt.interval.parts] == [part.key()]

    def test_include_parts_false_ships_bounds_only(self):
        from repro.sim.messages import IntervalReport
        from repro.sim.serialize import message_from_dict, message_to_dict

        part = self._interval(owner=2, seq=0)
        aggregate = self._interval(owner=1, seq=3, parts=[part])
        report = IntervalReport(origin=1, dest=0, interval=aggregate)
        data = message_to_dict(report, include_parts=False)
        assert "parts" not in data["interval"]
        rebuilt = message_from_dict(data)
        assert rebuilt.interval.parts == ()
        assert rebuilt.interval.key() == aggregate.key()

    def test_unknown_inputs_rejected(self):
        from repro.sim.serialize import message_from_dict, message_to_dict

        with pytest.raises(TypeError, match="unserializable"):
            message_to_dict("not a message")
        with pytest.raises(ValueError, match="unknown message type"):
            message_from_dict({"type": "Gremlin"})
