"""Unit + integration tests: the structured observability log."""

from repro.experiments import run_hierarchical
from repro.sim import EventLog, Simulator
from repro.topology import SpanningTree, tree_with_chords
from repro.workload import EpochConfig


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit(1.0, "detection", node=0, members=7)
        log.emit(2.0, "crash", node=3)
        log.emit(3.0, "detection", node=0, members=6)
        assert len(log) == 3
        assert log.kinds() == ["crash", "detection"]
        detections = log.of_kind("detection")
        assert [r.get("members") for r in detections] == [7, 6]
        assert list(log.between(1.5, 2.5))[0].kind == "crash"

    def test_render(self):
        log = EventLog()
        log.emit(1.0, "crash", node=3)
        log.emit(2.0, "rejoin", node=3, adopter=0)
        text = log.render()
        assert "crash" in text and "adopter=0" in text
        assert log.render(kinds=["crash"]).count("\n") == 0
        assert log.render(limit=1).count("\n") == 0

    def test_simulator_emit_uses_now(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: sim.emit("tick", node=1))
        sim.run()
        (record,) = sim.log.records
        assert record.time == 5.0 and record.kind == "tick"


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit(float(i), "tick", node=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [r.node for r in log.records] == [2, 3, 4]

    def test_eviction_updates_kind_index(self):
        log = EventLog(capacity=2)
        log.emit(0.0, "a")
        log.emit(1.0, "b")
        log.emit(2.0, "a")  # evicts the t=0 "a"
        assert [r.time for r in log.of_kind("a")] == [2.0]
        assert [r.time for r in log.of_kind("b")] == [1.0]
        log.emit(3.0, "a")  # evicts the only "b"
        assert log.kinds() == ["a"]

    def test_capacity_validated(self):
        import pytest

        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_between_still_works_when_bounded(self):
        log = EventLog(capacity=4)
        for i in range(8):
            log.emit(float(i), "tick")
        assert [r.time for r in log.between(5.0, 6.0)] == [5.0, 6.0]


class TestSubscribe:
    def test_kind_and_wildcard_callbacks(self):
        log = EventLog()
        detections, everything = [], []
        log.subscribe("detection", detections.append)
        log.subscribe(None, everything.append)
        log.emit(1.0, "detection", node=0)
        log.emit(2.0, "crash", node=3)
        assert [r.kind for r in detections] == ["detection"]
        assert [r.kind for r in everything] == ["detection", "crash"]

    def test_unsubscribe(self):
        log = EventLog()
        seen = []
        unsubscribe = log.subscribe("tick", seen.append)
        log.emit(1.0, "tick")
        unsubscribe()
        unsubscribe()  # idempotent
        log.emit(2.0, "tick")
        assert len(seen) == 1

    def test_subscribers_see_records_a_ring_buffer_drops(self):
        log = EventLog(capacity=1)
        seen = []
        log.subscribe(None, seen.append)
        for i in range(4):
            log.emit(float(i), "tick")
        assert len(log) == 1 and len(seen) == 4


class TestQueryPerformance:
    def test_between_bisects_monotone_unbounded_log(self):
        log = EventLog()
        for i in range(100):
            log.emit(float(i), "tick")
        window = log.between(10.0, 12.0)
        assert [r.time for r in window] == [10.0, 11.0, 12.0]
        # Inclusive on both edges, empty when nothing matches.
        assert log.between(200.0, 300.0) == []

    def test_between_handles_out_of_order_times(self):
        log = EventLog()
        log.emit(5.0, "tick")
        log.emit(1.0, "tick")  # regression: must not trust bisect now
        log.emit(3.0, "tick")
        assert [r.time for r in log.between(0.0, 4.0)] == [1.0, 3.0]

    def test_as_dict_is_cached(self):
        log = EventLog()
        log.emit(1.0, "detection", node=0, members=7)
        (record,) = log.records
        assert record.as_dict() is record.as_dict()
        assert record.get("members") == 7
        assert record.get("missing", "fallback") == "fallback"


class TestLifecycleNarration:
    def test_failure_run_produces_the_full_story(self):
        tree = SpanningTree.regular(2, 3)
        graph = tree_with_chords(tree.as_graph(), extra_edges=8, seed=1)
        result = run_hierarchical(
            tree, graph=graph, seed=1,
            config=EpochConfig(epochs=10, sync_prob=1.0, drain_time=80.0),
            failures=[(80.0, 1)],
        )
        log = result.sim.log
        assert log.of_kind("crash")
        assert log.of_kind("suspect")
        assert log.of_kind("repair_planned")
        assert log.of_kind("detection")
        # Causal order: crash before suspicion before the repair plan.
        crash_t = log.of_kind("crash")[0].time
        suspect_t = log.of_kind("suspect")[0].time
        plan_t = log.of_kind("repair_planned")[0].time
        assert crash_t < suspect_t <= plan_t

    def test_rejoin_events_logged(self):
        tree = SpanningTree.regular(2, 3)
        graph = tree_with_chords(tree.as_graph(), extra_edges=8, seed=1)
        result = run_hierarchical(
            tree, graph=graph, seed=1,
            config=EpochConfig(epochs=16, sync_prob=1.0, drain_time=100.0),
            failures=[(80.0, 5)], revivals=[(200.0, 5)],
        )
        (rejoin,) = result.sim.log.of_kind("rejoin")
        assert rejoin.node == 5
        assert rejoin.get("adopter") is not None

    def test_partition_events_logged(self):
        tree = SpanningTree.regular(2, 3)  # graph == tree: no spare links
        result = run_hierarchical(
            tree, seed=4,
            config=EpochConfig(epochs=12, sync_prob=1.0, drain_time=80.0),
            failures=[(80.0, 1)],
        )
        partitioned = {r.node for r in result.sim.log.of_kind("partitioned")}
        assert partitioned == {3, 4}


class TestRingBufferEdges:
    """Boundary and eviction edge cases of the bounded log."""

    def test_between_includes_exact_boundary_timestamps(self):
        log = EventLog()
        for t in (1.0, 2.0, 3.0, 4.0):
            log.emit(t, "tick")
        assert [r.time for r in log.between(2.0, 3.0)] == [2.0, 3.0]
        # Degenerate window: start == end == an exact emit time.
        assert [r.time for r in log.between(3.0, 3.0)] == [3.0]
        # Window entirely between two emit times is empty.
        assert log.between(2.5, 2.75) == []

    def test_between_boundaries_with_duplicate_times(self):
        log = EventLog()
        for kind in ("a", "b", "c"):
            log.emit(5.0, kind)
        assert [r.kind for r in log.between(5.0, 5.0)] == ["a", "b", "c"]

    def test_between_boundaries_survive_unsorted_emits(self):
        log = EventLog()
        log.emit(3.0, "late")
        log.emit(1.0, "early")  # out of order: bisect path must bail
        log.emit(2.0, "mid")
        assert {r.kind for r in log.between(1.0, 2.0)} == {"early", "mid"}

    def test_between_boundaries_when_bounded(self):
        log = EventLog(capacity=3)
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            log.emit(t, "tick")
        # 1.0 and 2.0 were evicted; boundaries on the survivors hold.
        assert [r.time for r in log.between(3.0, 5.0)] == [3.0, 4.0, 5.0]
        assert [r.time for r in log.between(3.0, 3.0)] == [3.0]
        assert log.between(1.0, 2.0) == []

    def test_subscribers_fire_during_capacity_overflow_eviction(self):
        log = EventLog(capacity=2)
        seen = []
        states = []
        log.subscribe(
            None,
            lambda record: (
                seen.append(record.kind),
                # The log's invariants must already hold when the
                # callback observes it mid-eviction.
                states.append((len(log), log.dropped)),
            ),
        )
        for kind in ("a", "b", "c", "d"):
            log.emit(0.0, kind)
        assert seen == ["a", "b", "c", "d"]  # no record skipped
        assert states == [(1, 0), (2, 0), (2, 1), (2, 2)]
        assert [r.kind for r in log.records] == ["c", "d"]
        # Kind index stayed consistent with the ring.
        assert log.of_kind("a") == [] and len(log.of_kind("d")) == 1

    def test_subscriber_can_unsubscribe_while_ring_is_evicting(self):
        log = EventLog(capacity=1)
        seen = []
        unsubscribe = None

        def callback(record):
            seen.append(record.kind)
            if record.kind == "b":
                unsubscribe()

        unsubscribe = log.subscribe(None, callback)
        for kind in ("a", "b", "c"):
            log.emit(0.0, kind)
        assert seen == ["a", "b"]
        assert [r.kind for r in log.records] == ["c"]
