"""Unit tests: the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_at_and_past_rejection(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert sim.pending == 0

    def test_run_until_stops_cleanly(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain(k):
            fired.append(k)
            if k < 3:
                sim.schedule(1.0, lambda: chain(k + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]


class TestRngStreams:
    def test_streams_deterministic_by_name_and_seed(self):
        a = Simulator(seed=7).rng("net").random(5)
        b = Simulator(seed=7).rng("net").random(5)
        assert (a == b).all()

    def test_streams_independent_of_creation_order(self):
        sim1 = Simulator(seed=7)
        sim1.rng("x")
        v1 = sim1.rng("net").random(3)
        sim2 = Simulator(seed=7)
        v2 = sim2.rng("net").random(3)
        assert (v1 == v2).all()

    def test_different_names_differ(self):
        sim = Simulator(seed=7)
        assert not (sim.rng("a").random(8) == sim.rng("b").random(8)).all()

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).rng("net").random(8)
        b = Simulator(seed=2).rng("net").random(8)
        assert not (a == b).all()

    def test_same_name_returns_same_stream(self):
        sim = Simulator(seed=0)
        first = sim.rng("net")
        first.random()
        assert sim.rng("net") is first


class TestHeapCompaction:
    """Lazy tombstone compaction: heavy timer churn must not let
    cancelled events dominate the heap."""

    def test_mass_cancellation_triggers_compaction(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(300)]
        for handle in handles[:250]:
            handle.cancel()
        assert sim.heap_compactions >= 1
        # Tombstones beyond the compaction floor are physically removed:
        # at most 50 live + the sub-threshold tail can remain.
        assert len(sim._heap) <= 50 + Simulator._COMPACT_MIN_CANCELLED + 1
        assert sim.pending == 50

    def test_execution_order_survives_compaction(self):
        sim = Simulator()
        fired = []
        handles = []
        for i in range(200):
            handles.append(
                sim.schedule(float(i % 7) + 1.0, lambda i=i: fired.append(i))
            )
        kept = [h for i, h in enumerate(handles) if i % 5 == 0]
        for i, handle in enumerate(handles):
            if i % 5:
                handle.cancel()
        sim.run()
        expected = sorted(
            (i for i in range(200) if i % 5 == 0),
            key=lambda i: (float(i % 7) + 1.0, i),
        )
        assert fired == expected
        assert len(kept) == len(fired)

    def test_small_heaps_never_compact(self):
        sim = Simulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(40)]
        for handle in handles:
            handle.cancel()
        assert sim.heap_compactions == 0
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.events_executed == 1
        assert keep.cancelled is False

    def test_cancel_after_execution_does_not_corrupt_count(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        handle.cancel()  # late cancel of an already-executed event
        assert sim.pending == 0


class TestSeedDerivation:
    """The named-stream derivation contract (docs/parallel.md).

    Int seeds must keep the legacy ``SeedSequence([seed, crc32(name)])``
    streams byte-for-byte (pinned below — a drift here silently changes
    every persisted artifact); ``SeedSequence`` seeds derive streams by
    appending the name's bytes to the spawn key.
    """

    def test_int_seed_streams_are_pinned(self):
        import numpy as np

        net = Simulator(seed=0).rng("net").random(4)
        assert np.allclose(
            net, [0.79178868, 0.71519305, 0.77619453, 0.73659267]
        )
        workload = Simulator(seed=7).rng("workload").integers(0, 1000, 4)
        assert workload.tolist() == [354, 385, 67, 662]

    def test_seedsequence_seed_accepted(self):
        import numpy as np

        ss = np.random.SeedSequence(42)
        a = Simulator(seed=ss).rng("net").random(8)
        b = Simulator(seed=np.random.SeedSequence(42)).rng("net").random(8)
        assert (a == b).all()
        assert not (a == Simulator(seed=42).rng("net").random(8)).all()

    def test_seedsequence_names_key_apart(self):
        import numpy as np

        sim = Simulator(seed=np.random.SeedSequence(42))
        assert not (sim.rng("a").random(8) == sim.rng("b").random(8)).all()

    def test_spawned_children_are_independent(self):
        import numpy as np

        children = np.random.SeedSequence(42).spawn(2)
        a = Simulator(seed=children[0]).rng("net").random(8)
        b = Simulator(seed=children[1]).rng("net").random(8)
        assert not (a == b).all()

    def test_spawn_key_carries_into_streams(self):
        import numpy as np

        child = np.random.SeedSequence(42).spawn(1)[0]
        parent = np.random.SeedSequence(42)
        a = Simulator(seed=child).rng("net").random(3)
        b = Simulator(seed=parent).rng("net").random(3)
        assert not (a == b).all()
        assert np.allclose(a, [0.2444005, 0.07503477, 0.22662143])
