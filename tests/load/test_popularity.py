"""Unit tests for the Zipf popularity sampler."""

import numpy as np
import pytest

from repro.load import ZipfSampler


class TestPmf:
    def test_pmf_sums_to_one(self):
        sampler = ZipfSampler(16, 1.1)
        assert sampler.pmf.sum() == pytest.approx(1.0)

    def test_shares_decrease_with_rank(self):
        sampler = ZipfSampler(10, 1.0)
        shares = [sampler.share(r) for r in range(10)]
        assert shares == sorted(shares, reverse=True)
        assert shares[0] > 2 * shares[-1]

    def test_s_zero_is_uniform(self):
        sampler = ZipfSampler(8, 0.0)
        for rank in range(8):
            assert sampler.share(rank) == pytest.approx(1.0 / 8)

    def test_larger_s_concentrates_head(self):
        mild = ZipfSampler(20, 0.8)
        steep = ZipfSampler(20, 2.0)
        assert steep.share(0) > mild.share(0)
        assert steep.share(19) < mild.share(19)


class TestSampling:
    def test_same_stream_same_draws(self):
        sampler = ZipfSampler(12, 1.1)
        a = [sampler.sample(np.random.default_rng(7)) for _ in range(1)]
        b = [sampler.sample(np.random.default_rng(7)) for _ in range(1)]
        assert a == b
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        assert [sampler.sample(rng1) for _ in range(100)] == [
            sampler.sample(rng2) for _ in range(100)
        ]

    def test_sample_in_range_and_skewed(self):
        sampler = ZipfSampler(6, 1.2)
        rng = np.random.default_rng(11)
        draws = sampler.sample_many(rng, 4000)
        assert draws.min() >= 0 and draws.max() < 6
        counts = np.bincount(draws, minlength=6)
        # rank 0 should dominate the tail rank decisively at s=1.2
        assert counts[0] > 2 * counts[5]

    def test_sample_many_matches_expected_shares(self):
        sampler = ZipfSampler(4, 1.0)
        draws = sampler.sample_many(np.random.default_rng(5), 20000)
        freq = np.bincount(draws, minlength=4) / len(draws)
        for rank in range(4):
            assert freq[rank] == pytest.approx(sampler.share(rank), abs=0.02)


class TestWeightsFor:
    def test_sorted_targets_get_ranked_shares(self):
        sampler = ZipfSampler(3, 1.0)
        weights = sampler.weights_for([30, 10, 20])
        assert set(weights) == {10, 20, 30}
        assert weights[10] == pytest.approx(sampler.share(0))
        assert weights[20] == pytest.approx(sampler.share(1))
        assert weights[30] == pytest.approx(sampler.share(2))

    def test_target_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            ZipfSampler(3, 1.0).weights_for([1, 2])


class TestValidation:
    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(4, -0.1)
